//! Per-task CLR configuration selection helpers.
//!
//! The system-level DSE explores whole mappings, but users (and the
//! JPEG-encoder example) often want the per-task view: which
//! configurations of one implementation are Pareto-efficient, and which
//! is the cheapest one meeting an error budget.

use clr_platform::PeType;
use clr_taskgraph::Implementation;

use crate::{ClrConfig, ConfigSpace, FaultModel, TaskMetrics};

/// The Pareto-efficient configurations of one `(implementation, PE type)`
/// pair in the `(ErrProb, AvgExT, energy)` space, in the order the space
/// lists them.
///
/// # Examples
///
/// ```
/// use clr_reliability::{pareto_configs, ClrConfig, ConfigSpace, FaultModel};
/// use clr_platform::{PeKind, PeType};
/// use clr_taskgraph::{ImplId, Implementation, SwStack};
///
/// let pe = PeType::new("c", PeKind::GeneralPurpose);
/// let im = Implementation::new(ImplId::new(0), 0.into(), SwStack::Rtos, 50.0);
/// let front = pareto_configs(&im, &pe, &FaultModel::default(), &ConfigSpace::coarse());
/// assert!(!front.is_empty());
/// // The unprotected config is always efficient (cheapest/fastest).
/// assert!(front.iter().any(|(c, _)| c.is_none()));
/// ```
pub fn pareto_configs(
    im: &Implementation,
    pe_type: &PeType,
    fm: &FaultModel,
    space: &ConfigSpace,
) -> Vec<(ClrConfig, TaskMetrics)> {
    let evaluated: Vec<(ClrConfig, TaskMetrics)> = space
        .configs()
        .iter()
        .map(|cfg| (*cfg, TaskMetrics::evaluate(im, pe_type, cfg, fm)))
        .collect();
    let objs: Vec<[f64; 3]> = evaluated
        .iter()
        .map(|(_, m)| [m.err_prob, m.avg_ex_t, m.energy()])
        .collect();
    evaluated
        .iter()
        .enumerate()
        .filter(|(i, _)| {
            !objs.iter().enumerate().any(|(j, o)| {
                j != *i
                    && o.iter().zip(&objs[*i]).all(|(a, b)| a <= b)
                    && o.iter().zip(&objs[*i]).any(|(a, b)| a < b)
            })
        })
        .map(|(_, e)| *e)
        .collect()
}

/// The lowest-energy configuration whose residual error probability is at
/// most `max_err_prob`, or `None` when no configuration in the space
/// meets the budget.
///
/// # Examples
///
/// ```
/// use clr_reliability::{cheapest_config_meeting, ConfigSpace, FaultModel};
/// use clr_platform::{PeKind, PeType};
/// use clr_taskgraph::{ImplId, Implementation, SwStack};
///
/// let pe = PeType::new("c", PeKind::GeneralPurpose);
/// let im = Implementation::new(ImplId::new(0), 0.into(), SwStack::Rtos, 50.0);
/// let fm = FaultModel::new(2e-3, 1e6, 1.0);
/// let strict = cheapest_config_meeting(&im, &pe, &fm, &ConfigSpace::fine(), 1e-2);
/// let lax = cheapest_config_meeting(&im, &pe, &fm, &ConfigSpace::fine(), 0.5);
/// let impossible = cheapest_config_meeting(&im, &pe, &fm, &ConfigSpace::fine(), 0.0);
/// assert!(strict.is_some() && lax.is_some());
/// assert!(impossible.is_none());
/// // A stricter budget can only cost more energy.
/// assert!(strict.unwrap().1.energy() >= lax.unwrap().1.energy());
/// ```
pub fn cheapest_config_meeting(
    im: &Implementation,
    pe_type: &PeType,
    fm: &FaultModel,
    space: &ConfigSpace,
    max_err_prob: f64,
) -> Option<(ClrConfig, TaskMetrics)> {
    space
        .configs()
        .iter()
        .map(|cfg| (*cfg, TaskMetrics::evaluate(im, pe_type, cfg, fm)))
        .filter(|(_, m)| m.err_prob <= max_err_prob)
        .min_by(|a, b| a.1.energy().total_cmp(&b.1.energy()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use clr_platform::PeKind;
    use clr_taskgraph::{ImplId, SwStack};

    fn setup() -> (Implementation, PeType, FaultModel) {
        (
            Implementation::new(ImplId::new(0), 0.into(), SwStack::Rtos, 100.0),
            PeType::new("c", PeKind::GeneralPurpose)
                .with_masking_factor(0.6)
                .unwrap(),
            FaultModel::new(2e-3, 1e6, 1.0),
        )
    }

    #[test]
    fn pareto_configs_are_mutually_non_dominated() {
        let (im, pe, fm) = setup();
        let front = pareto_configs(&im, &pe, &fm, &ConfigSpace::fine());
        assert!(front.len() >= 2, "expected a real trade-off");
        for (i, (_, a)) in front.iter().enumerate() {
            for (j, (_, b)) in front.iter().enumerate() {
                if i == j {
                    continue;
                }
                let dominates = a.err_prob <= b.err_prob
                    && a.avg_ex_t <= b.avg_ex_t
                    && a.energy() <= b.energy()
                    && (a.err_prob < b.err_prob
                        || a.avg_ex_t < b.avg_ex_t
                        || a.energy() < b.energy());
                assert!(!dominates);
            }
        }
    }

    #[test]
    fn budget_selection_is_monotone() {
        let (im, pe, fm) = setup();
        let space = ConfigSpace::fine();
        let mut last_energy = 0.0f64;
        // Walking the budget from strict to lax can only reduce energy.
        for budget in [1e-4, 1e-3, 1e-2, 1e-1, 1.0] {
            if let Some((_, m)) = cheapest_config_meeting(&im, &pe, &fm, &space, budget) {
                if last_energy > 0.0 {
                    assert!(m.energy() <= last_energy + 1e-9);
                }
                last_energy = m.energy();
            }
        }
        assert!(last_energy > 0.0, "lax budget must be satisfiable");
    }

    #[test]
    fn unreachable_budget_yields_none() {
        let (im, pe, fm) = setup();
        assert!(cheapest_config_meeting(&im, &pe, &fm, &ConfigSpace::hw_only(), 0.0).is_none());
    }
}
