//! The deterministic journal section must be bit-identical for every
//! worker-thread count (the acceptance criterion behind the `ci.sh`
//! instrumented smoke run, exercised here at the quick scale).

use clr_core::prelude::*;
use clr_experiments::kernels::{csp_migration_comparison, Bundle};
use clr_experiments::Env;

/// Runs a table4-style CSP comparison at the given thread count with a
/// fresh journal and returns the rendered deterministic section.
fn journal_at(threads: usize) -> String {
    let mut env = Env::quick();
    env.ga.threads = threads;
    env.red.ga.threads = threads;
    env.obs = Obs::new(ObsMode::Json);
    let bundle = Bundle::new(&env, 10);
    let c = csp_migration_comparison(&env, &bundle, 0);
    assert!(c.baseline.events > 0 && c.proposed.events > 0);
    env.obs.render_det_jsonl_labeled("table4-smoke")
}

#[test]
fn deterministic_journal_is_bit_identical_across_thread_counts() {
    let serial = journal_at(1);
    let parallel = journal_at(8);
    assert!(!serial.is_empty());
    assert_eq!(serial, parallel, "det journal must not depend on threads");
    // The journal carries the per-generation MOEA statistics and at least
    // one agent decision record per QoS event.
    assert!(serial.contains("\"type\":\"ga_gen\""));
    assert!(serial.contains("\"hv\":"));
    assert!(serial.contains("\"type\":\"decision\""));
    assert!(serial.contains("\"type\":\"red_seed\""));
    assert!(serial.contains("\"type\":\"sim_end\""));
}
