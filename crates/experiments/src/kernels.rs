//! Experiment kernels shared between the binaries and the Criterion
//! benches. Each kernel regenerates the data behind one table or figure.

use clr_core::prelude::*;
use clr_core::runtime::HvPolicy;
use clr_core::stats::Summary;
use clr_core::{DbChoice, HybridFlow};

use crate::Env;

/// Owns a generated application and the evaluation platform so the
/// borrowing [`HybridFlow`] can be built against it.
#[derive(Debug, Clone)]
pub struct Bundle {
    /// The synthetic application.
    pub graph: TaskGraph,
    /// The 5-PE / 3-type / 3-PRR evaluation platform.
    pub platform: Platform,
}

impl Bundle {
    /// Generates the bundle for an `n`-task application.
    pub fn new(env: &Env, n: usize) -> Self {
        Self {
            graph: env.graph(n),
            platform: Platform::dac19(),
        }
    }

    /// Runs the design-time stages (BaseD + ReD) in the given mode,
    /// journalling through the environment's observability handle.
    pub fn flow(&self, env: &Env, mode: ExplorationMode) -> HybridFlow<'_> {
        HybridFlow::builder(&self.graph, &self.platform)
            .ga(env.ga)
            .mode(mode)
            .red(env.red)
            .storage_limit(env.storage_limit)
            .qos_variation(env.qos_sigma_frac, env.qos_correlation)
            .seed(env.seed)
            .obs(env.obs.clone())
            .run()
    }
}

/// Runs `f` once per replica seed and averages the scalar aggregates
/// (costs, energy, counts) into one [`SimResult`]; the first replica's
/// trace is kept.
fn replicated(replicas: u64, base_seed: u64, mut f: impl FnMut(u64) -> SimResult) -> SimResult {
    let n = replicas.max(1);
    let mut acc: Option<SimResult> = None;
    for r in 0..n {
        let run = f(base_seed.wrapping_add(r.wrapping_mul(0x9e37_79b9)));
        acc = Some(match acc {
            None => run,
            Some(mut a) => {
                a.events += run.events;
                a.reconfigurations += run.reconfigurations;
                a.violations += run.violations;
                a.total_reconfig_cost += run.total_reconfig_cost;
                a.avg_reconfig_cost += run.avg_reconfig_cost;
                a.max_reconfig_cost = a.max_reconfig_cost.max(run.max_reconfig_cost);
                a.avg_energy += run.avg_energy;
                a.decision_work += run.decision_work;
                a
            }
        });
    }
    let mut a = acc.expect("at least one replica");
    let nf = n as f64;
    a.events /= n as usize;
    a.reconfigurations /= n as usize;
    a.violations /= n as usize;
    a.total_reconfig_cost /= nf;
    a.avg_reconfig_cost /= nf;
    a.avg_energy /= nf;
    a.decision_work /= n;
    a
}

/// Paired Monte-Carlo outcomes of two arms driven by the *same* QoS event
/// stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// The baseline arm.
    pub baseline: SimResult,
    /// The proposed arm.
    pub proposed: SimResult,
}

/// Table 4 / Fig. 6 kernel: CSP-mode (R = 0) comparison of the Pareto-only
/// database driven by the hyper-volume-seeking baseline vs. the ReD
/// database driven by reconfiguration-cost-aware uRA (`p_RC = 0`). Both
/// arms replay the same event stream (calibrated on BaseD).
pub fn csp_migration_comparison(env: &Env, bundle: &Bundle, trace: usize) -> Comparison {
    let flow = bundle.flow(env, ExplorationMode::Csp);
    let qos =
        QosVariationModel::calibrated_walk(flow.based(), env.qos_sigma_frac, env.qos_correlation);
    let seed = env.seed ^ (bundle.graph.num_tasks() as u64);
    let replicas = if trace > 0 { 1 } else { env.replicas };

    let ctx_based = flow.context(DbChoice::Based);
    let baseline = replicated(replicas, seed, |s| {
        let mut policy = HvPolicy::new();
        simulate_obs(
            &ctx_based,
            &mut policy,
            &qos,
            &env.sim_config(s).with_trace(trace),
            &env.obs,
            "csp-based",
        )
    });

    let ctx_red = flow.context(DbChoice::Red);
    let proposed = replicated(replicas, seed, |s| {
        let mut policy = UraPolicy::new(0.0).expect("0 is a valid p_rc");
        simulate_obs(
            &ctx_red,
            &mut policy,
            &qos,
            &env.sim_config(s).with_trace(trace),
            &env.obs,
            "csp-red",
        )
    });

    Comparison { baseline, proposed }
}

/// Fig. 5 kernel: the stored design points of a CSP-mode ReD database in
/// the QoS plane, tagged by origin (`Pareto` vs additional `>` points).
pub fn csp_design_points(env: &Env, bundle: &Bundle) -> Vec<(f64, f64, PointOrigin)> {
    let flow = bundle.flow(env, ExplorationMode::Csp);
    flow.db(DbChoice::Red)
        .iter()
        .map(|p| (p.metrics.makespan, p.metrics.reliability, p.origin))
        .collect()
}

/// Table 6 kernel: uRA with the given `p_RC` over BaseD vs. ReD, same
/// event stream.
pub fn red_vs_based(env: &Env, bundle: &Bundle, p_rc: f64) -> Comparison {
    let flow = bundle.flow(env, ExplorationMode::Full);
    let qos =
        QosVariationModel::calibrated_walk(flow.based(), env.qos_sigma_frac, env.qos_correlation);
    let seed = env.seed ^ (bundle.graph.num_tasks() as u64).rotate_left(17);

    let ctx_based = flow.context(DbChoice::Based);
    let baseline = replicated(env.replicas, seed, |s| {
        let mut policy = UraPolicy::new(p_rc).expect("valid p_rc");
        simulate_obs(
            &ctx_based,
            &mut policy,
            &qos,
            &env.sim_config(s),
            &env.obs,
            "ura-based",
        )
    });

    let ctx_red = flow.context(DbChoice::Red);
    let proposed = replicated(env.replicas, seed, |s| {
        let mut policy = UraPolicy::new(p_rc).expect("valid p_rc");
        simulate_obs(
            &ctx_red,
            &mut policy,
            &qos,
            &env.sim_config(s),
            &env.obs,
            "ura-red",
        )
    });

    Comparison { baseline, proposed }
}

/// Fig. 7 / Table 5 kernel: sweep `p_RC` over a single (ReD) database.
pub fn prc_sweep(env: &Env, bundle: &Bundle, p_rcs: &[f64]) -> Vec<(f64, SimResult)> {
    let flow = bundle.flow(env, ExplorationMode::Full);
    let qos = flow.qos_model(DbChoice::Red);
    let ctx = flow.context(DbChoice::Red);
    let seed = env.seed ^ (bundle.graph.num_tasks() as u64).rotate_left(33);
    p_rcs
        .iter()
        .map(|&p_rc| {
            let result = replicated(env.replicas, seed, |s| {
                let mut policy = UraPolicy::new(p_rc).expect("valid p_rc");
                simulate(&ctx, &mut policy, &qos, &env.sim_config(s))
            });
            (p_rc, result)
        })
        .collect()
}

/// Table 7 kernel: uRA vs. prior-trained AuRA with the given `p_RC` over
/// the ReD database, same event stream.
pub fn aura_vs_ura(env: &Env, bundle: &Bundle, p_rc: f64) -> Comparison {
    let flow = bundle.flow(env, ExplorationMode::Full);
    let qos = flow.qos_model(DbChoice::Red);
    let ctx = flow.context(DbChoice::Red);
    let seed = env.seed ^ (bundle.graph.num_tasks() as u64).rotate_left(47);

    let baseline = replicated(env.replicas, seed, |s| {
        let mut ura = UraPolicy::new(p_rc).expect("valid p_rc");
        simulate_obs(&ctx, &mut ura, &qos, &env.sim_config(s), &env.obs, "t7-ura")
    });

    let prior_episodes = if env.sim_cycles >= 1_000_000.0 {
        500
    } else {
        200
    };
    let proposed = replicated(env.replicas, seed, |s| {
        let mut agent = AuraAgent::new(ctx.len(), p_rc, 0.3, 0.05).expect("valid agent parameters");
        agent.train_prior_obs(
            &ctx,
            &qos,
            prior_episodes,
            1_000.0,
            env.seed ^ 0xa17a,
            0,
            &env.obs,
        );
        simulate_obs(
            &ctx,
            &mut agent,
            &qos,
            &env.sim_config(s),
            &env.obs,
            "t7-aura",
        )
    });

    Comparison { baseline, proposed }
}

/// One system of the Fig. 1 motivation study.
#[derive(Debug, Clone, PartialEq)]
pub struct MotivationSystem {
    /// System label (`HW-Only`, `CLR1`, `CLR2`).
    pub label: String,
    /// The Pareto design points in the `(energy, error rate)` plane.
    pub front: Vec<(f64, f64)>,
    /// Average energy of the best *fixed* configuration guaranteeing a
    /// ≤ 2 % error rate at all times (worst-case provisioning).
    pub fixed_energy: f64,
    /// Average energy with dynamic run-time adaptation (`J_avg`) under a
    /// normally distributed acceptable-error-rate requirement.
    pub dynamic_energy: f64,
}

/// Fig. 1 kernel: HW-Only vs. CLR1 (coarse) vs. CLR2 (fine) on one
/// application, with fixed-worst-case vs. dynamic average energy.
pub fn motivation(env: &Env, bundle: &Bundle) -> Vec<MotivationSystem> {
    let spaces = [
        ("HW-Only", ConfigSpace::hw_only()),
        ("CLR1", ConfigSpace::coarse()),
        ("CLR2", ConfigSpace::fine()),
    ];
    spaces
        .into_iter()
        .map(|(label, space)| {
            // A harsh (orbital) fault environment: with the benign default
            // rate every configuration is near-error-free and the
            // error-rate axis of Fig. 1 degenerates.
            let fm = FaultModel::default().with_lambda_seu(2e-3);
            // One application only, so afford a larger GA budget: the CLR2
            // space is an order of magnitude larger than HW-Only's and
            // under-converges at the sweep budgets.
            let ga = GaParams {
                population: env.ga.population.max(60),
                generations: env.ga.generations.max(40),
                ..env.ga
            };
            let flow = HybridFlow::builder(&bundle.graph, &bundle.platform)
                .fault_model(fm)
                .ga(ga)
                .mode(ExplorationMode::Full)
                .config_space(space)
                .qos_variation(env.qos_sigma_frac, env.qos_correlation)
                .seed(env.seed)
                .run();
            let db = flow.based();
            let front: Vec<(f64, f64)> = db
                .iter()
                .map(|p| (p.metrics.energy, p.metrics.error_rate()))
                .collect();

            // The acceptable-error-rate requirement is normally
            // distributed; the makespan requirement stays non-binding.
            let rels = Summary::from_values(db.iter().map(|p| p.metrics.reliability));
            let sigma = ((rels.max - rels.min) * 0.25).max(1e-6);
            let mean_req = (rels.mean - sigma).max(0.0);
            // Worst-case provisioning: the fixed configuration must satisfy
            // the strictest requirement that practically occurs (~mean+2σ,
            // the paper's "lower than 2% error rate at all times"): the
            // cheapest point at least that reliable, falling back to the
            // most reliable point.
            let worst_case = (mean_req + 2.0 * sigma).min(rels.max);
            let fixed_energy = db
                .iter()
                .filter(|p| p.metrics.reliability >= worst_case - 1e-12)
                .map(|p| p.metrics.energy)
                .fold(f64::INFINITY, f64::min);
            let fixed_energy = if fixed_energy.is_finite() {
                fixed_energy
            } else {
                db.iter()
                    .max_by(|a, b| a.metrics.reliability.total_cmp(&b.metrics.reliability))
                    .map(|p| p.metrics.energy)
                    .expect("db is non-empty")
            };

            // Dynamic adaptation under the same requirement distribution.
            let qos = QosVariationModel::new(f64::MAX / 4.0, 0.0, mean_req, sigma, 0.0);
            let ctx = flow.context(DbChoice::Based);
            let mut policy = UraPolicy::new(1.0).expect("1 is a valid p_rc");
            let result = simulate(&ctx, &mut policy, &qos, &env.sim_config(env.seed ^ 0xf161));

            MotivationSystem {
                label: label.to_string(),
                front,
                fixed_energy,
                dynamic_energy: result.avg_energy,
            }
        })
        .collect()
}

/// Summary helper: mean of a slice (0 when empty).
pub fn mean(xs: &[f64]) -> f64 {
    Summary::from_values(xs.iter().copied()).mean
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> Env {
        Env::quick()
    }

    #[test]
    fn csp_comparison_runs_and_reduces_cost() {
        let e = env();
        let b = Bundle::new(&e, 10);
        let c = csp_migration_comparison(&e, &b, 10);
        assert!(c.baseline.events > 0);
        // The reconfiguration-cost-aware arm must not pay more on average.
        assert!(c.proposed.avg_reconfig_cost <= c.baseline.avg_reconfig_cost + 1e-9);
        assert!(c.baseline.trace().len() <= 10);
    }

    #[test]
    fn design_points_include_pareto_origin() {
        let e = env();
        let b = Bundle::new(&e, 10);
        let pts = csp_design_points(&e, &b);
        assert!(!pts.is_empty());
        assert!(pts.iter().any(|(_, _, o)| *o == PointOrigin::Pareto));
    }

    #[test]
    fn prc_sweep_monotone_reconfig_cost_at_extremes() {
        let e = env();
        let b = Bundle::new(&e, 10);
        let sweep = prc_sweep(&e, &b, &[0.0, 1.0]);
        assert_eq!(sweep.len(), 2);
        let (lo, hi) = (&sweep[0].1, &sweep[1].1);
        assert!(lo.total_reconfig_cost <= hi.total_reconfig_cost + 1e-9);
        assert!(hi.avg_energy <= lo.avg_energy + 1e-9);
    }

    #[test]
    fn motivation_produces_three_systems() {
        let e = env();
        let b = Bundle::new(&e, 10);
        let systems = motivation(&e, &b);
        assert_eq!(systems.len(), 3);
        for s in &systems {
            assert!(!s.front.is_empty(), "{} front empty", s.label);
            // Dynamic adaptation must not cost materially more than the
            // worst-case fixed provisioning (statistically it is cheaper;
            // allow slack at the tiny test scale).
            assert!(
                s.dynamic_energy <= s.fixed_energy * 1.05 + 1e-6,
                "{}: dynamic {} vs fixed {}",
                s.label,
                s.dynamic_energy,
                s.fixed_energy
            );
        }
    }
}
