//! Table 6 — percentage improvements using ReD compared to BaseD with the
//! relevant extreme values of p_RC: reconfiguration-cost reduction at
//! p_RC = 0 and energy reduction at p_RC = 1.

use clr_experiments::kernels::{red_vs_based, Bundle};
use clr_experiments::report::{f1, Table};
use clr_experiments::{pct_reduction, Env};

fn main() {
    let env = Env::from_env();
    println!("# Table 6 — ReD vs BaseD at p_RC = 0 (dRC) and p_RC = 1 (energy)");
    let mut table = Table::new(
        "Percentage improvements using ReD compared to BaseD",
        &[
            "tasks",
            "reduction_avg_drc_%_prc0",
            "reduction_avg_energy_%_prc1",
        ],
    );
    let mut drc_red = Vec::new();
    let mut energy_red = Vec::new();
    for &n in &env.task_counts {
        let bundle = Bundle::new(&env, n);
        let at0 = red_vs_based(&env, &bundle, 0.0);
        let at1 = red_vs_based(&env, &bundle, 1.0);
        let d = pct_reduction(
            at0.baseline.avg_reconfig_cost,
            at0.proposed.avg_reconfig_cost,
        );
        let e = pct_reduction(at1.baseline.avg_energy, at1.proposed.avg_energy);
        drc_red.push(d);
        energy_red.push(e);
        table.row([n.to_string(), f1(d), f1(e)]);
        eprintln!("  done n = {n}");
    }
    table.emit("table6");
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len().max(1) as f64;
    println!(
        "\nMeans: dRC reduction {:.1}% (paper avg 7.3%, max 26%), energy reduction {:.1}% \
         (paper avg 7.3%, max 37%). Zeros for several sizes are expected — the extra \
         points only help where the Pareto front left low-dRC/low-energy gaps.",
        mean(&drc_red),
        mean(&energy_red)
    );
}
