//! Multi-tenant decision serving: a fleet of applications, each with its
//! own explored database and adaptation policy, replayed against one
//! seeded QoS-event trace through the `clr-serve` engine.
//!
//! Demonstrates the serving half of the methodology at experiment scale:
//! per-tenant adaptation outcomes, the dropped-event accounting, and the
//! thread-count invariance of the engine (the same replay at 1, 4 and 8
//! workers must produce identical reports — asserted here, byte-diffed
//! in `ci.sh`).

use std::time::Instant;

use clr_core::prelude::*;
use clr_core::serve::{generate_trace, replay, PolicySpec, ReplayConfig, Tenant};
use clr_experiments::kernels::Bundle;
use clr_experiments::report::{f1, f3, Table};
use clr_experiments::Env;

fn main() {
    let env = Env::from_env();
    println!("# Multi-tenant decision serving");

    // A heterogeneous fleet: three application scales, one policy each
    // (risk-averse uRA, learning AuRA, the hypervolume baseline).
    let fleet_spec: [(&str, usize, PolicySpec); 3] = [
        ("cam", 10, PolicySpec::Ura { p_rc: 0.8 }),
        (
            "nav",
            20,
            PolicySpec::Aura {
                p_rc: 0.5,
                gamma: 0.6,
                alpha: 0.1,
            },
        ),
        ("audio", 30, PolicySpec::Hv),
    ];

    let mut tenants = Vec::new();
    for (name, n, policy) in fleet_spec {
        let bundle = Bundle::new(&env, n);
        let flow = bundle.flow(&env, ExplorationMode::Full);
        let db = flow.based().clone();
        drop(flow);
        tenants.push(
            Tenant::from_parts(name, bundle.graph, bundle.platform, db, policy)
                .expect("explored databases are non-empty"),
        );
    }

    let trace = generate_trace(&tenants, env.seed, env.sim_cycles, 100.0);
    println!(
        "\ntrace: {} events across {} tenants ({} cycles, seed {})\n",
        trace.len(),
        tenants.len(),
        env.sim_cycles,
        env.seed
    );

    // Replay at several worker counts; the reports must be identical.
    let mut reference = None;
    for threads in [1usize, 4, 8] {
        let config = ReplayConfig {
            threads,
            ..ReplayConfig::default()
        };
        // clr-audit: nondet(begin) throughput numbers are stderr reporting only, never journaled
        let start = Instant::now();
        let report = replay(&tenants, &trace, &config).expect("unique tenant names");
        let elapsed = start.elapsed().as_secs_f64();
        // clr-audit: nondet(end)
        let events = report.total_events();
        eprintln!(
            "  threads={threads}: {events} decisions in {:.3}s ({:.0} events/s)",
            elapsed,
            events as f64 / elapsed.max(1e-9)
        );
        match &reference {
            None => reference = Some(report),
            Some(r) => assert_eq!(r, &report, "replay must be thread-count invariant"),
        }
    }
    let report = reference.expect("at least one replay ran");

    let mut table = Table::new(
        "Per-tenant serving outcomes (thread-count invariant)",
        &[
            "tenant",
            "policy",
            "points",
            "events",
            "reconf",
            "viol",
            "total_drc",
            "mean_drc",
        ],
    );
    for (outcome, (_, _, policy)) in report.outcomes().iter().zip(fleet_spec) {
        table.row([
            outcome.name.clone(),
            policy.to_string(),
            outcome.points.to_string(),
            outcome.events.to_string(),
            outcome.reconfigurations.to_string(),
            outcome.violations.to_string(),
            f1(outcome.total_drc),
            f3(outcome.total_drc / (outcome.events.max(1)) as f64),
        ]);
    }
    table.emit("serving");

    report.emit_obs(&env.obs);
    match env.obs.export("results", "serving") {
        Ok(paths) => {
            for p in paths {
                eprintln!("  wrote {}", p.display());
            }
        }
        Err(e) => eprintln!("  journal export failed: {e}"),
    }
}
