//! Table 5 — trade-off of reconfiguration-cost minimisation on a single
//! set of design points: percentage reduction in average reconfiguration
//! cost and percentage increase in average energy when switching the
//! user-modulation parameter from performance mode (p_RC = 1) to
//! reconfiguration-cost mode (p_RC = 0).

use clr_experiments::kernels::{prc_sweep, Bundle};
use clr_experiments::report::{f1, Table};
use clr_experiments::{pct_increase, pct_reduction, Env};

fn main() {
    let env = Env::from_env();
    println!("# Table 5 — reconfiguration-cost minimisation on a single database");
    let mut table = Table::new(
        "p_RC = 0 vs p_RC = 1 on one (ReD) database",
        &["tasks", "reduction_avg_drc_%", "increase_avg_energy_%"],
    );
    for &n in &env.task_counts {
        let bundle = Bundle::new(&env, n);
        let sweep = prc_sweep(&env, &bundle, &[0.0, 1.0]);
        let (min_cost, max_perf) = (&sweep[0].1, &sweep[1].1);
        table.row([
            n.to_string(),
            f1(pct_reduction(
                max_perf.avg_reconfig_cost,
                min_cost.avg_reconfig_cost,
            )),
            f1(pct_increase(max_perf.avg_energy, min_cost.avg_energy)),
        ]);
        eprintln!("  done n = {n}");
    }
    table.emit("table5");
    println!("\nPaper shape: large dRC reductions (8–51%) at single-digit energy increases.");
}
