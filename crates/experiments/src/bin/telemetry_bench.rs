//! `telemetry_bench` — the cost of watching the fleet.
//!
//! Measures what the live-telemetry subsystem adds to the serving hot
//! path: the closed loop of `Daemon::handle_batch` with the per-tenant
//! health registries on (the default) versus off
//! (`ReplayConfig::telemetry = false`), plus micro-benches of the
//! primitives a snapshot is made of — histogram record, rolling-window
//! push, and the schema-2 snapshot codec round trip.
//!
//! Results go to stderr and to `results/BENCH_telemetry.json`, in the
//! same schema-versioned shape as `BENCH_serve.json` (`schema`,
//! `commit`, per-group `events_per_sec`). The headline number is
//! `telemetry_overhead_pct`: the closed-loop cost of leaving telemetry
//! on, which the obs bar in `crates/serve/tests/telemetry.rs` guards.
//! `CLR_QUICK=1` shrinks to smoke scale; throughput is wall-clock and
//! machine-dependent, the served decisions stay deterministic.

use std::io::Write as _;
use std::time::Instant;

use clr_core::prelude::*;
use clr_core::serve::wire::Request;
use clr_core::serve::{Daemon, DaemonConfig};
use clr_obs::{BitWindow, QuantileHistogram, TelemetrySnapshot};

/// Harness scale.
struct Scale {
    tenants: usize,
    closed_events: usize,
    window: usize,
}

impl Scale {
    fn from_env() -> Self {
        if std::env::var("CLR_QUICK").is_ok_and(|v| v == "1") {
            Self {
                tenants: 64,
                closed_events: 50_000,
                window: 256,
            }
        } else {
            Self {
                tenants: 512,
                closed_events: 1_000_000,
                window: 256,
            }
        }
    }
}

/// A tiny deterministic generator (same LCG the bench suite uses).
struct Lcg(u64);

impl Lcg {
    fn next_f64(&mut self) -> f64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }

    fn next_index(&mut self, n: usize) -> usize {
        (self.next_f64() * n as f64) as usize % n.max(1)
    }
}

/// The serve_load synthetic fleet: shared mapped graph, skewed metrics.
fn fleet(n: usize) -> Vec<Tenant> {
    let graph = jpeg_encoder();
    let platform = Platform::dac19();
    let mapping = Mapping::first_fit(&graph, &platform).expect("jpeg maps onto dac19");
    (0..n)
        .map(|i| {
            let skew = 1.0 + (i % 17) as f64 * 0.05;
            let mut db = DesignPointDb::new("load");
            for p in 0..16 {
                let f = f64::from(p) / 16.0;
                db.push(DesignPoint::new(
                    mapping.clone(),
                    SystemMetrics {
                        makespan: 50.0 + 100.0 * f * skew,
                        reliability: 0.6 + 0.35 * f,
                        energy: 1.0 + f,
                        peak_power: 1.0,
                        mean_mttf: 100.0,
                    },
                    PointOrigin::Pareto,
                ));
            }
            Tenant::from_parts(
                format!("t{i}"),
                graph.clone(),
                platform.clone(),
                db,
                PolicySpec::Ura { p_rc: 0.5 },
            )
            .expect("synthetic fleet tenants are valid")
        })
        .collect()
}

/// `count` seeded requests spread over the fleet.
fn requests(tenants: &[Tenant], count: usize, seed: u64) -> Vec<Request> {
    let mut lcg = Lcg(seed | 1);
    (0..count)
        .map(|i| {
            let tenant = &tenants[lcg.next_index(tenants.len())];
            Request {
                seq: i as u64 + 1,
                tenant: tenant.name().to_string(),
                time: i as f64,
                spec: QosSpec::new(60.0 + 160.0 * lcg.next_f64(), 0.9 * lcg.next_f64()),
            }
        })
        .collect()
}

/// One closed-loop run with telemetry on or off; returns elapsed seconds.
fn closed_loop_once(
    tenants: &[Tenant],
    requests: &[Request],
    window: usize,
    telemetry: bool,
) -> f64 {
    let config = DaemonConfig {
        replay: ReplayConfig {
            telemetry,
            ..ReplayConfig::default()
        },
        ..DaemonConfig::default()
    };
    let daemon = Daemon::new(tenants, &config).expect("unique tenant names");
    let mut served = 0usize;
    // clr-audit: nondet(begin) throughput timing, reporting only
    let start = Instant::now();
    for chunk in requests.chunks(window) {
        served += daemon.handle_batch(chunk).len();
    }
    let elapsed = start.elapsed().as_secs_f64();
    // clr-audit: nondet(end)
    assert_eq!(served, requests.len(), "every request is answered");
    elapsed
}

/// Best-of-N closed-loop comparison with the on/off rounds interleaved,
/// so scheduler noise on a shared machine hits both configurations
/// equally instead of biasing whichever phase ran in the noisy window.
/// Returns `(on_elapsed, off_elapsed)` in seconds.
fn closed_loop_pair(tenants: &[Tenant], requests: &[Request], window: usize) -> (f64, f64) {
    let mut best_on = f64::INFINITY;
    let mut best_off = f64::INFINITY;
    for _ in 0..4 {
        best_on = best_on.min(closed_loop_once(tenants, requests, window, true));
        best_off = best_off.min(closed_loop_once(tenants, requests, window, false));
    }
    (best_on, best_off)
}

/// Mean ns/op of `f` over `iters` runs.
fn time_ns(iters: usize, mut f: impl FnMut()) -> f64 {
    // clr-audit: nondet(begin) wall-clock micro-timing, reporting only
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters.max(1) as f64
    // clr-audit: nondet(end)
}

fn main() {
    let scale = Scale::from_env();
    let threads = clr_par::resolve_threads(0);
    eprintln!(
        "# telemetry_bench: {} tenants, {} closed-loop events, {} threads",
        scale.tenants, scale.closed_events, threads
    );

    let tenants = fleet(scale.tenants);
    let events = requests(&tenants, scale.closed_events, 47);

    let (on_elapsed, off_elapsed) = closed_loop_pair(&tenants, &events, scale.window);
    let on_rate = events.len() as f64 / on_elapsed.max(1e-9);
    let off_rate = events.len() as f64 / off_elapsed.max(1e-9);
    eprintln!(
        "  telemetry on:  {} events in {on_elapsed:.3} s — {on_rate:.0} events/s",
        events.len()
    );
    eprintln!(
        "  telemetry off: {} events in {off_elapsed:.3} s — {off_rate:.0} events/s",
        events.len()
    );
    let overhead_pct = (on_elapsed / off_elapsed.max(1e-9) - 1.0) * 100.0;
    eprintln!("  closed-loop telemetry overhead: {overhead_pct:.2} %");

    // Snapshot assembly + codec at fleet scale: what one live stats
    // query costs, and whether the codec round-trips what it encodes.
    let config = DaemonConfig::default();
    let daemon = Daemon::new(&tenants, &config).expect("unique tenant names");
    for chunk in events.chunks(scale.window) {
        daemon.handle_batch(chunk);
    }
    let probe_iters = 50;
    let assemble_ns = time_ns(probe_iters, || {
        std::hint::black_box(daemon.telemetry("fleet", false, None));
    });
    let snapshot = daemon.telemetry("fleet", false, None);
    let text = snapshot.to_json();
    let codec_iters = 200;
    let encode_ns = time_ns(codec_iters, || {
        std::hint::black_box(snapshot.to_json());
    });
    let decode_ns = time_ns(codec_iters, || {
        std::hint::black_box(
            TelemetrySnapshot::from_json(&text).expect("self-encoded snapshot decodes"),
        );
    });
    assert_eq!(
        TelemetrySnapshot::from_json(&text)
            .expect("self-encoded snapshot decodes")
            .to_json(),
        text,
        "snapshot codec round-trips byte-for-byte"
    );
    eprintln!(
        "  snapshot ({} tenants, {} B): assemble {assemble_ns:.0} ns, \
         encode {encode_ns:.0} ns, decode {decode_ns:.0} ns",
        scale.tenants,
        text.len()
    );

    // Primitive micro-benches: the per-decision record cost.
    let hist_iters = 1 << 20;
    let mut hist = QuantileHistogram::new();
    let mut x = 0.1f64;
    let hist_ns = time_ns(hist_iters, || {
        hist.record(std::hint::black_box(x));
        x = (x * 1.37) % 1.0e9 + 1.0e-6;
    });
    let mut window = BitWindow::new(64);
    let mut v = false;
    let window_ns = time_ns(hist_iters, || {
        window.push(std::hint::black_box(v));
        v = !v;
    });
    std::hint::black_box((&hist, &window));
    eprintln!("  histogram record {hist_ns:.1} ns, window push {window_ns:.1} ns");

    let per_sec = |ns: f64| 1e9 / ns.max(1e-3);
    let json = format!(
        "{{\n  \"schema\": {},\n  \"bench\": \"telemetry\",\n  \"commit\": {:?},\n  \
         \"tenants\": {},\n  \"threads\": {threads},\n  \
         \"telemetry_overhead_pct\": {overhead_pct:.2},\n  \"groups\": {{\n    \
         \"closed_loop_telemetry_on\": {{\"events\": {}, \"elapsed_s\": {on_elapsed:.4}, \
         \"events_per_sec\": {on_rate:.0}}},\n    \
         \"closed_loop_telemetry_off\": {{\"events\": {}, \"elapsed_s\": {off_elapsed:.4}, \
         \"events_per_sec\": {off_rate:.0}}},\n    \
         \"snapshot_assemble\": {{\"ns_per_op\": {assemble_ns:.0}, \"events_per_sec\": {:.0}}},\n    \
         \"snapshot_encode\": {{\"ns_per_op\": {encode_ns:.0}, \"bytes\": {}, \"events_per_sec\": {:.0}}},\n    \
         \"snapshot_decode\": {{\"ns_per_op\": {decode_ns:.0}, \"events_per_sec\": {:.0}}},\n    \
         \"histogram_record\": {{\"ns_per_op\": {hist_ns:.1}, \"events_per_sec\": {:.0}}},\n    \
         \"window_push\": {{\"ns_per_op\": {window_ns:.1}, \"events_per_sec\": {:.0}}}\n  }}\n}}\n",
        clr_experiments::report::BENCH_SCHEMA_VERSION,
        clr_experiments::report::bench_commit(),
        scale.tenants,
        events.len(),
        events.len(),
        per_sec(assemble_ns),
        text.len(),
        per_sec(encode_ns),
        per_sec(decode_ns),
        per_sec(hist_ns),
        per_sec(window_ns),
    );
    if let Err(e) = std::fs::create_dir_all("results") {
        eprintln!("  cannot create results/: {e}");
        return;
    }
    match std::fs::File::create("results/BENCH_telemetry.json")
        .and_then(|mut f| f.write_all(json.as_bytes()))
    {
        Ok(()) => eprintln!("  wrote results/BENCH_telemetry.json"),
        Err(e) => eprintln!("  cannot write results/BENCH_telemetry.json: {e}"),
    }
    print!("{json}");
}
