//! Table 7 — percentage improvements using the agent-based AuRA compared
//! to uRA with the relevant extreme values of p_RC. The paper notes mostly
//! positive improvements with occasional small regressions where the value
//! functions did not converge (many stored points).

use clr_experiments::kernels::{aura_vs_ura, Bundle};
use clr_experiments::report::{f1, Table};
use clr_experiments::{pct_reduction, Env};

fn main() {
    let env = Env::from_env();
    println!("# Table 7 — AuRA vs uRA at p_RC = 0 (dRC) and p_RC = 1 (energy)");
    let mut table = Table::new(
        "Percentage improvements using AuRA compared to uRA",
        &[
            "tasks",
            "reduction_avg_drc_%_prc0",
            "reduction_avg_energy_%_prc1",
        ],
    );
    for &n in &env.task_counts {
        let bundle = Bundle::new(&env, n);
        let at0 = aura_vs_ura(&env, &bundle, 0.0);
        let at1 = aura_vs_ura(&env, &bundle, 1.0);
        table.row([
            n.to_string(),
            f1(pct_reduction(
                at0.baseline.avg_reconfig_cost,
                at0.proposed.avg_reconfig_cost,
            )),
            f1(pct_reduction(
                at1.baseline.avg_energy,
                at1.proposed.avg_energy,
            )),
        ]);
        eprintln!("  done n = {n}");
    }
    table.emit("table7");
    println!(
        "\nPaper shape: mostly positive (up to ~58% dRC reduction), with a few small \
         negative entries where the value functions fail to converge."
    );
}
