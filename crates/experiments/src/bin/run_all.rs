//! Convenience driver: regenerates every table and figure in sequence by
//! invoking the sibling experiment binaries' code paths directly would
//! duplicate their reporting, so this simply shells out to the binaries
//! next to itself (same target directory), forwarding the environment
//! (`CLR_FULL`, `CLR_QUICK`, `CLR_OBS`, `CLR_THREADS`) — so with
//! `CLR_OBS=json` every binary drops its own journal under `results/`.

use std::path::PathBuf;
use std::process::Command;

const BINARIES: [&str; 11] = [
    "fig1",
    "table4",
    "fig5",
    "fig6",
    "table5",
    "table6",
    "table7",
    "fig7",
    "ablations",
    "artifacts",
    "workloads",
];

fn main() {
    let me = std::env::current_exe().expect("current executable path");
    let dir: PathBuf = me.parent().expect("executable directory").to_path_buf();
    let mut failures = Vec::new();
    for bin in BINARIES {
        let path = dir.join(bin);
        println!("\n=================== {bin} ===================");
        let status = Command::new(&path).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{bin} exited with {s}");
                failures.push(bin);
            }
            Err(e) => {
                eprintln!("could not launch {}: {e} (build with `cargo build --release -p clr-experiments` first)", path.display());
                failures.push(bin);
            }
        }
    }
    if failures.is_empty() {
        println!("\nall experiments regenerated; CSVs under results/");
    } else {
        eprintln!("\nfailed: {failures:?}");
        std::process::exit(1);
    }
}
