//! Table 4 — percentage reduction in task-migration cost using ReD over
//! BaseD for a constraint-satisfaction problem (R = 0) w.r.t. the QoS
//! metrics, for 10–100-task applications.

use clr_experiments::kernels::{csp_migration_comparison, Bundle};
use clr_experiments::report::{f1, Table};
use clr_experiments::{pct_reduction, Env};

fn main() {
    let env = Env::from_env();
    println!("# Table 4 — migration-cost reduction, ReD over BaseD (CSP, R = 0)");
    let mut table = Table::new(
        "Percentage reduction in task-migration cost using ReD over BaseD",
        &[
            "tasks",
            "based_avg_drc",
            "red_avg_drc",
            "reduction_%",
            "based_reconfigs",
            "red_reconfigs",
        ],
    );
    let mut reductions = Vec::new();
    for &n in &env.task_counts {
        let bundle = Bundle::new(&env, n);
        let c = csp_migration_comparison(&env, &bundle, 0);
        let red_pct = pct_reduction(c.baseline.avg_reconfig_cost, c.proposed.avg_reconfig_cost);
        reductions.push(red_pct);
        table.row([
            n.to_string(),
            f1(c.baseline.avg_reconfig_cost),
            f1(c.proposed.avg_reconfig_cost),
            f1(red_pct),
            c.baseline.reconfigurations.to_string(),
            c.proposed.reconfigurations.to_string(),
        ]);
        eprintln!("  done n = {n}");
    }
    table.emit("table4");
    let avg = reductions.iter().sum::<f64>() / reductions.len().max(1) as f64;
    println!("\nMean reduction: {avg:.1}% (paper reports 23–56% across sizes).");
    match env.obs.export("results", "table4") {
        Ok(paths) => {
            for p in paths {
                eprintln!("  journal: {}", p.display());
            }
        }
        Err(e) => eprintln!("  journal export failed: {e}"),
    }
}
