//! Dumps the inspectable artefacts of one exploration: the application's
//! DOT graph and structural metrics, the HEFT schedule (ASCII Gantt +
//! CSV), the stored design-point database as CSV, and a uRA trace
//! analysis — everything a user would want to eyeball when studying a
//! run, written under `results/artifacts/`.

use std::fs;

use clr_core::prelude::*;
use clr_core::runtime::TraceAnalysis;
use clr_core::taskgraph::{graph_metrics, to_dot};
use clr_core::{DbChoice, HybridFlow};
use clr_experiments::Env;

fn main() -> std::io::Result<()> {
    let env = Env::from_env();
    let out = "results/artifacts";
    fs::create_dir_all(out)?;

    let graph = env.graph(30);
    let platform = Platform::dac19();
    println!("# Artifacts for a 30-task application on dac19 → {out}/");

    // --- Application. ----------------------------------------------------
    fs::write(format!("{out}/app.dot"), to_dot(&graph))?;
    let gm = graph_metrics(&graph);
    fs::write(format!("{out}/app_metrics.txt"), format!("{gm:#?}\n"))?;
    println!(
        "application: {} tasks / {} edges, depth {}, width {}, parallelism {:.2}, ccr {:.2}",
        gm.tasks, gm.edges, gm.depth, gm.width, gm.parallelism, gm.ccr
    );

    // --- HEFT schedule. ---------------------------------------------------
    let fm = FaultModel::default();
    let heft = heft_mapping(&graph, &platform, &fm).expect("heft maps");
    let eval = Evaluator::new(&graph, &platform, fm);
    let (metrics, schedule) = eval.evaluate_with_schedule(&heft);
    fs::write(format!("{out}/heft_gantt.txt"), gantt_ascii(&schedule, 100))?;
    fs::write(
        format!("{out}/heft_schedule.csv"),
        schedule_csv(&graph, &schedule),
    )?;
    println!(
        "heft schedule: makespan {:.1}, energy {:.0}, reliability {:.5}",
        metrics.makespan, metrics.energy, metrics.reliability
    );

    // --- Exploration + database CSV. ---------------------------------------
    let flow = HybridFlow::builder(&graph, &platform)
        .ga(env.ga)
        .red(env.red)
        .storage_limit(env.storage_limit)
        .qos_variation(env.qos_sigma_frac, env.qos_correlation)
        .seed(env.seed)
        .obs(env.obs.clone())
        .run();
    fs::write(
        format!("{out}/design_points.csv"),
        flow.db(DbChoice::Red).to_csv(),
    )?;
    println!(
        "database: {} stored design points",
        flow.db(DbChoice::Red).len()
    );

    // --- A traced uRA run + analysis. --------------------------------------
    let ctx = flow.context(DbChoice::Red);
    let qos = flow.qos_model(DbChoice::Red);
    let mut policy = UraPolicy::new(0.5).expect("valid p_rc");
    let config = env.sim_config(env.seed ^ 0xa27).with_trace(usize::MAX);
    let run = simulate_obs(&ctx, &mut policy, &qos, &config, &env.obs, "artifacts-ura");
    let analysis = TraceAnalysis::of(run.trace(), 10);
    fs::write(format!("{out}/ura_trace_analysis.txt"), analysis.report())?;
    println!(
        "uRA run: {} events, {} reconfigs, decision work {} point-scans\n\n{}",
        run.events,
        run.reconfigurations,
        run.decision_work,
        analysis.report()
    );
    for p in env.obs.export(out, "artifacts")? {
        eprintln!("  journal: {}", p.display());
    }
    Ok(())
}
