//! Fig. 1 — motivation for dynamic CLR: Pareto fronts of HW-Only vs CLR1
//! vs CLR2 and the average-energy bars (fixed worst-case provisioning vs
//! dynamic run-time adaptation).

use clr_experiments::kernels::{motivation, Bundle};
use clr_experiments::report::{f1, f3, Table};
use clr_experiments::Env;

fn main() {
    let env = Env::from_env();
    let bundle = Bundle::new(&env, 20);
    println!("# Fig. 1 — Motivation for dynamic CLR (20-task application)");
    let systems = motivation(&env, &bundle);

    let mut fronts = Table::new(
        "Pareto fronts: energy vs application error rate",
        &["system", "energy", "error_rate"],
    );
    for s in &systems {
        for (energy, err) in &s.front {
            fronts.row([s.label.clone(), f1(*energy), f3(*err)]);
        }
    }
    fronts.emit("fig1_fronts");

    let mut bars = Table::new(
        "Average energy: fixed (<=2% error at all times) vs dynamic (J_avg)",
        &[
            "system",
            "design_points",
            "fixed_energy",
            "dynamic_energy",
            "dynamic_saving_%",
        ],
    );
    for s in &systems {
        let saving = clr_experiments::pct_reduction(s.fixed_energy, s.dynamic_energy);
        bars.row([
            s.label.clone(),
            s.front.len().to_string(),
            f1(s.fixed_energy),
            f1(s.dynamic_energy),
            f1(saving),
        ]);
    }
    bars.emit("fig1_bars");

    println!(
        "\nPaper shape check: dynamic J_avg < fixed for every system, and the \
         finer-granularity CLR2 (more design points) adapts at lower J_avg than CLR1."
    );
}
