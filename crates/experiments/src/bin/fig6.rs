//! Fig. 6 — reconfiguration-cost traces over the first 50 QoS-requirement
//! changes (80-task application): the BaseD/hyper-volume baseline
//! reconfigures almost every event, the ReD/cost-aware policy only on QoS
//! violations, and the worst single cost `ΔdRC` is much larger for BaseD.

use clr_experiments::kernels::{csp_migration_comparison, Bundle};
use clr_experiments::report::{f1, Table};
use clr_experiments::Env;

fn main() {
    let env = Env::from_env();
    println!("# Fig. 6 — dRC trace over the first 50 QoS changes (80 tasks)");
    let bundle = Bundle::new(&env, 80);
    // The trace retention is a keep-the-*last*-N ring buffer while Fig. 6
    // plots the *first* 50 events, so retain everything and slice here.
    let c = csp_migration_comparison(&env, &bundle, usize::MAX);
    let baseline = &c.baseline.trace()[..c.baseline.trace().len().min(50)];
    let proposed = &c.proposed.trace()[..c.proposed.trace().len().min(50)];

    let mut table = Table::new(
        "Reconfiguration cost per event (first 50 events)",
        &["event", "time", "based_drc", "red_drc"],
    );
    let n = baseline.len().min(proposed.len());
    for i in 0..n {
        let b = &baseline[i];
        let r = &proposed[i];
        table.row([(i + 1).to_string(), f1(b.time), f1(b.drc), f1(r.drc)]);
    }
    table.emit("fig6");

    let based_moves = baseline.iter().filter(|t| t.drc > 0.0).count();
    let red_moves = proposed.iter().filter(|t| t.drc > 0.0).count();
    let based_max = baseline.iter().map(|t| t.drc).fold(0.0f64, f64::max);
    let red_max = proposed.iter().map(|t| t.drc).fold(0.0f64, f64::max);
    println!(
        "\nIn this window: BaseD reconfigured {based_moves}× (ΔdRC max {based_max:.1}), \
         ReD reconfigured {red_moves}× (max {red_max:.1}).\n\
         Paper reports 31 vs 24 reconfigurations with a considerably larger ΔdRC for BaseD."
    );
    export_journal(&env);
}

/// Writes the run journal next to the CSVs when `CLR_OBS` is enabled.
fn export_journal(env: &Env) {
    match env.obs.export("results", "fig6") {
        Ok(paths) => {
            for p in paths {
                eprintln!("  journal: {}", p.display());
            }
        }
        Err(e) => eprintln!("  journal export failed: {e}"),
    }
}
