//! Fig. 6 — reconfiguration-cost traces over the first 50 QoS-requirement
//! changes (80-task application): the BaseD/hyper-volume baseline
//! reconfigures almost every event, the ReD/cost-aware policy only on QoS
//! violations, and the worst single cost `ΔdRC` is much larger for BaseD.

use clr_experiments::kernels::{csp_migration_comparison, Bundle};
use clr_experiments::report::{f1, Table};
use clr_experiments::Env;

fn main() {
    let env = Env::from_env();
    println!("# Fig. 6 — dRC trace over the first 50 QoS changes (80 tasks)");
    let bundle = Bundle::new(&env, 80);
    let c = csp_migration_comparison(&env, &bundle, 50);

    let mut table = Table::new(
        "Reconfiguration cost per event (first 50 events)",
        &["event", "time", "based_drc", "red_drc"],
    );
    let n = c.baseline.trace.len().min(c.proposed.trace.len());
    for i in 0..n {
        let b = &c.baseline.trace[i];
        let r = &c.proposed.trace[i];
        table.row([(i + 1).to_string(), f1(b.time), f1(b.drc), f1(r.drc)]);
    }
    table.emit("fig6");

    let based_moves = c.baseline.trace.iter().filter(|t| t.drc > 0.0).count();
    let red_moves = c.proposed.trace.iter().filter(|t| t.drc > 0.0).count();
    let based_max = c
        .baseline
        .trace
        .iter()
        .map(|t| t.drc)
        .fold(0.0f64, f64::max);
    let red_max = c
        .proposed
        .trace
        .iter()
        .map(|t| t.drc)
        .fold(0.0f64, f64::max);
    println!(
        "\nIn this window: BaseD reconfigured {based_moves}× (ΔdRC max {based_max:.1}), \
         ReD reconfigured {red_moves}× (max {red_max:.1}).\n\
         Paper reports 31 vs 24 reconfigurations with a considerably larger ΔdRC for BaseD."
    );
}
