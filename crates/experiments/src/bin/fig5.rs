//! Fig. 5 — Pareto front and additional design points from the
//! reconfiguration-cost-aware optimisation (80-task application, CSP
//! mode). The additional points are the ones the paper marks with `>`.

use clr_core::prelude::PointOrigin;
use clr_experiments::kernels::{csp_design_points, Bundle};
use clr_experiments::report::{f1, f3, Table};
use clr_experiments::Env;

fn main() {
    let env = Env::from_env();
    println!("# Fig. 5 — stored design points in the QoS plane (80 tasks, CSP)");
    let bundle = Bundle::new(&env, 80);
    let points = csp_design_points(&env, &bundle);

    let mut table = Table::new(
        "Design points: average makespan vs functional reliability",
        &["makespan", "reliability", "origin"],
    );
    let mut pareto = 0usize;
    let mut extra = 0usize;
    for (s, f, origin) in &points {
        let tag = match origin {
            PointOrigin::Pareto => {
                pareto += 1;
                "pareto"
            }
            PointOrigin::ReconfigAware => {
                extra += 1;
                "additional(>)"
            }
        };
        table.row([f1(*s), f3(*f), tag.to_string()]);
    }
    table.emit("fig5");
    println!(
        "\n{pareto} Pareto points + {extra} additional reconfiguration-cost-aware \
         points (the paper's front similarly gains extra non-dominant points)."
    );
}
