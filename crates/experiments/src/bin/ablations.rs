//! Ablations of the design choices DESIGN.md calls out (beyond the
//! paper's own tables):
//!
//! 1. **Front construction** — hyper-volume-fitness GA alone vs NSGA-II
//!    alone vs the merged front the pipeline uses, scored by front size
//!    and dominated hyper-volume.
//! 2. **dRC model** — with vs without the PRR bit-stream reload term.
//! 3. **AuRA prior** — the agent with vs without the offline Monte-Carlo
//!    prior (the paper's "prior knowledge" feature).
//! 4. **Storage constraint** — average dRC / energy as the stored-point
//!    budget shrinks.
//! 5. **Lifetime objective** — the MTTF of the chosen operating points
//!    with and without the lifetime objective in the exploration.
//! 6. **Eq.-4 variants** — CLR-integrated task mapping (`Ψt = Mt × Ct`)
//!    vs task-mapping only (`Mt`) vs CLR-configuration only (`Ct`).

use clr_core::dse::{explore_based, DseConfig, ExplorationMode};
use clr_core::moea::hypervolume;
use clr_core::prelude::*;
use clr_core::runtime::HvPolicy;
use clr_core::{DbChoice, HybridFlow};
use clr_experiments::kernels::Bundle;
use clr_experiments::report::{f1, f3, Table};
use clr_experiments::Env;

fn main() {
    let env = Env::from_env();
    println!("# Ablation studies");
    front_construction(&env);
    drc_prr_term(&env);
    aura_prior(&env);
    storage_sweep(&env);
    lifetime_objective(&env);
    eq4_variants(&env);
}

/// Ablation 1: HvGa-only vs NSGA-II-only vs merged front.
fn front_construction(env: &Env) {
    let bundle = Bundle::new(env, 30);
    let mut table = Table::new(
        "Ablation 1 — front construction (30 tasks, full mode)",
        &["variant", "points", "hypervolume"],
    );
    // The merged pipeline (what explore_based does).
    let cfg = DseConfig {
        ga: env.ga,
        mode: ExplorationMode::Full,
        reference: None,
        max_points: None,
    };
    let merged = explore_based(
        &bundle.graph,
        &bundle.platform,
        FaultModel::default(),
        ConfigSpace::fine(),
        &cfg,
        env.seed,
    );
    // Common reference: 1.05× the per-axis maxima of the merged front.
    let objs_of = |db: &clr_core::dse::DesignPointDb| -> Vec<Vec<f64>> {
        db.iter()
            .map(|p| ExplorationMode::Full.objectives_of(&p.metrics))
            .collect()
    };
    let merged_objs = objs_of(&merged);
    let mut reference = vec![f64::NEG_INFINITY; 3];
    for o in &merged_objs {
        for (r, v) in reference.iter_mut().zip(o) {
            *r = r.max(*v * 1.05);
        }
    }

    // Variant fronts via the underlying engines.
    use clr_core::dse::ClrMappingProblem;
    use clr_core::moea::{HvGa, Nsga2};
    let problem = ClrMappingProblem::new(
        &bundle.graph,
        &bundle.platform,
        FaultModel::default(),
        ConfigSpace::fine(),
        ExplorationMode::Full,
    );
    let hv_archive = HvGa::new(problem.clone(), env.ga, reference.clone()).run(env.seed);
    let hv_objs: Vec<Vec<f64>> = hv_archive.objectives();
    let nsga_front = Nsga2::new(problem, env.ga).run(env.seed);
    let nsga_objs: Vec<Vec<f64>> = nsga_front.iter().map(|i| i.objectives.clone()).collect();

    for (name, objs) in [
        ("hvga-only", &hv_objs),
        ("nsga2-only", &nsga_objs),
        ("merged (pipeline)", &merged_objs),
    ] {
        table.row([
            name.to_string(),
            objs.len().to_string(),
            format!(
                "{:.3e}",
                hypervolume(objs, &reference).expect("finite front")
            ),
        ]);
    }
    table.emit("ablation_front_construction");
}

/// Ablation 6: the three Ψt cases of Eq. (4). The integrated problem's
/// front should dominate both single-axis variants.
fn eq4_variants(env: &Env) {
    use clr_core::dse::{ClrMappingProblem, ProblemVariant};
    use clr_core::moea::{hypervolume, Nsga2};
    let bundle = Bundle::new(env, 20);
    let fm = FaultModel::default().with_lambda_seu(1e-3);
    let base = heft_mapping(&bundle.graph, &bundle.platform, &fm).expect("heft maps");
    let mk = |variant: ProblemVariant| {
        ClrMappingProblem::new(
            &bundle.graph,
            &bundle.platform,
            fm,
            ConfigSpace::fine(),
            ExplorationMode::Full,
        )
        .with_variant(variant)
    };
    let variants = [
        ("integrated (Mt x Ct)", mk(ProblemVariant::Integrated)),
        ("mapping-only (Mt)", mk(ProblemVariant::MappingOnly)),
        ("clr-only (Ct)", mk(ProblemVariant::ClrOnly { base })),
    ];

    // Common reference: maxima over every variant's front, padded.
    let fronts: Vec<(String, Vec<Vec<f64>>)> = variants
        .into_iter()
        .map(|(name, prob)| {
            let front = Nsga2::new(prob, env.ga).run(env.seed);
            (
                name.to_string(),
                front.into_iter().map(|i| i.objectives).collect(),
            )
        })
        .collect();
    let mut reference = vec![f64::NEG_INFINITY; 3];
    for (_, objs) in &fronts {
        for o in objs {
            for (r, v) in reference.iter_mut().zip(o) {
                *r = r.max(*v * 1.05);
            }
        }
    }

    let mut table = Table::new(
        "Ablation 6 — Eq. 4 problem variants (20 tasks, NSGA-II fronts)",
        &["variant", "points", "hypervolume"],
    );
    for (name, objs) in &fronts {
        table.row([
            name.clone(),
            objs.len().to_string(),
            format!(
                "{:.3e}",
                hypervolume(objs, &reference).expect("finite front")
            ),
        ]);
    }
    table.emit("ablation_eq4_variants");
    println!(
        "
(Joint optimisation over Mt × Ct should dominate either single axis — the          core argument for CLR-integrated task mapping.)"
    );
}

/// Ablation 2: dRC with vs without PRR bit-stream reloads.
fn drc_prr_term(env: &Env) {
    let bundle = Bundle::new(env, 40);
    // Same platform without PRRs: bit-stream term vanishes.
    let mut no_prr_builder = Platform::builder();
    for t in bundle.platform.pe_types() {
        no_prr_builder = no_prr_builder.pe_type(t.clone());
    }
    for pe in bundle.platform.pes() {
        no_prr_builder = no_prr_builder.pe(pe.type_id(), pe.local_memory_kib());
    }
    let no_prr = no_prr_builder
        .interconnect(*bundle.platform.interconnect())
        .build()
        .expect("prr-less platform is valid");

    let mut table = Table::new(
        "Ablation 2 — dRC with vs without PRR bit-stream reloads (40 tasks, CSP)",
        &["platform", "baseline_avg_drc", "red_policy_avg_drc"],
    );
    for (label, platform) in [("with PRRs", &bundle.platform), ("without PRRs", &no_prr)] {
        let flow = HybridFlow::builder(&bundle.graph, platform)
            .ga(env.ga)
            .mode(ExplorationMode::Csp)
            .red(env.red)
            .storage_limit(env.storage_limit)
            .seed(env.seed)
            .run();
        let qos = QosVariationModel::calibrated_walk(
            flow.based(),
            env.qos_sigma_frac,
            env.qos_correlation,
        );
        let config = env.sim_config(env.seed ^ 40);
        let mut hv = HvPolicy::new();
        let base = simulate(&flow.context(DbChoice::Based), &mut hv, &qos, &config);
        let mut ura = UraPolicy::new(0.0).expect("valid p_rc");
        let red = simulate(&flow.context(DbChoice::Red), &mut ura, &qos, &config);
        table.row([
            label.to_string(),
            f1(base.avg_reconfig_cost),
            f1(red.avg_reconfig_cost),
        ]);
    }
    table.emit("ablation_drc_prr");
}

/// Ablation 3: AuRA with vs without the Monte-Carlo prior.
fn aura_prior(env: &Env) {
    let bundle = Bundle::new(env, 40);
    let flow = bundle.flow(env, ExplorationMode::Full);
    let ctx = flow.context(DbChoice::Red);
    let qos = flow.qos_model(DbChoice::Red);
    let config = env.sim_config(env.seed ^ 41);

    let mut cold = AuraAgent::new(ctx.len(), 0.5, 0.3, 0.05).expect("valid agent");
    let cold_run = simulate(&ctx, &mut cold, &qos, &config);
    let mut warm = AuraAgent::new(ctx.len(), 0.5, 0.3, 0.05).expect("valid agent");
    warm.train_prior(&ctx, &qos, 200, 1_000.0, env.seed ^ 42);
    let warm_run = simulate(&ctx, &mut warm, &qos, &config);

    let mut table = Table::new(
        "Ablation 3 — AuRA with vs without the offline Monte-Carlo prior (40 tasks)",
        &["agent", "avg_drc", "avg_energy", "reconfigs"],
    );
    for (label, r) in [("cold start", &cold_run), ("with prior", &warm_run)] {
        table.row([
            label.to_string(),
            f3(r.avg_reconfig_cost),
            f1(r.avg_energy),
            r.reconfigurations.to_string(),
        ]);
    }
    table.emit("ablation_aura_prior");
}

/// Ablation 4: storage-constraint sweep.
fn storage_sweep(env: &Env) {
    let bundle = Bundle::new(env, 40);
    let mut table = Table::new(
        "Ablation 4 — storage constraint vs adaptation quality (40 tasks, p_RC = 0.5)",
        &[
            "max_points",
            "stored",
            "avg_drc",
            "avg_energy",
            "violations",
        ],
    );
    for cap in [8usize, 16, 24, 48] {
        let flow = HybridFlow::builder(&bundle.graph, &bundle.platform)
            .ga(env.ga)
            .red(env.red)
            .storage_limit(cap)
            .qos_variation(env.qos_sigma_frac, env.qos_correlation)
            .seed(env.seed)
            .run();
        let r = flow.simulate_ura(DbChoice::Red, 0.5, &env.sim_config(env.seed ^ 43));
        table.row([
            cap.to_string(),
            flow.db(DbChoice::Red).len().to_string(),
            f3(r.avg_reconfig_cost),
            f1(r.avg_energy),
            r.violations.to_string(),
        ]);
    }
    table.emit("ablation_storage");
    println!(
        "\n(The paper's conclusion flags exactly this trade-off: storing many points \
         improves adaptation but strains storage and run-time DSE latency.)"
    );
}

/// Ablation 5: the MTTF objective extension.
fn lifetime_objective(env: &Env) {
    let bundle = Bundle::new(env, 30);
    let mut table = Table::new(
        "Ablation 5 — lifetime (MTTF) objective extension (30 tasks)",
        &["mode", "points", "best_energy", "mttf_at_best_energy"],
    );
    for mode in [ExplorationMode::Full, ExplorationMode::Lifetime] {
        let cfg = DseConfig {
            ga: env.ga,
            mode,
            reference: None,
            max_points: Some(env.storage_limit),
        };
        let db = explore_based(
            &bundle.graph,
            &bundle.platform,
            FaultModel::default(),
            ConfigSpace::fine(),
            &cfg,
            env.seed,
        );
        let best = db
            .iter()
            .min_by(|a, b| a.metrics.energy.total_cmp(&b.metrics.energy))
            .expect("db non-empty");
        table.row([
            format!("{mode:?}"),
            db.len().to_string(),
            f1(best.metrics.energy),
            format!("{:.3e}", best.metrics.mean_mttf),
        ]);
    }
    table.emit("ablation_lifetime");
}
