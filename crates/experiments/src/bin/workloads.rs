//! Characterises the synthetic workloads the evaluation sweeps: structural
//! metrics of the TGFF-style layered graphs (the paper's generator) and of
//! the fork-join alternative, across 10–100 tasks.

use clr_core::taskgraph::{fork_join_graph, graph_metrics, TgffConfig, TgffGenerator};
use clr_experiments::report::{f1, Table};
use clr_experiments::Env;

fn main() {
    let env = Env::from_env();
    println!("# Workload characterisation");
    let mut table = Table::new(
        "Structural metrics of the generated applications",
        &[
            "tasks",
            "style",
            "edges",
            "depth",
            "width",
            "parallelism",
            "ccr",
            "impls/task",
            "accel_frac",
        ],
    );
    for &n in &env.task_counts {
        let cfg = TgffConfig::with_tasks(n);
        let layered = TgffGenerator::new(cfg.clone()).generate(env.seed ^ (n as u64) << 8);
        let fj = fork_join_graph(&cfg, env.seed ^ (n as u64) << 8);
        for (style, g) in [("layered", &layered), ("fork-join", &fj)] {
            let m = graph_metrics(g);
            table.row([
                n.to_string(),
                style.to_string(),
                m.edges.to_string(),
                m.depth.to_string(),
                m.width.to_string(),
                f1(m.parallelism),
                f1(m.ccr),
                f1(m.mean_impls_per_task),
                f1(m.accelerated_fraction),
            ]);
        }
    }
    table.emit("workloads");
}
