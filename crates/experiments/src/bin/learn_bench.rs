//! `learn_bench` — frozen versus online policies under requirement drift.
//!
//! The drifting workload models a fault-pressure cycle: each tenant's
//! QoS stream sweeps between a relaxed regime (loose reliability floor,
//! tight latency) and a high-pressure regime (tight reliability floor,
//! relaxed latency) several times over the run. The comparison uses the
//! seeded A/B machinery itself: one fleet is seeded so every tenant
//! lands in the **control** arm (serving the frozen live incumbent),
//! a twin fleet so every tenant lands in **treatment** (serving the
//! online TD candidate with reconfiguration prefetch). Same graphs,
//! same databases, same drifting trace — the arms differ only in which
//! table serves, so per-tenant realized trajectories are directly
//! comparable.
//!
//! The headline is realized service latency per served event:
//! `makespan(active point) + reconfiguration stall`, where the online
//! arm's stall is reduced by the dRC cycles the prefetcher overlapped
//! with execution. Results go to stderr and to
//! `results/BENCH_learn.json` in the same schema-versioned shape as the
//! other benches (`schema`, `commit`, per-group `events_per_sec`).
//! `CLR_QUICK=1` shrinks to smoke scale; throughput is wall-clock and
//! machine-dependent, the decisions and latency sums stay deterministic.

use std::io::Write as _;
use std::time::Instant;

use clr_core::prelude::*;
use clr_core::serve::{ReplayReport, ServeStatus};
use clr_learn::{assign_variant, Variant};

/// Harness scale.
struct Scale {
    tenants: usize,
    events_per_tenant: usize,
}

impl Scale {
    fn from_env() -> Self {
        if std::env::var("CLR_QUICK").is_ok_and(|v| v == "1") {
            Self {
                tenants: 4,
                events_per_tenant: 1_500,
            }
        } else {
            Self {
                tenants: 8,
                events_per_tenant: 6_000,
            }
        }
    }
}

/// A tiny deterministic generator (same LCG the bench suite uses).
struct Lcg(u64);

impl Lcg {
    fn next_f64(&mut self) -> f64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The smallest seed ≥ 1 that lands `name` in `arm` — the deterministic
/// assignment is a pure function of `(seed, name)`, so pinning a fleet
/// to one arm is just a seed search.
fn arm_seed(name: &str, arm: Variant) -> u64 {
    (1..)
        .find(|&s| assign_variant(s, name) == arm)
        .expect("both arms are reachable")
}

/// An explored fleet: distinct TGFF applications over dac19 so stored
/// points carry genuinely different mappings (reconfiguration distance
/// and therefore prefetch are meaningful), under the given policy.
fn fleet(n: usize, policy: impl Fn(&str) -> PolicySpec) -> Vec<Tenant> {
    let platform = Platform::dac19();
    let cfg = DseConfig {
        ga: GaParams::small(),
        mode: ExplorationMode::Full,
        reference: None,
        max_points: None,
    };
    (0..n)
        .map(|i| {
            let seed = 300 + i as u64;
            let name = format!("t{i}");
            let graph = TgffGenerator::new(TgffConfig::with_tasks(8)).generate(seed);
            let db = explore_based(
                &graph,
                &platform,
                FaultModel::default(),
                ConfigSpace::fine(),
                &cfg,
                seed,
            );
            let spec = policy(&name);
            Tenant::from_parts(name, graph, platform.clone(), db, spec)
                .expect("synthetic fleet tenants are valid")
        })
        .collect()
}

/// The drifting workload: per-tenant QoS streams whose fault pressure
/// sweeps three full low → high → low cycles across the run. Bounds are
/// calibrated to each tenant's stored metric ranges so the feasible set
/// stays non-trivial at every phase; jitter comes from a seeded LCG.
fn drifting_trace(tenants: &[Tenant], seed: u64, events_per_tenant: usize) -> Trace {
    let mean_gap = 100.0;
    let mut tagged: Vec<(f64, usize, TraceEvent)> = Vec::new();
    for (idx, tenant) in tenants.iter().enumerate() {
        let (mut lo_m, mut hi_m) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut lo_r, mut hi_r) = (f64::INFINITY, f64::NEG_INFINITY);
        for p in tenant.db().points() {
            lo_m = lo_m.min(p.metrics.makespan);
            hi_m = hi_m.max(p.metrics.makespan);
            lo_r = lo_r.min(p.metrics.reliability);
            hi_r = hi_r.max(p.metrics.reliability);
        }
        let mut lcg = Lcg(seed ^ ((idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1));
        let mut time = 0.0;
        for i in 0..events_per_tenant {
            time += mean_gap * (0.5 + lcg.next_f64());
            let phase = (i as f64 / events_per_tenant as f64) * 3.0 * std::f64::consts::TAU;
            // 0 = relaxed regime, 1 = peak fault pressure.
            let pressure = 0.5 - 0.5 * phase.cos();
            let jitter = 0.9 + 0.2 * lcg.next_f64();
            // High pressure demands reliability (floor sweeps toward the
            // best stored point) and relaxes the latency bound; low
            // pressure inverts the trade.
            let rel_floor = (lo_r + (hi_r - lo_r) * (0.15 + 0.7 * pressure)) * jitter.min(1.0);
            let latency = lo_m + (hi_m - lo_m) * (1.2 - 0.9 * pressure) * jitter;
            tagged.push((
                time,
                idx,
                TraceEvent {
                    tenant: tenant.name().to_string(),
                    time,
                    spec: QosSpec::new(latency.max(lo_m), rel_floor.clamp(0.0, hi_r)),
                },
            ));
        }
    }
    tagged.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    Trace::new(tagged.into_iter().map(|(_, _, e)| e).collect())
}

/// One timed replay; returns `(report, elapsed_seconds)`.
fn timed_replay(tenants: &[Tenant], trace: &Trace) -> (ReplayReport, f64) {
    let config = ReplayConfig::default();
    // clr-audit: nondet(begin) throughput timing, reporting only
    let start = Instant::now();
    let report = replay(tenants, trace, &config).expect("synthetic replay is clean");
    let elapsed = start.elapsed().as_secs_f64();
    // clr-audit: nondet(end)
    (report, elapsed)
}

/// Aggregated realized trajectory of one fleet run.
struct Realized {
    served: u64,
    makespan: f64,
    drc_paid: f64,
    drc_overlapped: f64,
    /// Sum of the per-event oracle: the cheapest stored point feasible
    /// under that event's spec, served with zero reconfiguration stall.
    oracle: f64,
    violations: u64,
    shadow_regret: f64,
    live_regret: f64,
    hits: u64,
    misses: u64,
}

/// Folds a run's realized latency: per served event, the makespan of
/// the point that served it plus the reconfiguration cost paid to get
/// there; the prefetch-overlapped share is tracked separately.
fn realized(report: &ReplayReport, tenants: &[Tenant]) -> Realized {
    let mut out = Realized {
        served: 0,
        makespan: 0.0,
        drc_paid: 0.0,
        drc_overlapped: 0.0,
        oracle: 0.0,
        violations: 0,
        shadow_regret: 0.0,
        live_regret: 0.0,
        hits: 0,
        misses: 0,
    };
    for (outcome, tenant) in report.outcomes().iter().zip(tenants) {
        assert_eq!(outcome.name, tenant.name(), "outcomes are fleet-ordered");
        let points = tenant.db().points();
        for d in &outcome.decisions {
            if d.status == ServeStatus::Quarantined {
                continue;
            }
            out.served += 1;
            out.makespan += points[d.to].metrics.makespan;
            out.drc_paid += d.drc;
            if d.violated {
                out.violations += 1;
            }
            // Per-event oracle: the cheapest feasible point served with
            // no stall; a violated event (empty feasible set) bottoms
            // out at the globally fastest point.
            let oracle = points
                .iter()
                .filter(|p| {
                    p.metrics.reliability >= d.spec.min_reliability
                        && p.metrics.makespan <= d.spec.max_makespan
                })
                .map(|p| p.metrics.makespan)
                .fold(f64::INFINITY, f64::min);
            out.oracle += if oracle.is_finite() {
                oracle
            } else {
                points
                    .iter()
                    .map(|p| p.metrics.makespan)
                    .fold(f64::INFINITY, f64::min)
            };
        }
        if let Some(learn) = &outcome.learn {
            out.drc_overlapped += learn.prefetch_saved_drc;
            out.shadow_regret += learn.cum_shadow_regret;
            out.live_regret += learn.cum_live_regret;
            out.hits += learn.prefetch_hits;
            out.misses += learn.prefetch_misses;
        }
    }
    out
}

impl Realized {
    /// Mean realized service latency in cycles per served event, with
    /// prefetch-overlapped reconfiguration cycles taken off the stall.
    fn latency_per_event(&self) -> f64 {
        (self.makespan + self.drc_paid - self.drc_overlapped) / self.served.max(1) as f64
    }

    /// Cumulative regret in cycles against the per-event oracle (the
    /// cheapest feasible point with zero stall) — both arms pay this,
    /// so it compares directly across runs on the same trace.
    fn cumulative_regret(&self) -> f64 {
        self.makespan + self.drc_paid - self.drc_overlapped - self.oracle
    }
}

fn main() {
    let scale = Scale::from_env();
    let threads = clr_par::resolve_threads(0);
    eprintln!(
        "# learn_bench: {} tenants, {} drift events/tenant, {} threads",
        scale.tenants, scale.events_per_tenant, threads
    );

    // TD(0) observes every served decision, so the candidate learns
    // from the natural drift without heavy exploration; a small ε keeps
    // the reconfiguration churn of random arms from dominating the
    // stall budget.
    let learn_spec = |arm: Variant| {
        move |name: &str| PolicySpec::AuraLearn {
            p_rc: 0.5,
            gamma: 0.6,
            alpha: 0.2,
            epsilon: 0.02,
            seed: arm_seed(name, arm),
        }
    };
    let control = fleet(scale.tenants, learn_spec(Variant::Control));
    let treatment = fleet(scale.tenants, learn_spec(Variant::Treatment));
    let aura = fleet(scale.tenants, |_| PolicySpec::Aura {
        p_rc: 0.5,
        gamma: 0.6,
        alpha: 0.1,
    });
    let trace = drifting_trace(&control, 2_027, scale.events_per_tenant);
    eprintln!("  trace: {} events over the fleet", trace.len());

    // Throughput: the learn path (shadow scoring + TD updates +
    // prefetch) versus the plain aura baseline on the same stream, best
    // of three with rounds interleaved.
    let mut learn_elapsed = f64::INFINITY;
    let mut aura_elapsed = f64::INFINITY;
    let mut online_report = None;
    for _ in 0..3 {
        let (r, e) = timed_replay(&treatment, &trace);
        learn_elapsed = learn_elapsed.min(e);
        online_report = Some(r);
        let (_, e) = timed_replay(&aura, &trace);
        aura_elapsed = aura_elapsed.min(e);
    }
    let online_report = online_report.expect("at least one round ran");
    let (frozen_report, _) = timed_replay(&control, &trace);
    let learn_rate = trace.len() as f64 / learn_elapsed.max(1e-9);
    let aura_rate = trace.len() as f64 / aura_elapsed.max(1e-9);
    let overhead_pct = (learn_elapsed / aura_elapsed.max(1e-9) - 1.0) * 100.0;
    eprintln!(
        "  aura baseline: {} events in {aura_elapsed:.3} s — {aura_rate:.0} events/s",
        trace.len()
    );
    eprintln!(
        "  online learn:  {} events in {learn_elapsed:.3} s — {learn_rate:.0} events/s \
         ({overhead_pct:+.2} %)",
        trace.len()
    );

    // Quality: frozen incumbent (all-control fleet) versus online
    // candidate (all-treatment fleet) on identical tenants and trace.
    let frozen = realized(&frozen_report, &control);
    let online = realized(&online_report, &treatment);
    let frozen_latency = frozen.latency_per_event();
    let online_latency = online.latency_per_event();
    let win_pct = (1.0 - online_latency / frozen_latency.max(1e-9)) * 100.0;
    let hit_rate = if online.hits + online.misses > 0 {
        100.0 * online.hits as f64 / (online.hits + online.misses) as f64
    } else {
        0.0
    };
    eprintln!(
        "  frozen incumbent: {:.1} cycles/event ({} served, {:.0} makespan + {:.0} stall, \
         {} violations)",
        frozen_latency, frozen.served, frozen.makespan, frozen.drc_paid, frozen.violations
    );
    eprintln!(
        "  online candidate: {:.1} cycles/event ({} served, {:.0} makespan + {:.0} stall − \
         {:.0} overlapped, {} violations)",
        online_latency,
        online.served,
        online.makespan,
        online.drc_paid,
        online.drc_overlapped,
        online.violations
    );
    let frozen_regret = frozen.cumulative_regret();
    let online_regret = online.cumulative_regret();
    eprintln!(
        "  cumulative regret vs oracle: frozen {frozen_regret:.0} cycles, \
         online {online_regret:.0} cycles"
    );
    eprintln!(
        "  prefetch: {} hits / {} misses ({hit_rate:.1} % hit rate), \
         exploration regret {:.2}",
        online.hits, online.misses, online.shadow_regret
    );
    for line in online_report.ab_lines() {
        eprintln!("  {line}");
    }
    if online_latency < frozen_latency {
        eprintln!(
            "  verdict: online learning beats the frozen table under drift ({win_pct:+.2} %)"
        );
    } else {
        eprintln!("  verdict: frozen table held its ground — check the drift model");
    }

    let json = format!(
        "{{\n  \"schema\": {},\n  \"bench\": \"learn\",\n  \"commit\": {:?},\n  \
         \"tenants\": {},\n  \"threads\": {threads},\n  \"events\": {},\n  \
         \"frozen_latency_cycles_per_event\": {frozen_latency:.3},\n  \
         \"online_latency_cycles_per_event\": {online_latency:.3},\n  \
         \"latency_win_pct\": {win_pct:.2},\n  \
         \"frozen_cumulative_regret\": {frozen_regret:.2},\n  \
         \"online_cumulative_regret\": {online_regret:.2},\n  \
         \"frozen_violations\": {},\n  \"online_violations\": {},\n  \
         \"prefetch_hits\": {},\n  \"prefetch_misses\": {},\n  \
         \"prefetch_hit_rate_pct\": {hit_rate:.2},\n  \"prefetch_saved_drc\": {:.2},\n  \
         \"online_exploration_regret\": {:.4},\n  \
         \"learn_overhead_pct\": {overhead_pct:.2},\n  \"groups\": {{\n    \
         \"replay_aura\": {{\"events\": {}, \"elapsed_s\": {aura_elapsed:.4}, \
         \"events_per_sec\": {aura_rate:.0}}},\n    \
         \"replay_learn\": {{\"events\": {}, \"elapsed_s\": {learn_elapsed:.4}, \
         \"events_per_sec\": {learn_rate:.0}}}\n  }}\n}}\n",
        clr_experiments::report::BENCH_SCHEMA_VERSION,
        clr_experiments::report::bench_commit(),
        scale.tenants,
        trace.len(),
        frozen.violations,
        online.violations,
        online.hits,
        online.misses,
        online.drc_overlapped,
        online.shadow_regret,
        trace.len(),
        trace.len(),
    );
    if let Err(e) = std::fs::create_dir_all("results") {
        eprintln!("  cannot create results/: {e}");
        return;
    }
    match std::fs::File::create("results/BENCH_learn.json")
        .and_then(|mut f| f.write_all(json.as_bytes()))
    {
        Ok(()) => eprintln!("  wrote results/BENCH_learn.json"),
        Err(e) => eprintln!("  cannot write results/BENCH_learn.json: {e}"),
    }
    print!("{json}");
}
