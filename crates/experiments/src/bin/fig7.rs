//! Fig. 7 — relative variation of average energy and average
//! reconfiguration cost as the user-modulation parameter p_RC sweeps from
//! 0 to 1, for five applications of 20–100 tasks. Values are normalised to
//! the p_RC = 1 (pure performance) operating point, matching the figure's
//! relative axes.

use clr_experiments::kernels::{prc_sweep, Bundle};
use clr_experiments::report::{f3, Table};
use clr_experiments::Env;

fn main() {
    let env = Env::from_env();
    println!("# Fig. 7 — relative energy (green) and reconfiguration cost (red) vs p_RC");
    let p_rcs: Vec<f64> = (0..=10).map(|i| i as f64 / 10.0).collect();
    let apps = [20usize, 40, 60, 80, 100];

    let mut table = Table::new(
        "Relative avg energy and avg dRC vs p_RC (normalised to p_RC = 1)",
        &["tasks", "p_rc", "rel_energy", "rel_drc"],
    );
    for &n in &apps {
        let bundle = Bundle::new(&env, n);
        let sweep = prc_sweep(&env, &bundle, &p_rcs);
        let ref_energy = sweep.last().expect("sweep non-empty").1.avg_energy;
        let ref_drc = sweep
            .last()
            .expect("sweep non-empty")
            .1
            .avg_reconfig_cost
            .max(1e-12);
        for (p_rc, r) in &sweep {
            table.row([
                n.to_string(),
                format!("{p_rc:.1}"),
                f3(r.avg_energy / ref_energy),
                f3(r.avg_reconfig_cost / ref_drc),
            ]);
        }
        eprintln!("  done n = {n}");
    }
    table.emit("fig7");
    println!(
        "\nPaper shape: energy is lowest (relative 1.0) and adaptation cost maximal at \
         p_RC = 1; lowering p_RC trades a small energy increase for a large dRC drop, \
         with the dRC curve saturating (only a few non-dominant points drive the savings)."
    );
}
