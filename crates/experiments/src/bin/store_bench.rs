//! `store_bench` — delta sync versus full-snapshot replication cost.
//!
//! Sweeps churn rates over a synthetic design-point database published
//! into a [`clr_store::Store`] and measures what a replica actually
//! ships: the positional changeset (`Changeset::compute`/`apply`)
//! against the sealed full container. The headline acceptance number —
//! a 100k-point database at 1% churn syncs in ≤5% of the full-snapshot
//! bytes — is asserted here at every scale and pinned in CI by
//! `crates/store/tests/sync_ratio.rs`.
//!
//! Results go to stderr and to `results/BENCH_store.json`, in the same
//! schema-versioned shape as the other `BENCH_*.json` artifacts
//! (`schema`, `commit`, per-group `events_per_sec`). Byte volumes and
//! ratios are deterministic; throughput is wall-clock and
//! machine-dependent. `CLR_QUICK=1` shrinks to smoke scale.

use std::fmt::Write as _;
use std::io::Write as _;
use std::time::Instant;

use clr_core::prelude::*;
use clr_store::{synth_db, Changeset, Store};

/// Harness scale.
struct Scale {
    points: usize,
}

impl Scale {
    fn from_env() -> Self {
        if std::env::var("CLR_QUICK").is_ok_and(|v| v == "1") {
            Self { points: 10_000 }
        } else {
            Self { points: 100_000 }
        }
    }
}

/// One churn sweep: publish generation 0, republish with `churn_pct`%
/// of the points changed, and report the sync economics.
struct ChurnRow {
    churn_pct: usize,
    changed_points: usize,
    delta_bytes: usize,
    full_bytes: usize,
    compute_s: f64,
    apply_s: f64,
}

fn sweep(points: usize, churn_pct: usize) -> ChurnRow {
    let period = 100 / churn_pct;
    let mut store = Store::in_memory();
    store
        .publish(
            Snapshot::new("jpeg", "dac19", synth_db("based", points, |_| 1)),
            "bench",
        )
        .expect("genesis publishes");
    store
        .publish(
            Snapshot::new(
                "jpeg",
                "dac19",
                synth_db("based", points, |i| if i % period == 0 { 2 } else { 1 }),
            ),
            "bench",
        )
        .expect("churned generation publishes");

    let from = store.get(0).expect("generation 0 held");
    let to = store.get(1).expect("generation 1 held");
    let full_bytes = to.to_bytes().len();

    // clr-audit: nondet(begin) sync throughput timing, reporting only
    let start = Instant::now();
    let cs = Changeset::compute(&from, &to);
    let compute_s = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let rebuilt = cs.apply(&from).expect("own changeset applies");
    let apply_s = start.elapsed().as_secs_f64();
    // clr-audit: nondet(end)
    assert_eq!(
        rebuilt.to_bytes(),
        to.to_bytes(),
        "delta sync must rebuild the target byte-for-byte"
    );

    ChurnRow {
        churn_pct,
        changed_points: points / period,
        delta_bytes: cs.byte_len(),
        full_bytes,
        compute_s,
        apply_s,
    }
}

fn main() {
    let scale = Scale::from_env();
    eprintln!(
        "# store_bench: {}-point database, churn sweep",
        scale.points
    );

    let rows: Vec<ChurnRow> = [1usize, 10, 50]
        .into_iter()
        .map(|churn| sweep(scale.points, churn))
        .collect();

    let mut groups = String::new();
    for (i, row) in rows.iter().enumerate() {
        let ratio_pct = row.delta_bytes as f64 * 100.0 / row.full_bytes as f64;
        // Points carried per second of end-to-end delta sync
        // (compute + apply), the store's analogue of event throughput.
        let sync_s = (row.compute_s + row.apply_s).max(1e-9);
        let per_sec = scale.points as f64 / sync_s;
        eprintln!(
            "  churn {:>2}%: delta {} B vs full {} B ({:.2}%), {} changed point(s), \
             compute {:.1} ms, apply {:.1} ms",
            row.churn_pct,
            row.delta_bytes,
            row.full_bytes,
            ratio_pct,
            row.changed_points,
            row.compute_s * 1e3,
            row.apply_s * 1e3,
        );
        if row.churn_pct == 1 {
            assert!(
                row.delta_bytes * 20 <= row.full_bytes,
                "1% churn must sync in ≤5% of full-snapshot bytes \
                 (delta {} B, full {} B)",
                row.delta_bytes,
                row.full_bytes,
            );
        }
        let _ = writeln!(
            groups,
            "    \"churn_{}pct\": {{\"changed_points\": {}, \"delta_bytes\": {}, \
             \"full_bytes\": {}, \"ratio_pct\": {ratio_pct:.2}, \
             \"events_per_sec\": {per_sec:.0}}}{}",
            row.churn_pct,
            row.changed_points,
            row.delta_bytes,
            row.full_bytes,
            if i + 1 == rows.len() { "" } else { "," },
        );
    }

    let json = format!(
        "{{\n  \"schema\": {},\n  \"bench\": \"store\",\n  \"commit\": {:?},\n  \
         \"points\": {},\n  \"groups\": {{\n{groups}  }}\n}}\n",
        clr_experiments::report::BENCH_SCHEMA_VERSION,
        clr_experiments::report::bench_commit(),
        scale.points,
    );
    if let Err(e) = std::fs::create_dir_all("results") {
        eprintln!("  cannot create results/: {e}");
        return;
    }
    match std::fs::File::create("results/BENCH_store.json")
        .and_then(|mut f| f.write_all(json.as_bytes()))
    {
        Ok(()) => eprintln!("  wrote results/BENCH_store.json"),
        Err(e) => eprintln!("  cannot write results/BENCH_store.json: {e}"),
    }
    print!("{json}");
}
