//! `serve_load` — the `clr-served` load-test harness, modeled on
//! kimberlite's kmb-bench: wire-codec micro-benches at 64 B–16 KiB
//! frames plus closed-loop and open-loop generators driving a
//! thousand-tenant fleet through the resident engine.
//!
//! * **Closed loop** — a fixed window of in-flight requests drives
//!   [`Daemon::handle_batch`] directly (no transport), measuring the
//!   sharded engine itself: route → session feed → response frame.
//! * **Open loop** — the full framed transport: a pre-encoded request
//!   stream is pushed through [`serve_stream`] (decode, admission,
//!   batched dispatch, response encode) as fast as the daemon drains it.
//!
//! Results go to stderr and to `results/BENCH_serve.json`, the first
//! artifact of the `BENCH_*.json` perf trajectory (ROADMAP item 4) —
//! schema-versioned (`schema`, `commit`, per-group `events_per_sec`) so
//! a series of BENCH files is machine-comparable across commits;
//! `ci.sh` validates the shape.
//! `CLR_QUICK=1` shrinks the fleet and event counts to smoke scale;
//! `CLR_THREADS` sizes the worker pool as everywhere else.
//!
//! Throughput numbers are wall-clock and machine-dependent; the served
//! *decisions* remain deterministic (the fleet, workload and engine are
//! all seeded), which is what the correctness gates byte-compare.

use std::io::Write as _;
use std::time::Instant;

use clr_core::prelude::*;
use clr_core::serve::wire::{Frame, Request};
use clr_core::serve::{serve_stream, Daemon, DaemonConfig};

/// Harness scale.
struct Scale {
    tenants: usize,
    closed_events: usize,
    open_events: usize,
    window: usize,
}

impl Scale {
    fn from_env() -> Self {
        if std::env::var("CLR_QUICK").is_ok_and(|v| v == "1") {
            Self {
                tenants: 64,
                closed_events: 50_000,
                open_events: 10_000,
                window: 256,
            }
        } else {
            Self {
                tenants: 1_000,
                closed_events: 2_000_000,
                open_events: 200_000,
                window: 256,
            }
        }
    }
}

/// A tiny deterministic generator (same LCG the bench suite uses).
struct Lcg(u64);

impl Lcg {
    fn next_f64(&mut self) -> f64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }

    fn next_index(&mut self, n: usize) -> usize {
        (self.next_f64() * n as f64) as usize % n.max(1)
    }
}

/// A fleet of `n` tenants sharing one mapped graph, with per-tenant
/// metric skew so the feasible sets differ. Stored points are synthetic
/// (as in the bench suite): seating cost stays low while the decision
/// path — indexed feasibility, policy, ladder — is the real one.
fn fleet(n: usize) -> Vec<Tenant> {
    let graph = jpeg_encoder();
    let platform = Platform::dac19();
    let mapping = Mapping::first_fit(&graph, &platform).expect("jpeg maps onto dac19");
    (0..n)
        .map(|i| {
            let skew = 1.0 + (i % 17) as f64 * 0.05;
            let mut db = DesignPointDb::new("load");
            for p in 0..16 {
                let f = f64::from(p) / 16.0;
                db.push(DesignPoint::new(
                    mapping.clone(),
                    SystemMetrics {
                        makespan: 50.0 + 100.0 * f * skew,
                        reliability: 0.6 + 0.35 * f,
                        energy: 1.0 + f,
                        peak_power: 1.0,
                        mean_mttf: 100.0,
                    },
                    PointOrigin::Pareto,
                ));
            }
            Tenant::from_parts(
                format!("t{i}"),
                graph.clone(),
                platform.clone(),
                db,
                PolicySpec::Ura { p_rc: 0.5 },
            )
            .expect("synthetic fleet tenants are valid")
        })
        .collect()
}

/// `count` seeded requests spread over the fleet: every tenant is hit,
/// specs sweep the whole selectivity range, times advance monotonically.
fn requests(tenants: &[Tenant], count: usize, seed: u64) -> Vec<Request> {
    let mut lcg = Lcg(seed | 1);
    (0..count)
        .map(|i| {
            let tenant = &tenants[lcg.next_index(tenants.len())];
            Request {
                seq: i as u64 + 1,
                tenant: tenant.name().to_string(),
                time: i as f64,
                spec: QosSpec::new(60.0 + 160.0 * lcg.next_f64(), 0.9 * lcg.next_f64()),
            }
        })
        .collect()
}

/// A `Write` sink that only counts, so open-loop responses don't
/// accumulate in memory.
#[derive(Debug, Default)]
struct CountingSink {
    bytes: usize,
}

impl std::io::Write for CountingSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.bytes += buf.len();
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Mean ns/op of `f` over `iters` runs.
fn time_ns(iters: usize, mut f: impl FnMut()) -> f64 {
    // clr-audit: nondet(begin) wall-clock micro-timing, reporting only
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters.max(1) as f64
    // clr-audit: nondet(end)
}

fn main() {
    let scale = Scale::from_env();
    let threads = clr_par::resolve_threads(0);
    eprintln!(
        "# serve_load: {} tenants, {} closed-loop + {} open-loop events, {} threads",
        scale.tenants, scale.closed_events, scale.open_events, threads
    );

    let tenants = fleet(scale.tenants);
    let config = DaemonConfig::default();

    // Wire codec micro-benches (kmb-bench style: 64 B to 16 KiB).
    let mut wire_rows = Vec::new();
    for size in [64usize, 1_024, 16 * 1_024] {
        let name_len = size.saturating_sub(66).max(2);
        let frame = Frame::Request(Request {
            seq: 7,
            tenant: "t".repeat(name_len),
            time: 1.0,
            spec: QosSpec::new(150.0, 0.75),
        });
        let bytes = frame.to_bytes();
        let iters = (1 << 22) / size.max(64);
        let encode_ns = time_ns(iters, || {
            std::hint::black_box(frame.to_bytes());
        });
        let decode_ns = time_ns(iters, || {
            std::hint::black_box(Frame::from_bytes(&bytes).expect("self-encoded frame decodes"));
        });
        eprintln!("  wire {size:>6} B frame: encode {encode_ns:.0} ns, decode {decode_ns:.0} ns");
        wire_rows.push(format!(
            "    {{\"frame_bytes\": {}, \"encode_ns\": {encode_ns:.1}, \"decode_ns\": {decode_ns:.1}}}",
            bytes.len()
        ));
    }

    // Closed loop: a fixed in-flight window against the engine. Best of
    // three rounds (fresh daemon each) — on a shared machine a single
    // round can be halved by scheduler noise; the best round is the
    // sustained rate the engine actually supports.
    let closed = requests(&tenants, scale.closed_events, 41);
    let mut closed_elapsed = f64::INFINITY;
    for round in 0..3 {
        let daemon = Daemon::new(&tenants, &config).expect("unique tenant names");
        let mut served = 0usize;
        // clr-audit: nondet(begin) throughput timing, reporting only
        let start = Instant::now();
        for window in closed.chunks(scale.window) {
            served += daemon.handle_batch(window).len();
        }
        let elapsed = start.elapsed().as_secs_f64();
        // clr-audit: nondet(end)
        assert_eq!(served, closed.len(), "every request is answered");
        let outcomes = daemon.into_outcomes();
        let decided: usize = outcomes.iter().map(|o| o.events).sum();
        assert_eq!(decided, closed.len(), "every request reaches a session");
        eprintln!(
            "  closed loop round {round}: {served} events in {elapsed:.3} s — {:.0} events/s",
            served as f64 / elapsed.max(1e-9)
        );
        closed_elapsed = closed_elapsed.min(elapsed);
    }
    let closed_rate = closed.len() as f64 / closed_elapsed.max(1e-9);
    eprintln!(
        "  closed loop: {} events in {closed_elapsed:.3} s best-of-3 — {closed_rate:.0} events/s",
        closed.len()
    );

    // Open loop: the full framed transport through serve_stream.
    let open = requests(&tenants, scale.open_events, 43);
    let mut stream = Vec::with_capacity(open.len() * 80);
    for request in &open {
        stream.extend_from_slice(&Frame::Request(request.clone()).to_bytes());
    }
    stream.extend_from_slice(&Frame::Shutdown.to_bytes());
    let bytes_in = stream.len();
    let mut open_elapsed = f64::INFINITY;
    let mut bytes_out = 0usize;
    for round in 0..3 {
        let mut reader = &stream[..];
        let mut sink = CountingSink::default();
        // clr-audit: nondet(begin) throughput timing, reporting only
        let start = Instant::now();
        let report = serve_stream(&tenants, &mut reader, &mut sink, &config)
            .expect("in-memory stream serves cleanly");
        let elapsed = start.elapsed().as_secs_f64();
        // clr-audit: nondet(end)
        assert!(report.clean_shutdown);
        assert_eq!(report.served, open.len());
        eprintln!(
            "  open loop round {round}: {} events in {elapsed:.3} s — {:.0} events/s",
            report.served,
            report.served as f64 / elapsed.max(1e-9)
        );
        open_elapsed = open_elapsed.min(elapsed);
        bytes_out = sink.bytes;
    }
    let open_rate = open.len() as f64 / open_elapsed.max(1e-9);
    eprintln!(
        "  open loop: {} events in {open_elapsed:.3} s best-of-3 — {open_rate:.0} events/s \
         ({bytes_in} B in, {bytes_out} B out)",
        open.len()
    );

    let json = format!(
        "{{\n  \"schema\": {},\n  \"bench\": \"serve_load\",\n  \"commit\": {:?},\n  \
         \"tenants\": {},\n  \"threads\": {threads},\n  \"groups\": {{\n    \
         \"closed_loop\": {{\"events\": {}, \"window\": {}, \"elapsed_s\": {closed_elapsed:.4}, \
         \"events_per_sec\": {closed_rate:.0}}},\n    \
         \"open_loop\": {{\"events\": {}, \"batch\": {}, \"elapsed_s\": {open_elapsed:.4}, \
         \"events_per_sec\": {open_rate:.0}, \"bytes_in\": {bytes_in}, \"bytes_out\": {bytes_out}}}\n  }},\n  \
         \"wire\": [\n{}\n  ]\n}}\n",
        clr_experiments::report::BENCH_SCHEMA_VERSION,
        clr_experiments::report::bench_commit(),
        scale.tenants,
        scale.closed_events,
        scale.window,
        scale.open_events,
        config.batch,
        wire_rows.join(",\n"),
    );
    if let Err(e) = std::fs::create_dir_all("results") {
        eprintln!("  cannot create results/: {e}");
        return;
    }
    match std::fs::File::create("results/BENCH_serve.json")
        .and_then(|mut f| f.write_all(json.as_bytes()))
    {
        Ok(()) => eprintln!("  wrote results/BENCH_serve.json"),
        Err(e) => eprintln!("  cannot write results/BENCH_serve.json: {e}"),
    }
    print!("{json}");
}
