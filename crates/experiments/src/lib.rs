//! Shared harness for the experiment binaries regenerating every table and
//! figure of the paper's evaluation (§5).
//!
//! Each binary (`fig1`, `table4`, `fig5`, `fig6`, `table5`, `table6`,
//! `fig7`, `table7`) prints a markdown rendition of its table/figure data
//! and writes the raw series as CSV under `results/`.
//!
//! Scale is controlled by the `CLR_FULL` environment variable: unset, the
//! experiments run at a laptop-friendly reduced scale (smaller GA budgets,
//! 200 k simulated cycles); `CLR_FULL=1` switches to the paper's setup
//! (one million application execution cycles, full GA budgets);
//! `CLR_QUICK=1` selects the tiny smoke scale of [`Env::quick`].
//!
//! Observability is controlled by `CLR_OBS` (see [`clr_core::obs`]): with
//! `CLR_OBS=json` or `CLR_OBS=chrome`, [`Env::from_env`] attaches an
//! enabled [`Obs`] handle and the binaries export the run journal next to
//! their CSVs under `results/`.

pub mod kernels;
pub mod report;

use clr_core::prelude::*;

/// Experiment-scale configuration.
#[derive(Debug, Clone)]
pub struct Env {
    /// GA parameters of the system-level MOEA.
    pub ga: GaParams,
    /// Configuration of the ReD stage.
    pub red: RedConfig,
    /// Simulated application cycles per Monte-Carlo run.
    pub sim_cycles: f64,
    /// Task counts swept by the tables (10–100, step 10, per the paper).
    pub task_counts: Vec<usize>,
    /// Base seed.
    pub seed: u64,
    /// Storage constraint: maximum BaseD design points kept (Fig. 3).
    pub storage_limit: usize,
    /// Independent event-stream replicas averaged per comparison (reduces
    /// single-stream noise in the tables).
    pub replicas: u64,
    /// σ of the QoS variation as a fraction of the achievable range.
    pub qos_sigma_frac: f64,
    /// Correlation between the two QoS requirements.
    pub qos_correlation: f64,
    /// Observability handle threaded through every flow and simulation
    /// (cloning an [`Env`] shares the journal).
    pub obs: Obs,
}

impl Env {
    /// Scale selected by `CLR_FULL` / `CLR_QUICK`, with the observability
    /// mode selected by `CLR_OBS` (see the [crate docs](crate)).
    pub fn from_env() -> Self {
        let mut env = if std::env::var("CLR_FULL").is_ok_and(|v| v == "1") {
            Self::paper()
        } else if std::env::var("CLR_QUICK").is_ok_and(|v| v == "1") {
            Self::quick()
        } else {
            Self::reduced()
        };
        env.obs = Obs::from_env();
        env
    }

    /// The paper's scale: GA defaults (population 100, 60 generations) and
    /// one million simulated cycles.
    pub fn paper() -> Self {
        Self {
            ga: GaParams::default(),
            red: RedConfig::default(),
            sim_cycles: 1_000_000.0,
            task_counts: (10..=100).step_by(10).collect(),
            seed: 2019,
            storage_limit: 48,
            replicas: 3,
            qos_sigma_frac: 0.25,
            qos_correlation: 0.3,
            obs: Obs::off(),
        }
    }

    /// Reduced scale for interactive runs.
    pub fn reduced() -> Self {
        Self {
            ga: GaParams {
                population: 40,
                generations: 25,
                ..GaParams::default()
            },
            red: RedConfig {
                ga: GaParams {
                    population: 32,
                    generations: 12,
                    ..GaParams::default()
                },
                ..RedConfig::default()
            },
            sim_cycles: 200_000.0,
            task_counts: (10..=100).step_by(10).collect(),
            seed: 2019,
            storage_limit: 48,
            replicas: 3,
            qos_sigma_frac: 0.25,
            qos_correlation: 0.3,
            obs: Obs::off(),
        }
    }

    /// A tiny scale for unit tests and smoke benches.
    pub fn quick() -> Self {
        Self {
            ga: GaParams::small(),
            red: RedConfig {
                ga: GaParams::small(),
                ..RedConfig::default()
            },
            sim_cycles: 20_000.0,
            task_counts: vec![10, 20],
            seed: 2019,
            storage_limit: 48,
            replicas: 1,
            qos_sigma_frac: 0.25,
            qos_correlation: 0.3,
            obs: Obs::off(),
        }
    }

    /// The simulation configuration at this scale.
    pub fn sim_config(&self, seed: u64) -> SimConfig {
        SimConfig {
            total_cycles: self.sim_cycles,
            mean_event_gap: 100.0,
            episode_cycles: 1_000.0,
            seed,
            initial_point: 0,
            max_trace: 0,
        }
    }

    /// Generates the synthetic application with `n` tasks (seeded from the
    /// environment's base seed so every experiment sees the same graphs).
    pub fn graph(&self, n: usize) -> TaskGraph {
        TgffGenerator::new(TgffConfig::with_tasks(n)).generate(self.seed ^ (n as u64) << 8)
    }
}

/// Relative reduction of `new` w.r.t. `base` in percent
/// (`(base − new) / base × 100`); `0` when the base is ~zero.
pub fn pct_reduction(base: f64, new: f64) -> f64 {
    if base.abs() < 1e-12 {
        0.0
    } else {
        (base - new) / base * 100.0
    }
}

/// Relative increase of `new` w.r.t. `base` in percent.
pub fn pct_increase(base: f64, new: f64) -> f64 {
    -pct_reduction(base, new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_scales_differ() {
        assert!(Env::paper().sim_cycles > Env::reduced().sim_cycles);
        assert_eq!(Env::paper().task_counts.len(), 10);
        assert!(Env::quick().task_counts.len() < 10);
    }

    #[test]
    fn graphs_are_deterministic() {
        let env = Env::quick();
        assert_eq!(env.graph(10), env.graph(10));
        assert_eq!(env.graph(10).num_tasks(), 10);
    }

    #[test]
    fn pct_helpers() {
        assert_eq!(pct_reduction(100.0, 80.0), 20.0);
        assert_eq!(pct_increase(100.0, 110.0), 10.0);
        assert_eq!(pct_reduction(0.0, 5.0), 0.0);
    }
}
