//! Minimal table rendering (markdown to stdout, CSV to `results/`).

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A rectangular results table.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given title and column headers.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Self {
            title: title.into(),
            columns: columns
                .iter()
                .map(std::string::ToString::to_string)
                .collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (stringified cells).
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the column count.
    pub fn row<I: IntoIterator<Item = String>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().collect();
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row width must match column count"
        );
        self.rows.push(row);
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table as github-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "\n## {}\n", self.title);
        let _ = writeln!(out, "| {} |", self.columns.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.columns
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// Renders the table as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.columns.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// Writes the CSV rendition to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.to_csv())
    }

    /// Prints the markdown rendition to stdout and writes the CSV to
    /// `results/<name>.csv`, reporting where it went.
    pub fn emit(&self, name: &str) {
        print!("{}", self.to_markdown());
        let path = format!("results/{name}.csv");
        match self.write_csv(&path) {
            Ok(()) => println!("\n(raw series written to {path})"),
            Err(e) => eprintln!("warning: could not write {path}: {e}"),
        }
    }
}

/// Schema version of the `results/BENCH_*.json` perf artifacts. Every
/// bench binary stamps this plus [`bench_commit`] so a trajectory of
/// BENCH files is self-describing; `ci.sh` greps for both.
pub const BENCH_SCHEMA_VERSION: u64 = 1;

/// Short commit hash of the working tree for `BENCH_*.json` provenance,
/// or `"unknown"` outside a git checkout.
pub fn bench_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|hash| hash.trim().to_string())
        .filter(|hash| !hash.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Formats a float with one decimal (the tables' precision).
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats a float with three decimals (figure series precision).
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_and_csv_shapes() {
        let mut t = Table::new("Demo", &["n", "value"]);
        t.row(["10".into(), f1(1.25)]);
        t.row(["20".into(), f1(2.0)]);
        let md = t.to_markdown();
        assert!(md.contains("## Demo"));
        assert!(md.contains("| 10 | 1.2 |") || md.contains("| 10 | 1.3 |"));
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("n,value"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_rows_are_rejected() {
        let mut t = Table::new("Bad", &["a", "b"]);
        t.row(["only-one".to_string()]);
    }

    #[test]
    fn csv_roundtrip_to_disk() {
        let mut t = Table::new("Disk", &["x"]);
        t.row(["7".into()]);
        let dir = std::env::temp_dir().join("clr_experiments_test");
        let path = dir.join("t.csv");
        t.write_csv(&path).unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert!(back.contains('7'));
        let _ = std::fs::remove_dir_all(dir);
    }
}
