//! Acceptance check for delta sync efficiency: a 100k-point database at
//! 1% churn must sync via changeset in ≤5% of the full-snapshot byte
//! volume (the `store_bench` experiment reports the full churn sweep to
//! `results/BENCH_store.json`; this pins the headline number in CI).

use clr_serve::Snapshot;
use clr_store::{synth_db, Store};

#[test]
fn hundred_k_point_db_at_one_percent_churn_syncs_in_five_percent_of_bytes() {
    let n = 100_000;
    let mut store = Store::in_memory();
    store
        .publish(
            Snapshot::new("jpeg", "dac19", synth_db("based", n, |_| 1)),
            "pub",
        )
        .unwrap();
    // Every 100th point changes content: exactly 1% churn.
    store
        .publish(
            Snapshot::new(
                "jpeg",
                "dac19",
                synth_db("based", n, |i| if i % 100 == 0 { 2 } else { 1 }),
            ),
            "pub",
        )
        .unwrap();

    let full = store.get(1).unwrap().to_bytes().len();
    let cs = store.changeset(0, 1).unwrap();
    assert_eq!(cs.ops.len(), n / 100);
    let delta = cs.byte_len();
    assert!(
        delta * 20 <= full,
        "changeset is {delta} bytes, full snapshot {full} bytes — ratio {:.2}% exceeds 5%",
        delta as f64 * 100.0 / full as f64
    );

    // And the delta is not just small, it is exact.
    let mut replica = Store::in_memory();
    replica.merge(&store.get(0).unwrap()).unwrap();
    replica.merge_changeset(&cs).unwrap();
    assert_eq!(
        replica.head().unwrap().unwrap().to_bytes(),
        store.get(1).unwrap().to_bytes()
    );
}
