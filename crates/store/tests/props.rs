//! Property tests for the replication semilattice and delta sync.
//!
//! The convergence claims the crate makes — merge is idempotent and
//! order-independent, changesets reproduce their target byte-for-byte —
//! are exactly the properties gossip correctness rests on, so they are
//! checked over generated histories, not just the unit-test fixtures.

use std::collections::BTreeSet;

use clr_serve::{compute_stamps, Lineage, LineageSnapshot, Snapshot};
use clr_store::{synth_db, Changeset, FileLogBackend, MemoryBackend, StorageBackend, Store};
use proptest::prelude::*;

/// A lineaged snapshot whose content, publisher and generation are pure
/// functions of the inputs — colliding generations across "replicas"
/// included, which is the interesting merge case.
fn publish_of(generation: u64, publisher_idx: u64, salt: u64) -> LineageSnapshot {
    let db = synth_db("based", 12, |i| salt + (i as u64 % 3));
    let stamps = compute_stamps(&db, generation);
    LineageSnapshot::from_parts(
        Lineage {
            generation,
            parent: generation.checked_sub(1),
            publisher: format!("node-{publisher_idx}"),
            stamps,
        },
        Snapshot::new("jpeg", "dac19", db),
    )
}

/// The full observable state of a replica: generation → container bytes.
fn state<B: StorageBackend>(store: &Store<B>) -> Vec<(u64, Vec<u8>)> {
    store
        .generations()
        .unwrap()
        .into_iter()
        .map(|g| (g, store.get(g).unwrap().to_bytes()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn merge_is_idempotent_and_order_independent(
        gens in proptest::collection::vec(0u64..4, 2..8),
        publishers in proptest::collection::vec(0u64..3, 8),
        salts in proptest::collection::vec(0u64..5, 8),
    ) {
        let snaps: Vec<LineageSnapshot> = gens
            .iter()
            .enumerate()
            .map(|(i, &g)| publish_of(g, publishers[i % 8], salts[i % 8]))
            .collect();

        // Replica A merges in order; replica B in reverse, with every
        // snapshot delivered twice (gossip redelivery).
        let mut a = Store::in_memory();
        for s in &snaps {
            a.merge(s).unwrap();
        }
        let mut b = Store::in_memory();
        for s in snaps.iter().rev() {
            b.merge(s).unwrap();
            b.merge(s).unwrap();
        }
        prop_assert_eq!(state(&a), state(&b));

        // Idempotence: a second full pass changes nothing.
        let before = state(&a);
        for s in &snaps {
            a.merge(s).unwrap();
        }
        prop_assert_eq!(state(&a), before);
        a.verify().unwrap();
    }

    #[test]
    fn changeset_round_trips_and_reapplies_exactly(
        n in 4usize..40,
        churn in proptest::collection::vec(0usize..40, 0..8),
        grow in 0usize..5,
    ) {
        let churned: BTreeSet<usize> = churn.iter().map(|c| c % n).collect();
        let mut publisher = Store::in_memory();
        publisher
            .publish(Snapshot::new("jpeg", "dac19", synth_db("based", n, |_| 1)), "pub")
            .unwrap();
        let next = synth_db("based", n + grow, move |i| {
            if churned.contains(&i) { 77 } else { 1 }
        });
        publisher
            .publish(Snapshot::new("jpeg", "dac19", next), "pub")
            .unwrap();

        let cs = publisher.changeset(0, 1).unwrap();
        // Text round trip is the identity.
        prop_assert_eq!(&Changeset::from_text(&cs.to_text()).unwrap(), &cs);

        // Applying to the old generation reproduces the new one
        // byte-for-byte under both backends.
        let target = publisher.get(1).unwrap().to_bytes();
        let mut mem = Store::new(MemoryBackend::new());
        mem.merge(&publisher.get(0).unwrap()).unwrap();
        mem.merge_changeset(&cs).unwrap();
        prop_assert_eq!(mem.get(1).unwrap().to_bytes(), target.clone());

        let dir = std::env::temp_dir().join("clr-store-props");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("replica-{n}-{grow}.log"));
        let _ = std::fs::remove_file(&path);
        let mut file = Store::new(FileLogBackend::open(&path).unwrap());
        file.merge(&publisher.get(0).unwrap()).unwrap();
        file.merge_changeset(&cs).unwrap();
        prop_assert_eq!(file.get(1).unwrap().to_bytes(), target);
        std::fs::remove_file(&path).unwrap();
    }
}
