//! Delta synchronisation between snapshot generations.
//!
//! A [`Changeset`] is the positional diff between two lineaged
//! snapshots: `O(changed points)` bytes instead of a full snapshot, so a
//! replica that already holds generation `from` can reach generation
//! `to` over a thin link. Applying a changeset is *exact*: the header
//! pins the FNV-1a 64 hash of both endpoint containers, the source hash
//! is checked before any op runs, and the rebuilt container must hash to
//! the declared target — a replica either reproduces the published
//! generation byte-for-byte or fails loudly.
//!
//! The text form is line-oriented and canonical (one encoding per
//! changeset), so changeset files can be diffed, checksummed and shipped
//! like any other artifact:
//!
//! ```text
//! clr-store changeset v1
//! from 3 00baadf00dcafe42
//! to 4 node-a 3 00feedfacecafe99
//! name based
//! graph jpeg
//! platform dac19
//! ops 2
//! set 7 4
//! point Pareto
//! metrics 104.25 0.99921 1520.0 84.5 1.2e6
//! gene 0 1 none retry:2 checksum 9
//! end
//! truncate 120
//! ```

use std::fmt::Write as _;

use clr_dse::{point_text, DesignPoint, DesignPointDb};
use clr_serve::{fnv1a64, Lineage, LineageSnapshot, PointStamp, Snapshot};

use crate::StoreError;

/// Magic first line of the changeset text form.
const HEADER: &str = "clr-store changeset v1";

/// One positional edit against the source generation's point list.
#[derive(Debug, Clone, PartialEq)]
pub enum ChangeOp {
    /// Replace the point at `index` (which must exist in the source).
    Set {
        /// Index into the source point list.
        index: usize,
        /// The generation stamped onto the new content.
        stamp_generation: u64,
        /// The replacement point.
        point: DesignPoint,
    },
    /// Append a point past the end of the source list.
    Append {
        /// The generation stamped onto the new content.
        stamp_generation: u64,
        /// The appended point.
        point: DesignPoint,
    },
    /// Truncate the point list to `len` entries (`len` must not exceed
    /// the source length).
    Truncate {
        /// Number of leading points to keep.
        len: usize,
    },
}

/// The positional diff carrying a replica from one generation to
/// another. Built by [`Changeset::compute`], applied by
/// [`Changeset::apply`], shipped as text via
/// [`Changeset::to_text`]/[`Changeset::from_text`].
#[derive(Debug, Clone, PartialEq)]
pub struct Changeset {
    /// Source generation number.
    pub from_generation: u64,
    /// FNV-1a 64 of the source's sealed container bytes.
    pub from_hash: u64,
    /// Target generation number.
    pub to_generation: u64,
    /// Target publisher id.
    pub publisher: String,
    /// Target parent generation.
    pub parent: Option<u64>,
    /// FNV-1a 64 of the target's sealed container bytes.
    pub to_hash: u64,
    /// Target database name.
    pub name: String,
    /// Target task-graph descriptor.
    pub graph: String,
    /// Target platform descriptor.
    pub platform: String,
    /// Positional edits, in application order.
    pub ops: Vec<ChangeOp>,
}

impl Changeset {
    /// Diffs two lineaged snapshots positionally by their content
    /// stamps. The result applied to `from` reproduces `to`
    /// byte-for-byte.
    pub fn compute(from: &LineageSnapshot, to: &LineageSnapshot) -> Self {
        let from_stamps = &from.lineage().stamps;
        let to_stamps = &to.lineage().stamps;
        let to_points = to.snapshot().db().points();
        let mut ops = Vec::new();
        let common = from_stamps.len().min(to_stamps.len());
        for i in 0..common {
            // A stamp-generation drift without a content change still
            // has to ship, or the rebuilt lineage block (and thus the
            // target hash) would not match.
            if from_stamps[i] != to_stamps[i] {
                ops.push(ChangeOp::Set {
                    index: i,
                    stamp_generation: to_stamps[i].generation,
                    point: to_points[i].clone(),
                });
            }
        }
        for i in common..to_stamps.len() {
            ops.push(ChangeOp::Append {
                stamp_generation: to_stamps[i].generation,
                point: to_points[i].clone(),
            });
        }
        if to_stamps.len() < from_stamps.len() {
            ops.push(ChangeOp::Truncate {
                len: to_stamps.len(),
            });
        }
        Self {
            from_generation: from.lineage().generation,
            from_hash: fnv1a64(&from.to_bytes()),
            to_generation: to.lineage().generation,
            publisher: to.lineage().publisher.clone(),
            parent: to.lineage().parent,
            to_hash: fnv1a64(&to.to_bytes()),
            name: to.snapshot().db().name().to_string(),
            graph: to.snapshot().graph_desc().to_string(),
            platform: to.snapshot().platform_desc().to_string(),
            ops,
        }
    }

    /// Rebuilds the target generation from the source snapshot.
    ///
    /// # Errors
    ///
    /// [`StoreError::Changeset`] when the source is not the generation
    /// this diff was computed against (hash pin), an op indexes outside
    /// the source (`changeset ⊆ source` violated), or the rebuilt
    /// container does not hash to the declared target.
    pub fn apply(&self, from: &LineageSnapshot) -> Result<LineageSnapshot, StoreError> {
        let actual = fnv1a64(&from.to_bytes());
        if actual != self.from_hash || from.lineage().generation != self.from_generation {
            return Err(StoreError::Changeset(format!(
                "source is generation {} with hash {actual:#018x}, changeset expects generation {} with hash {:#018x}",
                from.lineage().generation, self.from_generation, self.from_hash
            )));
        }
        let mut points: Vec<DesignPoint> = from.snapshot().db().points().to_vec();
        let mut stamps: Vec<PointStamp> = from.lineage().stamps.clone();
        for (n, op) in self.ops.iter().enumerate() {
            match op {
                ChangeOp::Set {
                    index,
                    stamp_generation,
                    point,
                } => {
                    if *index >= points.len() {
                        return Err(StoreError::Changeset(format!(
                            "op {n}: set index {index} outside the {}-point source",
                            points.len()
                        )));
                    }
                    points[*index] = point.clone();
                    stamps[*index] = PointStamp {
                        hash: fnv1a64(point_text(point).as_bytes()),
                        generation: *stamp_generation,
                    };
                }
                ChangeOp::Append {
                    stamp_generation,
                    point,
                } => {
                    stamps.push(PointStamp {
                        hash: fnv1a64(point_text(point).as_bytes()),
                        generation: *stamp_generation,
                    });
                    points.push(point.clone());
                }
                ChangeOp::Truncate { len } => {
                    if *len > points.len() {
                        return Err(StoreError::Changeset(format!(
                            "op {n}: truncate to {len} exceeds the {}-point list",
                            points.len()
                        )));
                    }
                    points.truncate(*len);
                    stamps.truncate(*len);
                }
            }
        }
        let db = db_from_points(&self.name, &points)?;
        let rebuilt = LineageSnapshot::from_parts(
            Lineage {
                generation: self.to_generation,
                parent: self.parent,
                publisher: self.publisher.clone(),
                stamps,
            },
            Snapshot::new(self.graph.clone(), self.platform.clone(), db),
        );
        let rebuilt_hash = fnv1a64(&rebuilt.to_bytes());
        if rebuilt_hash != self.to_hash {
            return Err(StoreError::Changeset(format!(
                "rebuilt generation {} hashes to {rebuilt_hash:#018x}, changeset declares {:#018x}",
                self.to_generation, self.to_hash
            )));
        }
        Ok(rebuilt)
    }

    /// Serialises into the canonical text form.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{HEADER}");
        let _ = writeln!(out, "from {} {:016x}", self.from_generation, self.from_hash);
        let parent = self
            .parent
            .map_or_else(|| "none".to_string(), |p| p.to_string());
        let _ = writeln!(
            out,
            "to {} {} {parent} {:016x}",
            self.to_generation, self.publisher, self.to_hash
        );
        let _ = writeln!(out, "name {}", self.name);
        let _ = writeln!(out, "graph {}", self.graph);
        let _ = writeln!(out, "platform {}", self.platform);
        let _ = writeln!(out, "ops {}", self.ops.len());
        for op in &self.ops {
            match op {
                ChangeOp::Set {
                    index,
                    stamp_generation,
                    point,
                } => {
                    let _ = writeln!(out, "set {index} {stamp_generation}");
                    out.push_str(&point_text(point));
                    out.push_str("end\n");
                }
                ChangeOp::Append {
                    stamp_generation,
                    point,
                } => {
                    let _ = writeln!(out, "append {stamp_generation}");
                    out.push_str(&point_text(point));
                    out.push_str("end\n");
                }
                ChangeOp::Truncate { len } => {
                    let _ = writeln!(out, "truncate {len}");
                }
            }
        }
        out
    }

    /// Parses the canonical text form.
    ///
    /// # Errors
    ///
    /// [`StoreError::Changeset`] naming the first malformed line.
    pub fn from_text(text: &str) -> Result<Self, StoreError> {
        let bad = |what: &str| StoreError::Changeset(format!("missing or malformed {what} line"));
        let mut lines = text.lines();
        if lines.next() != Some(HEADER) {
            return Err(StoreError::Changeset(format!(
                "bad header, expected {HEADER:?}"
            )));
        }
        let from_line = lines
            .next()
            .and_then(|l| l.strip_prefix("from "))
            .ok_or_else(|| bad("from"))?;
        let (from_generation, from_hash) = from_line.split_once(' ').ok_or_else(|| bad("from"))?;
        let from_generation: u64 = from_generation.parse().map_err(|_| bad("from"))?;
        let from_hash = u64::from_str_radix(from_hash, 16).map_err(|_| bad("from"))?;
        let to_line = lines
            .next()
            .and_then(|l| l.strip_prefix("to "))
            .ok_or_else(|| bad("to"))?;
        let to_fields: Vec<&str> = to_line.split(' ').collect();
        if to_fields.len() != 4 {
            return Err(bad("to"));
        }
        let to_generation: u64 = to_fields[0].parse().map_err(|_| bad("to"))?;
        let publisher = to_fields[1].to_string();
        let parent = match to_fields[2] {
            "none" => None,
            v => Some(v.parse::<u64>().map_err(|_| bad("to"))?),
        };
        let to_hash = u64::from_str_radix(to_fields[3], 16).map_err(|_| bad("to"))?;
        let name = lines
            .next()
            .and_then(|l| l.strip_prefix("name "))
            .ok_or_else(|| bad("name"))?
            .to_string();
        let graph = lines
            .next()
            .and_then(|l| l.strip_prefix("graph "))
            .ok_or_else(|| bad("graph"))?
            .to_string();
        let platform = lines
            .next()
            .and_then(|l| l.strip_prefix("platform "))
            .ok_or_else(|| bad("platform"))?
            .to_string();
        let count: usize = lines
            .next()
            .and_then(|l| l.strip_prefix("ops "))
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| bad("ops"))?;
        let mut ops = Vec::with_capacity(count);
        let point_block = |lines: &mut std::str::Lines<'_>| -> Result<DesignPoint, StoreError> {
            let mut block = String::new();
            loop {
                let line = lines
                    .next()
                    .ok_or_else(|| StoreError::Changeset("unterminated point block".to_string()))?;
                if line == "end" {
                    break;
                }
                block.push_str(line);
                block.push('\n');
            }
            parse_point_block(&block)
        };
        for n in 0..count {
            let line = lines
                .next()
                .ok_or_else(|| StoreError::Changeset(format!("missing op {n}")))?;
            if let Some(rest) = line.strip_prefix("set ") {
                let (index, stamp) = rest.split_once(' ').ok_or_else(|| bad("set"))?;
                ops.push(ChangeOp::Set {
                    index: index.parse().map_err(|_| bad("set"))?,
                    stamp_generation: stamp.parse().map_err(|_| bad("set"))?,
                    point: point_block(&mut lines)?,
                });
            } else if let Some(stamp) = line.strip_prefix("append ") {
                ops.push(ChangeOp::Append {
                    stamp_generation: stamp.parse().map_err(|_| bad("append"))?,
                    point: point_block(&mut lines)?,
                });
            } else if let Some(len) = line.strip_prefix("truncate ") {
                ops.push(ChangeOp::Truncate {
                    len: len.parse().map_err(|_| bad("truncate"))?,
                });
            } else {
                return Err(StoreError::Changeset(format!("unknown op {line:?}")));
            }
        }
        if lines.next().is_some() {
            return Err(StoreError::Changeset(
                "trailing content after the last op".to_string(),
            ));
        }
        Ok(Self {
            from_generation,
            from_hash,
            to_generation,
            publisher,
            parent,
            to_hash,
            name,
            graph,
            platform,
            ops,
        })
    }

    /// Size of the canonical text encoding — what a replica actually
    /// transfers (the sync bench compares this against full-snapshot
    /// bytes).
    pub fn byte_len(&self) -> usize {
        self.to_text().len()
    }
}

/// Rebuilds a database through the v1 text codec, so the result is
/// exactly what decoding the published container would produce.
fn db_from_points(name: &str, points: &[DesignPoint]) -> Result<DesignPointDb, StoreError> {
    let mut text = format!(
        "clr-design-point-db v1\nname {name}\npoints {}\n",
        points.len()
    );
    for p in points {
        text.push_str(&point_text(p));
    }
    DesignPointDb::from_text(&text)
        .map_err(|e| StoreError::Changeset(format!("rebuilt database does not decode: {e}")))
}

/// Parses one point's canonical text block.
fn parse_point_block(block: &str) -> Result<DesignPoint, StoreError> {
    let text = format!("clr-design-point-db v1\nname x\npoints 1\n{block}");
    let db = DesignPointDb::from_text(&text)
        .map_err(|e| StoreError::Changeset(format!("bad point block: {e}")))?;
    Ok(db.points()[0].clone())
}
