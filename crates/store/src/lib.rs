//! clr-store: a replicated snapshot store with generation lineage.
//!
//! Design-time exploration publishes design-point databases; fleets of
//! serve nodes consume them. This crate is the replication layer in
//! between: every published database becomes a **generation** in a
//! lineage (CLRSNAP2, [`LineageSnapshot`]), replicas exchange
//! **changesets** — positional diffs costing `O(changed points)` bytes
//! instead of full snapshots — and each node garbage-collects superseded
//! generations *locally*, with no coordination, because the merge rule
//! is a join-semilattice:
//!
//! - a generation number never carries two *surviving* payloads: on a
//!   concurrent publish of the same generation, the lexicographically
//!   smaller publisher id wins, and between equal publishers the
//!   lexicographically smaller container bytes win — a total order, so
//!   [`Store::merge`] is idempotent, commutative and associative, and
//!   every replica converges to the same head no matter the gossip
//!   order;
//! - removal is node-local policy (keep the head plus `keep_depth`
//!   ancestors), not shared state — a node that GC'd early simply falls
//!   back to full-snapshot sync instead of delta sync.
//!
//! Storage is pluggable via [`StorageBackend`]: [`MemoryBackend`] for
//! tests/ephemeral replicas, [`FileLogBackend`] as a crash-safe
//! append-only record log. The `clr-store` binary fronts the store
//! (`publish`, `pull`, `gc`, `log`, `verify`); the serve daemon consumes
//! published generations live through the CLRWIRE1 `SwapDb` frame.

use std::collections::BTreeSet;
use std::fmt;

use clr_dse::point_text;
use clr_serve::{fnv1a64, Lineage, LineageSnapshot, PointStamp, Snapshot, SnapshotError};

mod backend;
mod changeset;

pub use backend::{FileLogBackend, MemoryBackend, StorageBackend, LOG_MAGIC};
pub use changeset::{ChangeOp, Changeset};

/// Anything that can go wrong in the replication layer.
#[derive(Debug)]
pub enum StoreError {
    /// The backing medium failed (filesystem error and the like).
    Io(String),
    /// An append-only log failed its integrity replay.
    Log(String),
    /// A stored container is damaged or its lineage block is invalid.
    Snapshot(SnapshotError),
    /// The requested generation is not in this replica's store.
    MissingGeneration(u64),
    /// A changeset is malformed or does not fit its source.
    Changeset(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(m) => write!(f, "io error: {m}"),
            Self::Log(m) => write!(f, "corrupt store log: {m}"),
            Self::Snapshot(e) => write!(f, "bad snapshot: {e}"),
            Self::MissingGeneration(g) => write!(f, "generation {g} is not in the store"),
            Self::Changeset(m) => write!(f, "bad changeset: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<SnapshotError> for StoreError {
    fn from(e: SnapshotError) -> Self {
        Self::Snapshot(e)
    }
}

/// What [`Store::merge`] did with an incoming generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeOutcome {
    /// The generation was new to this replica and was stored.
    Inserted,
    /// The replica already held byte-identical content.
    Unchanged,
    /// A concurrent publish existed and the incumbent won the tiebreak.
    KeptExisting,
    /// A concurrent publish existed and the incoming snapshot won.
    Replaced,
}

impl fmt::Display for MergeOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Self::Inserted => "inserted",
            Self::Unchanged => "unchanged",
            Self::KeptExisting => "kept-existing",
            Self::Replaced => "replaced",
        };
        f.write_str(s)
    }
}

/// One generation's row in [`Store::log`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// Generation number.
    pub generation: u64,
    /// Parent generation (`None` for a lineage root).
    pub parent: Option<u64>,
    /// Who published it.
    pub publisher: String,
    /// Total design points in the generation.
    pub points: usize,
    /// Points whose version stamp was minted *at* this generation —
    /// i.e. content that actually changed relative to the parent.
    pub changed: usize,
    /// Sealed container size in bytes.
    pub bytes: usize,
}

/// A replica of the snapshot store over some persistence backend.
///
/// All lineage semantics live here; the backend is a dumb
/// `generation → bytes` map.
#[derive(Debug)]
pub struct Store<B: StorageBackend> {
    backend: B,
}

impl Store<MemoryBackend> {
    /// An empty in-memory replica.
    pub fn in_memory() -> Self {
        Self::new(MemoryBackend::new())
    }
}

impl Store<FileLogBackend> {
    /// Opens (or creates) a file-log replica at `path`.
    ///
    /// # Errors
    ///
    /// Propagates [`FileLogBackend::open`] failures.
    pub fn open(path: impl AsRef<std::path::Path>) -> Result<Self, StoreError> {
        Ok(Self::new(FileLogBackend::open(path)?))
    }
}

impl<B: StorageBackend> Store<B> {
    /// Wraps an existing backend.
    pub fn new(backend: B) -> Self {
        Self { backend }
    }

    /// All generations this replica holds, ascending.
    ///
    /// # Errors
    ///
    /// Propagates backend read failures.
    pub fn generations(&self) -> Result<Vec<u64>, StoreError> {
        self.backend.generations()
    }

    /// Decodes the stored snapshot for one generation.
    ///
    /// # Errors
    ///
    /// [`StoreError::MissingGeneration`] when absent,
    /// [`StoreError::Snapshot`] when the stored bytes are damaged.
    pub fn get(&self, generation: u64) -> Result<LineageSnapshot, StoreError> {
        let bytes = self
            .backend
            .get(generation)?
            .ok_or(StoreError::MissingGeneration(generation))?;
        Ok(LineageSnapshot::from_bytes(&bytes)?)
    }

    /// The newest generation this replica holds, if any.
    ///
    /// # Errors
    ///
    /// Propagates backend and decode failures.
    pub fn head(&self) -> Result<Option<LineageSnapshot>, StoreError> {
        match self.generations()?.last() {
            Some(&g) => Ok(Some(self.get(g)?)),
            None => Ok(None),
        }
    }

    /// Publishes a database as the next generation after the local head
    /// (generation 0 / lineage root on an empty replica).
    ///
    /// Version stamps are inherited positionally: a point whose
    /// canonical text block is unchanged keeps the stamp of the parent
    /// generation, so `changed` in [`Store::log`] — and the size of
    /// every downstream changeset — reflects real content churn only.
    ///
    /// # Errors
    ///
    /// Propagates backend failures; [`StoreError::Snapshot`] when the
    /// assembled lineage fails its own verification (e.g. an invalid
    /// publisher id).
    pub fn publish(
        &mut self,
        snapshot: Snapshot,
        publisher: &str,
    ) -> Result<LineageSnapshot, StoreError> {
        let next = match self.head()? {
            None => LineageSnapshot::genesis(snapshot, publisher),
            Some(head) => {
                let generation = head.lineage().generation + 1;
                let parent_stamps = &head.lineage().stamps;
                let stamps: Vec<PointStamp> = snapshot
                    .db()
                    .points()
                    .iter()
                    .enumerate()
                    .map(|(i, p)| {
                        let hash = fnv1a64(point_text(p).as_bytes());
                        match parent_stamps.get(i) {
                            Some(old) if old.hash == hash => *old,
                            _ => PointStamp { hash, generation },
                        }
                    })
                    .collect();
                LineageSnapshot::from_parts(
                    Lineage {
                        generation,
                        parent: Some(head.lineage().generation),
                        publisher: publisher.to_string(),
                        stamps,
                    },
                    snapshot,
                )
            }
        };
        next.verify()?;
        self.backend
            .put(next.lineage().generation, next.to_bytes())?;
        Ok(next)
    }

    /// Merges a generation received from another replica.
    ///
    /// The incoming snapshot is verified first; then the symmetric
    /// tiebreak applies (see the crate docs). Merge is idempotent and
    /// commutative: any set of generations merged in any order, any
    /// number of times, leaves every replica with identical bytes.
    ///
    /// # Errors
    ///
    /// [`StoreError::Snapshot`] when the incoming lineage fails
    /// verification; backend failures propagate.
    pub fn merge(&mut self, incoming: &LineageSnapshot) -> Result<MergeOutcome, StoreError> {
        incoming.verify()?;
        let generation = incoming.lineage().generation;
        let incoming_bytes = incoming.to_bytes();
        let Some(existing_bytes) = self.backend.get(generation)? else {
            self.backend.put(generation, incoming_bytes)?;
            return Ok(MergeOutcome::Inserted);
        };
        if existing_bytes == incoming_bytes {
            return Ok(MergeOutcome::Unchanged);
        }
        let existing = LineageSnapshot::from_bytes(&existing_bytes)?;
        let incoming_key = (&incoming.lineage().publisher, &incoming_bytes);
        let existing_key = (&existing.lineage().publisher, &existing_bytes);
        if incoming_key < existing_key {
            self.backend.put(generation, incoming_bytes)?;
            Ok(MergeOutcome::Replaced)
        } else {
            Ok(MergeOutcome::KeptExisting)
        }
    }

    /// The positional diff carrying a replica from generation `from` to
    /// generation `to`.
    ///
    /// # Errors
    ///
    /// [`StoreError::MissingGeneration`] when either endpoint is not
    /// held locally (a GC'd source means: fall back to full-snapshot
    /// sync).
    pub fn changeset(&self, from: u64, to: u64) -> Result<Changeset, StoreError> {
        Ok(Changeset::compute(&self.get(from)?, &self.get(to)?))
    }

    /// Applies a changeset against the locally-held source generation
    /// and merges the rebuilt target.
    ///
    /// # Errors
    ///
    /// [`StoreError::MissingGeneration`] when the source generation is
    /// absent; [`StoreError::Changeset`] when the diff does not fit the
    /// source or fails its target-hash pin.
    pub fn merge_changeset(&mut self, cs: &Changeset) -> Result<MergeOutcome, StoreError> {
        let from = self.get(cs.from_generation)?;
        let rebuilt = cs.apply(&from)?;
        self.merge(&rebuilt)
    }

    /// Node-local garbage collection: keeps the head plus up to
    /// `keep_depth` ancestors along the parent chain, removes everything
    /// else, and returns the removed generations (ascending).
    ///
    /// Needs no coordination with other replicas — see the crate docs.
    ///
    /// # Errors
    ///
    /// Propagates backend and decode failures.
    pub fn gc(&mut self, keep_depth: usize) -> Result<Vec<u64>, StoreError> {
        let Some(head) = self.head()? else {
            return Ok(Vec::new());
        };
        let mut retained = BTreeSet::new();
        retained.insert(head.lineage().generation);
        let mut cursor = head;
        for _ in 0..keep_depth {
            let Some(parent) = cursor.lineage().parent else {
                break;
            };
            // A parent this node already collected ends the chain: GC
            // never resurrects, it only keeps what is still reachable.
            let Some(bytes) = self.backend.get(parent)? else {
                break;
            };
            cursor = LineageSnapshot::from_bytes(&bytes)?;
            retained.insert(parent);
        }
        let mut removed = Vec::new();
        for g in self.generations()? {
            if !retained.contains(&g) {
                self.backend.remove(g)?;
                removed.push(g);
            }
        }
        Ok(removed)
    }

    /// One row per held generation, ascending.
    ///
    /// # Errors
    ///
    /// Propagates backend and decode failures.
    pub fn log(&self) -> Result<Vec<LogEntry>, StoreError> {
        let mut entries = Vec::new();
        for g in self.generations()? {
            let bytes = self
                .backend
                .get(g)?
                .ok_or(StoreError::MissingGeneration(g))?;
            let snap = LineageSnapshot::from_bytes(&bytes)?;
            let lineage = snap.lineage();
            entries.push(LogEntry {
                generation: lineage.generation,
                parent: lineage.parent,
                publisher: lineage.publisher.clone(),
                points: lineage.stamps.len(),
                changed: lineage
                    .stamps
                    .iter()
                    .filter(|s| s.generation == lineage.generation)
                    .count(),
                bytes: bytes.len(),
            });
        }
        Ok(entries)
    }

    /// Full integrity sweep: every held generation must decode, pass
    /// lineage verification, and be stored under its own generation
    /// number.
    ///
    /// # Errors
    ///
    /// The first violation found, as a [`StoreError`].
    pub fn verify(&self) -> Result<(), StoreError> {
        for g in self.generations()? {
            let snap = self.get(g)?;
            snap.verify()?;
            if snap.lineage().generation != g {
                return Err(StoreError::Snapshot(SnapshotError::Lineage(format!(
                    "generation {} stored under slot {g}",
                    snap.lineage().generation
                ))));
            }
        }
        Ok(())
    }
}

/// Builds a deterministic synthetic database for tests and benches:
/// `n` points whose content is a pure function of `(index, salt)`, so
/// churn is simulated by changing the salt of selected indices.
pub fn synth_db(name: &str, n: usize, salt_for: impl Fn(usize) -> u64) -> clr_dse::DesignPointDb {
    use std::fmt::Write as _;
    let mut text = format!("clr-design-point-db v1\nname {name}\npoints {n}\n");
    for i in 0..n {
        let salt = salt_for(i);
        let v = (i as u64).wrapping_mul(2_654_435_761).wrapping_add(salt) % 997;
        let _ = writeln!(text, "point Pareto");
        let _ = writeln!(
            text,
            "metrics {:?} {:?} {:?} {:?} {:?}",
            100.0 + v as f64 / 8.0,
            0.9 + (v % 90) as f64 / 1000.0,
            1000.0 + v as f64,
            50.0 + (v % 40) as f64,
            1.0e6 + v as f64 * 100.0,
        );
        let _ = writeln!(
            text,
            "gene {} {} none retry:{} checksum {}",
            i % 4,
            v % 3,
            1 + v % 4,
            1 + v % 7
        );
    }
    // clr-audit: allow(CLR105) deterministic test fixture; the text is well-formed by construction
    clr_dse::DesignPointDb::from_text(&text).expect("synthetic db is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(n: usize, salt: u64) -> Snapshot {
        Snapshot::new("jpeg", "dac19", synth_db("based", n, |_| salt))
    }

    /// `churned` indices get a different salt — simulated content churn.
    fn snap_churned(n: usize, salt: u64, churned: &[usize]) -> Snapshot {
        let set: BTreeSet<usize> = churned.iter().copied().collect();
        let db = synth_db("based", n, move |i| {
            if set.contains(&i) {
                salt + 1000
            } else {
                salt
            }
        });
        Snapshot::new("jpeg", "dac19", db)
    }

    #[test]
    fn publish_chains_generations_and_inherits_stamps() {
        let mut store = Store::in_memory();
        let g0 = store.publish(snap(16, 1), "node-a").unwrap();
        assert_eq!(g0.lineage().generation, 0);
        assert_eq!(g0.lineage().parent, None);

        let g1 = store
            .publish(snap_churned(16, 1, &[3, 7]), "node-a")
            .unwrap();
        assert_eq!(g1.lineage().generation, 1);
        assert_eq!(g1.lineage().parent, Some(0));
        for (i, stamp) in g1.lineage().stamps.iter().enumerate() {
            let expect = u64::from(i == 3 || i == 7);
            assert_eq!(stamp.generation, expect, "stamp {i}");
        }

        let log = store.log().unwrap();
        assert_eq!(log.len(), 2);
        assert_eq!(log[1].changed, 2);
        assert_eq!(log[1].points, 16);
        store.verify().unwrap();
    }

    #[test]
    fn merge_tiebreak_is_symmetric_and_deterministic() {
        // Two replicas publish generation 1 concurrently.
        let mut a = Store::in_memory();
        let mut b = Store::in_memory();
        let g0 = a.publish(snap(8, 1), "root").unwrap();
        b.merge(&g0).unwrap();
        let ga = a.publish(snap_churned(8, 1, &[0]), "node-a").unwrap();
        let gb = b.publish(snap_churned(8, 1, &[5]), "node-b").unwrap();

        // Cross-merge in opposite orders: both converge on node-a's
        // publish (lexicographically smaller publisher id).
        assert_eq!(a.merge(&gb).unwrap(), MergeOutcome::KeptExisting);
        assert_eq!(b.merge(&ga).unwrap(), MergeOutcome::Replaced);
        assert_eq!(
            a.head().unwrap().unwrap().to_bytes(),
            b.head().unwrap().unwrap().to_bytes()
        );

        // Idempotence: replaying either side changes nothing.
        assert_eq!(a.merge(&ga).unwrap(), MergeOutcome::Unchanged);
        assert_eq!(a.merge(&gb).unwrap(), MergeOutcome::KeptExisting);
        assert_eq!(b.merge(&gb).unwrap(), MergeOutcome::KeptExisting);
    }

    #[test]
    fn changeset_reproduces_the_target_byte_for_byte() {
        let mut publisher = Store::in_memory();
        publisher.publish(snap(64, 3), "pub").unwrap();
        publisher
            .publish(snap_churned(64, 3, &[1, 2, 40]), "pub")
            .unwrap();

        let cs = publisher.changeset(0, 1).unwrap();
        assert_eq!(cs.ops.len(), 3);
        let round = Changeset::from_text(&cs.to_text()).unwrap();
        assert_eq!(round, cs);

        let mut replica = Store::in_memory();
        replica.merge(&publisher.get(0).unwrap()).unwrap();
        assert_eq!(
            replica.merge_changeset(&cs).unwrap(),
            MergeOutcome::Inserted
        );
        assert_eq!(
            replica.head().unwrap().unwrap().to_bytes(),
            publisher.head().unwrap().unwrap().to_bytes()
        );
    }

    #[test]
    fn changeset_covers_append_and_truncate() {
        let mut store = Store::in_memory();
        store.publish(snap(10, 2), "pub").unwrap();
        store.publish(snap(14, 2), "pub").unwrap(); // grow
        store.publish(snap(6, 2), "pub").unwrap(); // shrink
        let grow = store.changeset(0, 1).unwrap();
        assert!(grow
            .ops
            .iter()
            .all(|op| matches!(op, ChangeOp::Append { .. })));
        let shrink = store.changeset(1, 2).unwrap();
        assert!(matches!(shrink.ops[..], [ChangeOp::Truncate { len: 6 }]));
        let mut replica = Store::in_memory();
        replica.merge(&store.get(0).unwrap()).unwrap();
        replica.merge_changeset(&grow).unwrap();
        replica.merge_changeset(&shrink).unwrap();
        assert_eq!(
            replica.head().unwrap().unwrap().to_bytes(),
            store.get(2).unwrap().to_bytes()
        );
    }

    #[test]
    fn changeset_rejects_a_mismatched_source() {
        let mut store = Store::in_memory();
        store.publish(snap(8, 4), "pub").unwrap();
        store.publish(snap_churned(8, 4, &[2]), "pub").unwrap();
        let cs = store.changeset(0, 1).unwrap();
        let stranger = LineageSnapshot::genesis(snap(8, 99), "pub");
        assert!(matches!(cs.apply(&stranger), Err(StoreError::Changeset(_))));
    }

    #[test]
    fn gc_keeps_the_head_chain_only() {
        let mut store = Store::in_memory();
        for churn in 0..5u64 {
            let s = snap_churned(12, 7, &[churn as usize]);
            store.publish(s, "pub").unwrap();
        }
        let removed = store.gc(1).unwrap();
        assert_eq!(removed, vec![0, 1, 2]);
        assert_eq!(store.generations().unwrap(), vec![3, 4]);
        store.verify().unwrap();
        // Depth 0 keeps the head alone; an empty store is a no-op.
        assert_eq!(store.gc(0).unwrap(), vec![3]);
        assert_eq!(store.generations().unwrap(), vec![4]);
    }

    #[test]
    fn file_log_store_round_trips_across_reopen() {
        let dir = std::env::temp_dir().join("clr-store-lib-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("replica.log");
        let _ = std::fs::remove_file(&path);
        let head_bytes;
        {
            let mut store = Store::open(&path).unwrap();
            store.publish(snap(20, 9), "pub").unwrap();
            store.publish(snap_churned(20, 9, &[11]), "pub").unwrap();
            store.gc(0).unwrap();
            head_bytes = store.head().unwrap().unwrap().to_bytes();
        }
        let store = Store::open(&path).unwrap();
        assert_eq!(store.generations().unwrap(), vec![1]);
        assert_eq!(store.head().unwrap().unwrap().to_bytes(), head_bytes);
        store.verify().unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn delta_sync_is_a_small_fraction_of_full_sync_at_low_churn() {
        let n = 4096;
        let churned: Vec<usize> = (0..n / 100).map(|k| k * 100).collect(); // 1% churn
        let mut store = Store::in_memory();
        store.publish(snap(n, 5), "pub").unwrap();
        store.publish(snap_churned(n, 5, &churned), "pub").unwrap();
        let full = store.get(1).unwrap().to_bytes().len();
        let delta = store.changeset(0, 1).unwrap().byte_len();
        assert!(
            delta * 20 <= full,
            "delta {delta}B should be ≤5% of full {full}B"
        );
    }

    #[test]
    fn missing_generations_are_reported_not_invented() {
        let store = Store::in_memory();
        assert!(matches!(
            store.get(3),
            Err(StoreError::MissingGeneration(3))
        ));
        assert!(store.head().unwrap().is_none());
        assert!(matches!(
            store.changeset(0, 1),
            Err(StoreError::MissingGeneration(0))
        ));
    }
}
