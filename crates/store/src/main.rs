//! `clr-store` — the replicated snapshot store CLI.
//!
//! ```text
//! clr-store publish <STORE.log> <DB_OR_SNAP> [--publisher ID] [--graph G] [--platform P]
//! clr-store pull <SRC.log> <DST.log> [--mode auto|delta|full]
//! clr-store gc <STORE.log> [--keep N]
//! clr-store log <STORE.log>
//! clr-store verify <STORE.log>
//! clr-store export <STORE.log> <OUT.snap> [--generation N]
//! clr-store changeset <STORE.log> --from A --to B --out FILE
//! clr-store apply <STORE.log> --changeset FILE
//! ```
//!
//! `publish` appends the next generation (the input may be a v1 text
//! database, in which case `--graph`/`--platform` name the models, or an
//! existing CLRSNAP1/CLRSNAP2 container). `pull` replicates from one
//! store file into another: in `auto` mode (the default) it sends a
//! changeset when the destination holds the source head's parent chain
//! and falls back to full snapshots otherwise, printing the byte volume
//! either way so sync cost is observable. `gc` is node-local (see the
//! crate docs — no coordination needed). `export` seals one generation
//! back out as a CLRSNAP2 file, which is exactly what the serve daemon's
//! `SwapDb` frame loads.
//!
//! Flag parsing is strict (unknown flags are usage errors). Exit codes:
//! `0` success, `1` store/verification failure, `2` usage / IO error.

use std::process::ExitCode;

use clr_serve::cli::{flag, split_flags};
use clr_serve::{is_plain_name, LineageSnapshot, Snapshot};
use clr_store::{Changeset, MergeOutcome, Store, StoreError};

const USAGE: &str = "usage: clr-store <command>
  publish <STORE.log> <DB_OR_SNAP> [--publisher ID] [--graph G] [--platform P]
  pull <SRC.log> <DST.log> [--mode auto|delta|full]
  gc <STORE.log> [--keep N]
  log <STORE.log>
  verify <STORE.log>
  export <STORE.log> <OUT.snap> [--generation N]
  changeset <STORE.log> --from A --to B --out FILE
  apply <STORE.log> --changeset FILE";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    match command.as_str() {
        "publish" => cmd_publish(&args[1..]),
        "pull" => cmd_pull(&args[1..]),
        "gc" => cmd_gc(&args[1..]),
        "log" => cmd_log(&args[1..]),
        "verify" => cmd_verify(&args[1..]),
        "export" => cmd_export(&args[1..]),
        "changeset" => cmd_changeset(&args[1..]),
        "apply" => cmd_apply(&args[1..]),
        other => {
            eprintln!("clr-store: unknown command {other:?}\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Prints a usage error and returns the usage exit code.
fn usage_error(message: &str) -> ExitCode {
    eprintln!("clr-store: {message}\n{USAGE}");
    ExitCode::from(2)
}

/// Opens a store replica, mapping failure to the usage/IO exit path.
fn open_store(path: &str) -> Result<Store<clr_store::FileLogBackend>, ExitCode> {
    Store::open(path).map_err(|e| {
        eprintln!("clr-store: {path}: {e}");
        ExitCode::from(2)
    })
}

/// `publish`: append the next generation from a text database or an
/// existing snapshot container.
fn cmd_publish(args: &[String]) -> ExitCode {
    let allowed = ["publisher", "graph", "platform"];
    let (positional, flags) = match split_flags(args, &allowed) {
        Ok(p) => p,
        Err(e) => return usage_error(&e),
    };
    let [store_path, input] = positional[..] else {
        return usage_error("publish takes <STORE.log> <DB_OR_SNAP>");
    };
    let publisher = flag(&flags, "publisher").unwrap_or("local");
    if !is_plain_name(publisher) {
        return usage_error(&format!("bad --publisher {publisher:?} (a plain name)"));
    }
    let bytes = match std::fs::read(input) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("clr-store: cannot read {input}: {e}");
            return ExitCode::from(2);
        }
    };
    // A snapshot container starts with its magic; anything else is
    // treated as v1 database text.
    let snapshot = if bytes.starts_with(b"CLRSNAP") {
        match LineageSnapshot::from_bytes(&bytes) {
            Ok(s) => s.into_snapshot(),
            Err(e) => {
                eprintln!("clr-store: {input}: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        let Ok(text) = String::from_utf8(bytes) else {
            eprintln!("clr-store: {input}: neither a snapshot container nor UTF-8 db text");
            return ExitCode::from(2);
        };
        let db = match clr_dse::DesignPointDb::from_text(&text) {
            Ok(db) => db,
            Err(e) => {
                eprintln!("clr-store: {input}: database decode error: {e}");
                return ExitCode::from(2);
            }
        };
        Snapshot::new(
            flag(&flags, "graph").unwrap_or("jpeg"),
            flag(&flags, "platform").unwrap_or("dac19"),
            db,
        )
    };
    let mut store = match open_store(store_path) {
        Ok(s) => s,
        Err(code) => return code,
    };
    match store.publish(snapshot, publisher) {
        Ok(snap) => {
            let l = snap.lineage();
            let changed = l
                .stamps
                .iter()
                .filter(|s| s.generation == l.generation)
                .count();
            println!(
                "published generation {} (parent {}, publisher {}, {} points, {changed} changed)",
                l.generation,
                l.parent.map_or_else(|| "none".into(), |p| p.to_string()),
                l.publisher,
                l.stamps.len()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("clr-store: {store_path}: {e}");
            ExitCode::from(1)
        }
    }
}

/// `pull`: replicate missing generations from SRC into DST, preferring
/// changeset delta sync when the destination can apply one.
fn cmd_pull(args: &[String]) -> ExitCode {
    let (positional, flags) = match split_flags(args, &["mode"]) {
        Ok(p) => p,
        Err(e) => return usage_error(&e),
    };
    let [src_path, dst_path] = positional[..] else {
        return usage_error("pull takes <SRC.log> <DST.log>");
    };
    let mode = flag(&flags, "mode").unwrap_or("auto");
    if !matches!(mode, "auto" | "delta" | "full") {
        return usage_error(&format!("bad --mode {mode:?} (auto, delta or full)"));
    }
    let src = match open_store(src_path) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let mut dst = match open_store(dst_path) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let mut run = || -> Result<(), StoreError> {
        let Some(src_head) = src.head()? else {
            println!("pulled 0 generations ({src_path} is empty)");
            return Ok(());
        };
        let src_head_gen = src_head.lineage().generation;
        let dst_gens = dst.generations()?;
        // Delta sync applies when the destination already holds a
        // generation the source can diff from (the newest shared one).
        let base = dst_gens
            .iter()
            .rev()
            .find(|g| src.generations().is_ok_and(|s| s.contains(g)) && **g < src_head_gen)
            .copied();
        let use_delta = match (mode, base) {
            ("full", _) | ("auto" | "delta", None) => None,
            ("auto" | "delta", Some(b)) => Some(b),
            _ => unreachable!("mode was validated"),
        };
        if mode == "delta"
            && use_delta.is_none()
            && src_head_gen > dst_gens.last().copied().unwrap_or(0)
        {
            return Err(StoreError::Changeset(
                "no shared base generation for delta sync (pull --mode full first)".to_string(),
            ));
        }
        let mut merged = 0usize;
        let mut bytes = 0usize;
        if let Some(base) = use_delta {
            let cs = src.changeset(base, src_head_gen)?;
            bytes += cs.byte_len();
            let outcome = dst.merge_changeset(&cs)?;
            merged += usize::from(outcome != MergeOutcome::KeptExisting);
            println!(
                "pulled generation {src_head_gen} via changeset from {base}: {} ops, {bytes} bytes ({outcome})",
                cs.ops.len()
            );
        } else {
            for g in src.generations()? {
                if dst.generations()?.contains(&g) {
                    continue;
                }
                let snap = src.get(g)?;
                let b = snap.to_bytes().len();
                let outcome = dst.merge(&snap)?;
                bytes += b;
                merged += usize::from(outcome != MergeOutcome::KeptExisting);
                println!("pulled generation {g} via full snapshot: {b} bytes ({outcome})");
            }
        }
        println!("pull complete: {merged} generations merged, {bytes} bytes transferred");
        Ok(())
    };
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("clr-store: {e}");
            ExitCode::from(1)
        }
    }
}

/// `gc`: node-local collection of superseded generations.
fn cmd_gc(args: &[String]) -> ExitCode {
    let (positional, flags) = match split_flags(args, &["keep"]) {
        Ok(p) => p,
        Err(e) => return usage_error(&e),
    };
    let [store_path] = positional[..] else {
        return usage_error("gc takes <STORE.log>");
    };
    let keep: usize = match flag(&flags, "keep").map_or(Ok(1), str::parse) {
        Ok(n) => n,
        Err(_) => return usage_error("bad --keep (a non-negative integer)"),
    };
    let mut store = match open_store(store_path) {
        Ok(s) => s,
        Err(code) => return code,
    };
    match store.gc(keep) {
        Ok(removed) => {
            let listed: Vec<String> = removed.iter().map(ToString::to_string).collect();
            println!(
                "collected {} generations (keep-depth {keep}){}{}",
                removed.len(),
                if removed.is_empty() { "" } else { ": " },
                listed.join(", ")
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("clr-store: {store_path}: {e}");
            ExitCode::from(1)
        }
    }
}

/// `log`: one line per held generation.
fn cmd_log(args: &[String]) -> ExitCode {
    let (positional, _) = match split_flags(args, &[]) {
        Ok(p) => p,
        Err(e) => return usage_error(&e),
    };
    let [store_path] = positional[..] else {
        return usage_error("log takes <STORE.log>");
    };
    let store = match open_store(store_path) {
        Ok(s) => s,
        Err(code) => return code,
    };
    match store.log() {
        Ok(entries) => {
            for e in entries {
                println!(
                    "generation {} parent {} publisher {} points {} changed {} bytes {}",
                    e.generation,
                    e.parent.map_or_else(|| "none".into(), |p| p.to_string()),
                    e.publisher,
                    e.points,
                    e.changed,
                    e.bytes
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("clr-store: {store_path}: {e}");
            ExitCode::from(1)
        }
    }
}

/// `verify`: full integrity sweep over every held generation.
fn cmd_verify(args: &[String]) -> ExitCode {
    let (positional, _) = match split_flags(args, &[]) {
        Ok(p) => p,
        Err(e) => return usage_error(&e),
    };
    let [store_path] = positional[..] else {
        return usage_error("verify takes <STORE.log>");
    };
    let store = match open_store(store_path) {
        Ok(s) => s,
        Err(code) => return code,
    };
    match store.verify() {
        Ok(()) => {
            let count = store.generations().map_or(0, |g| g.len());
            println!("verified {count} generations: ok");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("clr-store: {store_path}: {e}");
            ExitCode::from(1)
        }
    }
}

/// `export`: seal one generation back out as a CLRSNAP2 file.
fn cmd_export(args: &[String]) -> ExitCode {
    let (positional, flags) = match split_flags(args, &["generation"]) {
        Ok(p) => p,
        Err(e) => return usage_error(&e),
    };
    let [store_path, out] = positional[..] else {
        return usage_error("export takes <STORE.log> <OUT.snap>");
    };
    let store = match open_store(store_path) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let snap = match flag(&flags, "generation") {
        Some(v) => match v.parse::<u64>() {
            Ok(g) => store.get(g),
            Err(_) => return usage_error("bad --generation (a non-negative integer)"),
        },
        None => match store.head() {
            Ok(Some(s)) => Ok(s),
            Ok(None) => Err(StoreError::MissingGeneration(0)),
            Err(e) => Err(e),
        },
    };
    match snap {
        Ok(snap) => {
            if let Err(e) = std::fs::write(out, snap.to_bytes()) {
                eprintln!("clr-store: cannot write {out}: {e}");
                return ExitCode::from(2);
            }
            println!(
                "exported generation {} to {out} ({} points)",
                snap.lineage().generation,
                snap.lineage().stamps.len()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("clr-store: {store_path}: {e}");
            ExitCode::from(1)
        }
    }
}

/// `changeset`: write the positional diff between two held generations.
fn cmd_changeset(args: &[String]) -> ExitCode {
    let (positional, flags) = match split_flags(args, &["from", "to", "out"]) {
        Ok(p) => p,
        Err(e) => return usage_error(&e),
    };
    let [store_path] = positional[..] else {
        return usage_error("changeset takes <STORE.log> --from A --to B --out FILE");
    };
    let (Some(from), Some(to), Some(out)) = (
        flag(&flags, "from"),
        flag(&flags, "to"),
        flag(&flags, "out"),
    ) else {
        return usage_error("changeset needs --from A --to B --out FILE");
    };
    let (Ok(from), Ok(to)) = (from.parse::<u64>(), to.parse::<u64>()) else {
        return usage_error("bad --from/--to (generation numbers)");
    };
    let store = match open_store(store_path) {
        Ok(s) => s,
        Err(code) => return code,
    };
    match store.changeset(from, to) {
        Ok(cs) => {
            let text = cs.to_text();
            if let Err(e) = std::fs::write(out, &text) {
                eprintln!("clr-store: cannot write {out}: {e}");
                return ExitCode::from(2);
            }
            println!(
                "wrote {out}: {} → {} in {} ops, {} bytes",
                from,
                to,
                cs.ops.len(),
                text.len()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("clr-store: {store_path}: {e}");
            ExitCode::from(1)
        }
    }
}

/// `apply`: merge a changeset file against the locally-held source
/// generation.
fn cmd_apply(args: &[String]) -> ExitCode {
    let (positional, flags) = match split_flags(args, &["changeset"]) {
        Ok(p) => p,
        Err(e) => return usage_error(&e),
    };
    let [store_path] = positional[..] else {
        return usage_error("apply takes <STORE.log> --changeset FILE");
    };
    let Some(cs_path) = flag(&flags, "changeset") else {
        return usage_error("apply needs --changeset FILE");
    };
    let text = match std::fs::read_to_string(cs_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("clr-store: cannot read {cs_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let cs = match Changeset::from_text(&text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("clr-store: {cs_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let mut store = match open_store(store_path) {
        Ok(s) => s,
        Err(code) => return code,
    };
    match store.merge_changeset(&cs) {
        Ok(outcome) => {
            println!(
                "applied {} → {} ({outcome})",
                cs.from_generation, cs.to_generation
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("clr-store: {store_path}: {e}");
            ExitCode::from(1)
        }
    }
}
