//! Pluggable persistence for the snapshot store.
//!
//! A backend is a flat `generation → container bytes` map; all lineage
//! semantics (tiebreaking, changesets, GC policy) live above it in
//! [`crate::Store`]. Two implementations ship:
//!
//! - [`MemoryBackend`]: a `BTreeMap`, for tests and ephemeral replicas.
//! - [`FileLogBackend`]: an append-only record log. Every `put`/`remove`
//!   appends a checksummed record; opening a log replays it
//!   last-record-wins. Removal writes a *tombstone* rather than
//!   rewriting the file — the log only ever grows, which is what makes
//!   concurrent node-local GC safe without coordination (no reader ever
//!   observes a half-rewritten store).

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use clr_serve::fnv1a64;

use crate::StoreError;

/// Magic bytes opening every append-only store log.
pub const LOG_MAGIC: [u8; 8] = *b"CLRSTLG1";

/// Record tag: a snapshot was stored for a generation.
const REC_PUT: u8 = 1;
/// Record tag: a generation was garbage-collected (tombstone).
const REC_REMOVE: u8 = 2;

/// Flat persistence for sealed snapshot containers, keyed by generation.
pub trait StorageBackend {
    /// Stores (or replaces) the container bytes for a generation.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the backing medium rejects the write.
    fn put(&mut self, generation: u64, bytes: Vec<u8>) -> Result<(), StoreError>;

    /// The stored container for a generation, if any.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the backing medium cannot be read.
    fn get(&self, generation: u64) -> Result<Option<Vec<u8>>, StoreError>;

    /// Removes a generation (a no-op when absent).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the backing medium rejects the write.
    fn remove(&mut self, generation: u64) -> Result<(), StoreError>;

    /// All stored generations, ascending.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the backing medium cannot be read.
    fn generations(&self) -> Result<Vec<u64>, StoreError>;
}

/// In-memory backend: a `BTreeMap`, so iteration order is the
/// generation order and never an artifact of hashing.
#[derive(Debug, Default, Clone)]
pub struct MemoryBackend {
    slots: BTreeMap<u64, Vec<u8>>,
}

impl MemoryBackend {
    /// An empty in-memory store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl StorageBackend for MemoryBackend {
    fn put(&mut self, generation: u64, bytes: Vec<u8>) -> Result<(), StoreError> {
        self.slots.insert(generation, bytes);
        Ok(())
    }

    fn get(&self, generation: u64) -> Result<Option<Vec<u8>>, StoreError> {
        Ok(self.slots.get(&generation).cloned())
    }

    fn remove(&mut self, generation: u64) -> Result<(), StoreError> {
        self.slots.remove(&generation);
        Ok(())
    }

    fn generations(&self) -> Result<Vec<u64>, StoreError> {
        Ok(self.slots.keys().copied().collect())
    }
}

/// Append-only file-log backend.
///
/// On-disk layout: the 8-byte [`LOG_MAGIC`], then records of
///
/// ```text
/// offset  size  field
/// 0       1     tag (1 = put, 2 = remove)
/// 1       8     generation, u64 LE
/// 9       8     payload length, u64 LE (0 for tombstones)
/// 17      8     FNV-1a 64 checksum of the payload, u64 LE
/// 25      n     payload (the sealed snapshot container)
/// ```
///
/// Opening replays the whole log, last record per generation winning. A
/// torn or corrupt trailing record fails the open loudly — a store that
/// cannot prove its own integrity must not serve databases.
#[derive(Debug)]
pub struct FileLogBackend {
    path: PathBuf,
    view: BTreeMap<u64, Vec<u8>>,
}

impl FileLogBackend {
    /// Opens (or creates) the log at `path` and replays it into memory.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] for filesystem failures, [`StoreError::Log`]
    /// for a corrupt log (bad magic, torn record, checksum mismatch).
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let path = path.as_ref().to_path_buf();
        if !path.exists() {
            std::fs::write(&path, LOG_MAGIC)
                .map_err(|e| StoreError::Io(format!("cannot create {}: {e}", path.display())))?;
            return Ok(Self {
                path,
                view: BTreeMap::new(),
            });
        }
        let bytes = std::fs::read(&path)
            .map_err(|e| StoreError::Io(format!("cannot read {}: {e}", path.display())))?;
        let view = Self::replay(&bytes)
            .map_err(|e| StoreError::Log(format!("{}: {e}", path.display())))?;
        Ok(Self { path, view })
    }

    /// The log file this backend persists to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn replay(bytes: &[u8]) -> Result<BTreeMap<u64, Vec<u8>>, String> {
        if bytes.len() < LOG_MAGIC.len() || bytes[..8] != LOG_MAGIC {
            return Err("bad log magic (not a clr-store log)".to_string());
        }
        let mut view = BTreeMap::new();
        let mut at = LOG_MAGIC.len();
        let mut record = 0usize;
        while at < bytes.len() {
            record += 1;
            if bytes.len() - at < 25 {
                return Err(format!("record {record}: torn header at byte {at}"));
            }
            let tag = bytes[at];
            let quad = |off: usize| {
                u64::from_le_bytes(bytes[at + off..at + off + 8].try_into().expect("8 bytes"))
            };
            let generation = quad(1);
            let len = usize::try_from(quad(9))
                .map_err(|_| format!("record {record}: declared length overflows this platform"))?;
            let declared_sum = quad(17);
            at += 25;
            if bytes.len() - at < len {
                return Err(format!("record {record}: torn payload at byte {at}"));
            }
            let payload = &bytes[at..at + len];
            let actual_sum = fnv1a64(payload);
            if actual_sum != declared_sum {
                return Err(format!(
                    "record {record}: checksum mismatch (header {declared_sum:#018x}, payload {actual_sum:#018x})"
                ));
            }
            at += len;
            match tag {
                REC_PUT => {
                    view.insert(generation, payload.to_vec());
                }
                REC_REMOVE => {
                    view.remove(&generation);
                }
                other => return Err(format!("record {record}: unknown tag {other}")),
            }
        }
        Ok(view)
    }

    fn append(&self, tag: u8, generation: u64, payload: &[u8]) -> Result<(), StoreError> {
        let mut record = Vec::with_capacity(25 + payload.len());
        record.push(tag);
        record.extend_from_slice(&generation.to_le_bytes());
        record.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        record.extend_from_slice(&fnv1a64(payload).to_le_bytes());
        record.extend_from_slice(payload);
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(&self.path)
            .map_err(|e| StoreError::Io(format!("cannot open {}: {e}", self.path.display())))?;
        file.write_all(&record)
            .map_err(|e| StoreError::Io(format!("cannot append to {}: {e}", self.path.display())))
    }
}

impl StorageBackend for FileLogBackend {
    fn put(&mut self, generation: u64, bytes: Vec<u8>) -> Result<(), StoreError> {
        self.append(REC_PUT, generation, &bytes)?;
        self.view.insert(generation, bytes);
        Ok(())
    }

    fn get(&self, generation: u64) -> Result<Option<Vec<u8>>, StoreError> {
        Ok(self.view.get(&generation).cloned())
    }

    fn remove(&mut self, generation: u64) -> Result<(), StoreError> {
        if self.view.remove(&generation).is_some() {
            self.append(REC_REMOVE, generation, &[])?;
        }
        Ok(())
    }

    fn generations(&self) -> Result<Vec<u64>, StoreError> {
        Ok(self.view.keys().copied().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_log(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("clr-store-backend-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn memory_backend_round_trips() {
        let mut b = MemoryBackend::new();
        b.put(2, vec![2]).unwrap();
        b.put(0, vec![0]).unwrap();
        assert_eq!(b.get(2).unwrap(), Some(vec![2]));
        assert_eq!(b.get(1).unwrap(), None);
        assert_eq!(b.generations().unwrap(), vec![0, 2]);
        b.remove(2).unwrap();
        assert_eq!(b.generations().unwrap(), vec![0]);
    }

    #[test]
    fn file_log_survives_reopen_with_tombstones() {
        let path = temp_log("reopen.log");
        {
            let mut b = FileLogBackend::open(&path).unwrap();
            b.put(0, b"gen0".to_vec()).unwrap();
            b.put(1, b"gen1".to_vec()).unwrap();
            b.put(1, b"gen1-replaced".to_vec()).unwrap();
            b.remove(0).unwrap();
        }
        let b = FileLogBackend::open(&path).unwrap();
        assert_eq!(b.generations().unwrap(), vec![1]);
        assert_eq!(b.get(1).unwrap(), Some(b"gen1-replaced".to_vec()));
        assert_eq!(b.get(0).unwrap(), None);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_logs_fail_the_open() {
        let path = temp_log("corrupt.log");
        {
            let mut b = FileLogBackend::open(&path).unwrap();
            b.put(0, b"payload".to_vec()).unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            FileLogBackend::open(&path),
            Err(StoreError::Log(_))
        ));
        // A torn record (truncated mid-payload) is equally fatal.
        bytes[last] ^= 0xFF;
        bytes.truncate(bytes.len() - 3);
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            FileLogBackend::open(&path),
            Err(StoreError::Log(_))
        ));
        std::fs::write(&path, b"WRONGMAG").unwrap();
        assert!(matches!(
            FileLogBackend::open(&path),
            Err(StoreError::Log(_))
        ));
        std::fs::remove_file(&path).unwrap();
    }
}
