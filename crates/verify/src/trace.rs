//! Trace lints (`CLR065`): QoS-event traces against a serving fleet.
//!
//! A trace is only meaningful relative to the fleet that will replay
//! it: an event addressed to a tenant not in the fleet is silently
//! recorded as dropped by the engine, so deployments that ship a trace
//! with a fleet manifest should gate on this check first. One finding
//! is emitted **per unknown tenant name** (not per event), carrying the
//! event count and the first offending event's ordinal.

use std::collections::BTreeMap;

use clr_serve::Trace;

use crate::{Diagnostic, LintCode, Report};

/// Lints a parsed trace against the tenant names of a serving fleet
/// (CLR065): every event must address a seated tenant.
///
/// `fleet` is the set of tenant names that will serve the trace;
/// `label` names the trace artifact in findings.
pub fn check_trace(trace: &Trace, fleet: &[&str], label: &str) -> Report {
    let mut report = Report::new();
    // name → (event count, first 1-based event ordinal)
    let mut unknown: BTreeMap<&str, (usize, usize)> = BTreeMap::new();
    for (ordinal, event) in trace.events().iter().enumerate() {
        if !fleet.contains(&event.tenant.as_str()) {
            let entry = unknown
                .entry(event.tenant.as_str())
                .or_insert((0, ordinal + 1));
            entry.0 += 1;
        }
    }
    for (name, (count, first)) in unknown {
        report.push(Diagnostic::new(
            LintCode::TraceUnknownTenant,
            format!("trace:{label}"),
            format!("tenant {name:?}"),
            format!(
                "{count} event(s) address tenant {name:?}, absent from the \
                 fleet ({} tenants); first at event {first} — the engine \
                 would drop them",
                fleet.len()
            ),
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use clr_dse::QosSpec;
    use clr_serve::TraceEvent;

    fn ev(tenant: &str, time: f64) -> TraceEvent {
        TraceEvent {
            tenant: tenant.into(),
            time,
            spec: QosSpec::new(100.0, 0.5),
        }
    }

    #[test]
    fn trace_covered_by_fleet_is_clean() {
        let trace = Trace::new(vec![ev("cam0", 0.0), ev("nav", 1.0), ev("cam0", 2.0)]);
        let report = check_trace(&trace, &["cam0", "nav", "audio"], "t");
        assert!(report.is_empty(), "{report:?}");
    }

    #[test]
    fn unknown_tenants_deny_one_finding_per_name() {
        let trace = Trace::new(vec![
            ev("cam0", 0.0),
            ev("ghost", 1.0),
            ev("phantom", 2.0),
            ev("ghost", 3.0),
        ]);
        let report = check_trace(&trace, &["cam0"], "t");
        assert_eq!(report.len(), 2, "{report:?}");
        assert!(report.has_code(LintCode::TraceUnknownTenant));
        assert_eq!(report.exit_code(), 1, "CLR065 is deny-level");
        let ghost = &report.diagnostics()[0];
        assert!(ghost.location.contains("ghost"));
        assert!(ghost.detail.contains("2 event(s)"), "{}", ghost.detail);
        assert!(
            ghost.detail.contains("first at event 2"),
            "{}",
            ghost.detail
        );
    }

    #[test]
    fn empty_trace_is_clean_even_against_an_empty_fleet() {
        let report = check_trace(&Trace::default(), &[], "t");
        assert!(report.is_empty());
    }
}
