//! Snapshot-container lints (`CLR06x`): structural decoding, integrity
//! checksums, byte-stable re-encoding, model-descriptor resolution, and
//! the indexed-feasibility equivalence law.
//!
//! A snapshot is the deployable artifact the serving layer loads at
//! fleet scale, so the audit is adversarial: a snapshot is checked the
//! way `clr-serve` would consume it, including rebuilding the
//! [`clr_dse::FeasibilityIndex`] over the embedded database and proving
//! it returns exactly the linear scan's feasible set over a sampled
//! grid of QoS requirements.

use clr_dse::{FeasibilityIndex, QosSpec};
use clr_serve::{LineageSnapshot, Snapshot, SnapshotError, MAGIC2};

use crate::{Diagnostic, LintCode, Report};

/// Audits one snapshot artifact from its raw bytes — either container
/// generation: a plain `CLRSNAP1` export or a lineaged `CLRSNAP2`
/// store/rollout artifact.
///
/// Findings: [`LintCode::SnapshotContainerInvalid`] (CLR060) for any
/// structural decode failure (a `CLRSNAP2` lineage block that fails its
/// own verification included — the serve path would refuse to hot-swap
/// it), [`LintCode::SnapshotChecksumMismatch`]
/// (CLR061) for payload corruption, [`LintCode::SnapshotIndexDivergence`]
/// (CLR062) when the feasibility index disagrees with a linear scan,
/// [`LintCode::SnapshotRoundTripMismatch`] (CLR063) when re-encoding is
/// not byte-identical, and [`LintCode::SnapshotUnknownModel`] (CLR064,
/// warn) when a model descriptor names no bundled graph/platform.
pub fn check_snapshot(bytes: &[u8], artifact: &str) -> Report {
    let mut report = Report::new();
    let lineaged = match LineageSnapshot::from_bytes(bytes) {
        Ok(s) => s,
        Err(e) => {
            let code = match e {
                SnapshotError::ChecksumMismatch { .. } => LintCode::SnapshotChecksumMismatch,
                _ => LintCode::SnapshotContainerInvalid,
            };
            report.push(Diagnostic::new(code, artifact, "container", e.to_string()));
            return report;
        }
    };

    // Re-encode through the codec the container actually used: a v1
    // artifact must reproduce its v1 bytes (promotion is a read-side
    // view, not a rewrite), a v2 artifact its lineaged bytes.
    let is_v2 = bytes.len() >= 8 && bytes[0..8] == MAGIC2;
    let reencoded = if is_v2 {
        lineaged.to_bytes()
    } else {
        lineaged.snapshot().to_bytes()
    };
    if reencoded != bytes {
        report.push(Diagnostic::new(
            LintCode::SnapshotRoundTripMismatch,
            artifact,
            "container",
            "decode/re-encode is not byte-identical",
        ));
    }

    if is_v2 {
        if let Err(e) = lineaged.verify() {
            report.push(Diagnostic::new(
                LintCode::SnapshotContainerInvalid,
                artifact,
                "lineage",
                e.to_string(),
            ));
        }
    }

    let snapshot = lineaged.snapshot();
    if let Err(e) = snapshot.resolve() {
        report.push(Diagnostic::new(
            LintCode::SnapshotUnknownModel,
            artifact,
            "meta",
            e.to_string(),
        ));
    }

    report.merge(check_index_equivalence(snapshot, artifact));
    report
}

/// Proves the feasibility index ≡ linear scan over a sampled spec grid:
/// metric quantiles of the embedded database crossed with boundary
/// values, so every `partition_point` edge the index navigates is
/// exercised against the exact stored keys.
fn check_index_equivalence(snapshot: &Snapshot, artifact: &str) -> Report {
    let mut report = Report::new();
    let db = snapshot.db();
    let index = FeasibilityIndex::new(db);

    let quantiles = |mut values: Vec<f64>| -> Vec<f64> {
        values.retain(|v| v.is_finite());
        values.sort_unstable_by(f64::total_cmp);
        match values.len() {
            0 => Vec::new(),
            n => [0, n / 4, n / 2, 3 * n / 4, n - 1]
                .into_iter()
                .map(|i| values[i])
                .collect(),
        }
    };
    let mut makespans = quantiles(db.points().iter().map(|p| p.metrics.makespan).collect());
    makespans.extend([0.0, f64::MAX]);
    let mut reliabilities = quantiles(db.points().iter().map(|p| p.metrics.reliability).collect());
    reliabilities.extend([0.0, 1.0]);

    for &s_max in &makespans {
        for &f_min in &reliabilities {
            let spec = QosSpec::new(s_max, f_min);
            let indexed = index.query(&spec);
            let scanned = db.feasible_indices(&spec);
            if indexed != scanned {
                report.push(Diagnostic::new(
                    LintCode::SnapshotIndexDivergence,
                    artifact,
                    format!("spec s_max={s_max} f_min={f_min}"),
                    format!(
                        "index returned {} feasible points, linear scan {}",
                        indexed.len(),
                        scanned.len()
                    ),
                ));
                return report; // one divergence proves the artifact bad
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use clr_dse::{DesignPoint, DesignPointDb, PointOrigin};
    use clr_sched::{Mapping, SystemMetrics};

    fn db(points: &[(f64, f64)]) -> DesignPointDb {
        let mut db = DesignPointDb::new("t");
        for &(makespan, reliability) in points {
            db.push(DesignPoint::new(
                Mapping::new(vec![]),
                SystemMetrics {
                    makespan,
                    reliability,
                    energy: 1.0,
                    peak_power: 1.0,
                    mean_mttf: 1.0,
                },
                PointOrigin::Pareto,
            ));
        }
        db
    }

    fn snapshot_bytes() -> Vec<u8> {
        Snapshot::new(
            "jpeg",
            "dac19",
            db(&[(10.0, 0.9), (20.0, 0.95), (5.0, 0.8)]),
        )
        .to_bytes()
    }

    #[test]
    fn clean_snapshot_audits_clean() {
        assert!(check_snapshot(&snapshot_bytes(), "t").is_empty());
    }

    #[test]
    fn lineaged_v2_containers_audit_clean_too() {
        let v1 = Snapshot::new(
            "jpeg",
            "dac19",
            db(&[(10.0, 0.9), (20.0, 0.95), (5.0, 0.8)]),
        );
        let bytes = LineageSnapshot::genesis(v1, "export").to_bytes();
        let report = check_snapshot(&bytes, "t");
        assert!(report.is_empty(), "{report:?}");
        // A corrupted lineage block is a container finding, not a panic.
        let mut broken = bytes;
        let needle = b"publisher export";
        let at = broken
            .windows(needle.len())
            .position(|w| w == needle)
            .expect("lineage block is embedded");
        broken[at + 10] = b'!'; // "publisher !xport" — not a plain name
                                // Re-seal the checksum so only the lineage invariant is at fault.
        let sum = clr_serve::fnv1a64(&broken[clr_serve::HEADER_LEN..]);
        broken[24..32].copy_from_slice(&sum.to_le_bytes());
        let report = check_snapshot(&broken, "t");
        assert!(
            report.has_code(LintCode::SnapshotContainerInvalid),
            "{report:?}"
        );
    }

    #[test]
    fn truncated_container_is_clr060() {
        let bytes = snapshot_bytes();
        let report = check_snapshot(&bytes[..bytes.len() - 3], "t");
        assert!(report.has_code(LintCode::SnapshotContainerInvalid));
        assert_eq!(report.exit_code(), 1);
    }

    #[test]
    fn bad_magic_is_clr060() {
        let mut bytes = snapshot_bytes();
        bytes[0] ^= 0xff;
        assert!(check_snapshot(&bytes, "t").has_code(LintCode::SnapshotContainerInvalid));
    }

    #[test]
    fn payload_corruption_is_clr061() {
        let mut bytes = snapshot_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        let report = check_snapshot(&bytes, "t");
        assert!(report.has_code(LintCode::SnapshotChecksumMismatch));
        assert_eq!(report.exit_code(), 1);
    }

    #[test]
    fn unknown_descriptors_warn_clr064() {
        let bytes = Snapshot::new("mystery", "dac19", db(&[(1.0, 0.5)])).to_bytes();
        let report = check_snapshot(&bytes, "t");
        assert!(report.has_code(LintCode::SnapshotUnknownModel));
        // Warn-level only: the audit still passes.
        assert_eq!(report.exit_code(), 0);
    }

    #[test]
    fn tied_and_boundary_metrics_stay_equivalent() {
        // Heavy ties at the partition boundary stress the index walk.
        let bytes = Snapshot::new(
            "jpeg",
            "dac19",
            db(&[
                (10.0, 0.9),
                (10.0, 0.9),
                (10.0, 0.1),
                (0.0, 1.0),
                (30.0, 0.0),
            ]),
        )
        .to_bytes();
        assert!(!check_snapshot(&bytes, "t").has_code(LintCode::SnapshotIndexDivergence));
    }
}
