//! Lints for observability journals (`CLR05x`): the `*.obs.jsonl` files
//! exported by [`clr_obs::Obs::export`].
//!
//! A journal is valid when every line is a well-formed schema-versioned event
//! ([`LintCode::JournalSchemaInvalid`]), logical time is monotone — the
//! `seq` numbers strictly increase and decision cycles never regress
//! within one `sim_start`/`sim_end` bracket
//! ([`LintCode::JournalNonMonotoneSeq`]) — every decision record indexes
//! into the enclosing simulation's stored database
//! ([`LintCode::JournalDecisionIndexOutOfRange`]), and each line
//! re-encodes to its exact input bytes
//! ([`LintCode::JournalRoundTripMismatch`]).

use clr_obs::Event;

use crate::{Diagnostic, LintCode, Report};

/// Audits one journal document (deterministic or non-deterministic
/// section) line by line; `artifact` names the file in diagnostics.
pub fn check_journal(text: &str, artifact: &str) -> Report {
    let mut report = Report::new();
    let mut last_seq: Option<u64> = None;
    // `Some((points, last_cycle))` while inside a sim_start/sim_end
    // bracket of a database with `points` stored design points.
    let mut sim: Option<(usize, f64)> = None;
    for (i, line) in text.lines().enumerate() {
        let loc = format!("line {}", i + 1);
        if line.trim().is_empty() {
            continue;
        }
        let (seq, event) = match Event::from_json_line(line) {
            Ok(parsed) => parsed,
            Err(e) => {
                report.push(Diagnostic::new(
                    LintCode::JournalSchemaInvalid,
                    artifact,
                    loc,
                    format!("unparseable event: {e}"),
                ));
                continue;
            }
        };
        if event.to_json_line(seq) != line {
            report.push(Diagnostic::new(
                LintCode::JournalRoundTripMismatch,
                artifact,
                loc.clone(),
                "line does not re-encode to its own bytes".to_string(),
            ));
        }
        if let Some(prev) = last_seq {
            if seq <= prev {
                report.push(Diagnostic::new(
                    LintCode::JournalNonMonotoneSeq,
                    artifact,
                    loc.clone(),
                    format!("seq {seq} after {prev}"),
                ));
            }
        }
        last_seq = Some(seq);
        match &event {
            Event::SimStart { points, .. } => sim = Some((*points, f64::NEG_INFINITY)),
            Event::SimEnd { .. } => sim = None,
            Event::Decision {
                cycle, from, to, ..
            } => match &mut sim {
                Some((points, last_cycle)) => {
                    if *from >= *points || *to >= *points {
                        report.push(Diagnostic::new(
                            LintCode::JournalDecisionIndexOutOfRange,
                            artifact,
                            loc.clone(),
                            format!("points {from} -> {to} in a {points}-point database"),
                        ));
                    }
                    if *cycle < *last_cycle {
                        report.push(Diagnostic::new(
                            LintCode::JournalNonMonotoneSeq,
                            artifact,
                            loc,
                            format!("decision cycle {cycle} after {last_cycle}"),
                        ));
                    } else {
                        *last_cycle = *cycle;
                    }
                }
                None => report.push(Diagnostic::new(
                    LintCode::JournalSchemaInvalid,
                    artifact,
                    loc,
                    "decision record outside a sim_start/sim_end bracket".to_string(),
                )),
            },
            _ => {}
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal well-formed journal with one simulation bracket.
    fn sample() -> String {
        let events = [
            Event::Meta {
                label: "t".into(),
                schema: clr_obs::SCHEMA_VERSION,
            },
            Event::SimStart {
                label: "s".into(),
                points: 3,
                seed: 1,
            },
            Event::Decision {
                event: 1,
                cycle: 10.0,
                feasible: 2,
                from: 0,
                to: 2,
                drc: 1.5,
                score: Some(0.25),
                p_rc: Some(0.5),
                violated: false,
            },
            Event::Decision {
                event: 2,
                cycle: 25.0,
                feasible: 1,
                from: 2,
                to: 2,
                drc: 0.0,
                score: None,
                p_rc: None,
                violated: true,
            },
            Event::SimEnd {
                label: "s".into(),
                events: 2,
                reconfigurations: 1,
                violations: 1,
                total_drc: 1.5,
            },
        ];
        events
            .iter()
            .enumerate()
            .map(|(i, e)| e.to_json_line(i as u64))
            .collect::<Vec<_>>()
            .join("\n")
    }

    #[test]
    fn well_formed_journal_is_clean() {
        let report = check_journal(&sample(), "journal:test");
        assert!(report.is_empty(), "{}", report.render_human());
    }

    #[test]
    fn garbage_line_is_schema_invalid() {
        let text = format!("{}\nnot json", sample());
        let report = check_journal(&text, "t");
        assert!(report.has_code(LintCode::JournalSchemaInvalid));
        assert_eq!(report.exit_code(), 1);
    }

    #[test]
    fn reordered_seq_is_non_monotone() {
        let mut lines: Vec<String> = sample().lines().map(str::to_string).collect();
        lines.swap(3, 4);
        let report = check_journal(&lines.join("\n"), "t");
        assert!(report.has_code(LintCode::JournalNonMonotoneSeq));
    }

    #[test]
    fn regressing_decision_cycle_is_non_monotone() {
        let text = sample().replace("\"cycle\":25", "\"cycle\":5");
        let report = check_journal(&text, "t");
        assert!(report.has_code(LintCode::JournalNonMonotoneSeq));
    }

    #[test]
    fn out_of_range_decision_index_is_flagged() {
        let text = sample().replace("\"to\":2,\"drc\":1.5", "\"to\":7,\"drc\":1.5");
        let report = check_journal(&text, "t");
        assert!(report.has_code(LintCode::JournalDecisionIndexOutOfRange));
    }

    #[test]
    fn decision_outside_bracket_is_schema_invalid() {
        let lines: Vec<String> = sample()
            .lines()
            .filter(|l| !l.contains("sim_start"))
            .map(str::to_string)
            .collect();
        let report = check_journal(&lines.join("\n"), "t");
        assert!(report.has_code(LintCode::JournalSchemaInvalid));
    }

    #[test]
    fn hand_edited_line_fails_round_trip() {
        // Extra whitespace parses fine but does not re-encode identically.
        let text = sample().replace("\"points\":3", "\"points\": 3");
        let report = check_journal(&text, "t");
        assert!(report.has_code(LintCode::JournalRoundTripMismatch));
    }
}
