//! Runtime-policy lints (`CLR040`–`CLR041`).

use clr_dse::QosSpec;
use clr_runtime::{AuraAgent, DecisionInput, RuntimeContext, RuntimePolicy, UraPolicy};

use crate::{Diagnostic, LintCode, Report};

/// `CLR040`: the runtime agent's hyper-parameters must lie in their valid
/// ranges (`p_RC ∈ [0, 1]`, `γ ∈ [0, 1]`, `α ∈ (0, 1]`). The constructors
/// reject these too; the lint covers parameters loaded from configuration
/// before construction.
pub fn check_policy_params(p_rc: f64, gamma: f64, alpha: f64, name: &str) -> Report {
    let artifact = format!("policy:{name}");
    let mut report = Report::new();
    let mut bad = |param: &str, value: f64, range: &str| {
        report.push(Diagnostic::new(
            LintCode::PolicyParamOutOfRange,
            &artifact,
            param,
            format!("{param} = {value} is outside {range}"),
        ));
    };
    if !(p_rc.is_finite() && (0.0..=1.0).contains(&p_rc)) {
        bad("p_rc", p_rc, "[0, 1]");
    }
    if !(gamma.is_finite() && (0.0..=1.0).contains(&gamma)) {
        bad("gamma", gamma, "[0, 1]");
    }
    if !(alpha.is_finite() && alpha > 0.0 && alpha <= 1.0) {
        bad("alpha", alpha, "(0, 1]");
    }
    report
}

/// `CLR041`: an AuRA agent whose discount is zero must reproduce uRA
/// exactly (the paper's AuRA-subsumes-uRA property) — its learned state
/// values cannot influence a `γ = 0` decision rule. The check replays
/// every (current point, spec) pair through both policies; any divergence
/// means the agent artifact no longer honours its declared discount (e.g.
/// a tampered or mislabelled value table).
pub fn check_aura_subsumes_ura(
    ctx: &RuntimeContext<'_>,
    agent: &mut AuraAgent,
    specs: &[QosSpec],
    name: &str,
) -> Report {
    let artifact = format!("policy:{name}");
    let mut report = Report::new();
    let ura = match UraPolicy::new(agent.p_rc()) {
        Ok(p) => p,
        Err(bad) => {
            report.push(Diagnostic::new(
                LintCode::PolicyParamOutOfRange,
                &artifact,
                "p_rc",
                format!("p_rc = {bad} is outside [0, 1]"),
            ));
            return report;
        }
    };
    for (s, spec) in specs.iter().enumerate() {
        let feasible = ctx.feasible(spec);
        for current in 0..ctx.len() {
            let via_agent = agent
                .decide(&DecisionInput {
                    ctx,
                    current,
                    spec,
                    feasible: &feasible,
                })
                .choice;
            let via_ura = ura.select(ctx, current, spec);
            if via_agent != via_ura {
                report.push(Diagnostic::new(
                    LintCode::AuraUraDivergence,
                    &artifact,
                    format!("spec {s}, current point {current}"),
                    format!(
                        "agent (gamma = {}) selects {via_agent:?} where uRA at the same \
                         p_RC = {} selects {via_ura:?}",
                        agent.gamma(),
                        agent.p_rc(),
                    ),
                ));
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use clr_dse::{DesignPoint, DesignPointDb, PointOrigin};
    use clr_platform::Platform;
    use clr_reliability::FaultModel;
    use clr_runtime::Feedback;
    use clr_sched::{heft_mapping, Evaluator, Mapping};
    use clr_taskgraph::{jpeg_encoder, TaskGraph};

    fn fixture() -> (TaskGraph, Platform, DesignPointDb) {
        let graph = jpeg_encoder();
        let platform = Platform::dac19();
        let fm = FaultModel::default();
        let eval = Evaluator::new(&graph, &platform, fm);
        let mut db = DesignPointDb::new("fixture");
        for mapping in [
            heft_mapping(&graph, &platform, &fm).unwrap(),
            Mapping::first_fit(&graph, &platform).unwrap(),
        ] {
            let metrics = eval.evaluate(&mapping);
            db.push_if_new(DesignPoint::new(mapping, metrics, PointOrigin::Pareto));
        }
        (graph, platform, db)
    }

    #[test]
    fn valid_params_pass_clean() {
        assert!(check_policy_params(0.5, 0.9, 0.1, "agent").is_empty());
    }

    #[test]
    fn bad_params_fire_clr040() {
        let r = check_policy_params(1.5, -0.1, 0.0, "agent");
        let hits = r
            .diagnostics()
            .iter()
            .filter(|d| d.code == LintCode::PolicyParamOutOfRange)
            .count();
        assert_eq!(hits, 3);
        assert_eq!(r.exit_code(), 1);
    }

    #[test]
    fn zero_gamma_agent_subsumes_ura() {
        let (graph, platform, db) = fixture();
        let ctx = RuntimeContext::new(&graph, &platform, &db);
        let mut agent = AuraAgent::new(db.len(), 0.6, 0.0, 0.5).unwrap();
        let specs = [QosSpec::new(f64::INFINITY, 0.0), QosSpec::new(1e6, 0.5)];
        assert!(check_aura_subsumes_ura(&ctx, &mut agent, &specs, "agent").is_empty());
    }

    #[test]
    fn value_skewed_agent_fires_clr041() {
        let (graph, platform, db) = fixture();
        let ctx = RuntimeContext::new(&graph, &platform, &db);
        // Index of the better performer (norm_performance = 1) and the
        // worse one; switching toward `better` costs dRC, so a value table
        // trained (α = 1 pins V exactly) to penalise `better` can flip a
        // marginal uRA decision once γ is near 1.
        let (better, worse) = if ctx.norm_performance(0) > ctx.norm_performance(1) {
            (0usize, 1usize)
        } else {
            (1usize, 0usize)
        };
        let specs = [QosSpec::new(f64::INFINITY, 0.0)];
        let mut fired = false;
        for step in 1..100 {
            let p_rc = f64::from(step) * 0.01;
            let mut agent = AuraAgent::new(db.len(), p_rc, 0.99, 1.0).unwrap();
            // Episode (worse→better, better→worse, worse→better): with
            // α = 1, V(better) absorbs the negative reward of the
            // worse-ward transition while V(worse) stays positive.
            agent.observe(&Feedback {
                ctx: &ctx,
                from: worse,
                to: better,
            });
            agent.observe(&Feedback {
                ctx: &ctx,
                from: better,
                to: worse,
            });
            agent.observe(&Feedback {
                ctx: &ctx,
                from: worse,
                to: better,
            });
            agent.end_episode();
            let r = check_aura_subsumes_ura(&ctx, &mut agent, &specs, "agent");
            if r.has_code(LintCode::AuraUraDivergence) {
                assert_eq!(r.exit_code(), 1);
                fired = true;
                break;
            }
        }
        assert!(fired, "some p_rc must expose the skewed value table");
    }
}
