//! Task-graph lints (`CLR001`–`CLR006`).
//!
//! Graphs built through [`clr_taskgraph::TaskGraphBuilder`] are validated
//! at construction, so the checks operate on [`GraphFacts`] — a plain
//! extraction of the structural facts — which persisted or foreign
//! artifacts (and the corruption tests) can assemble directly.

use clr_taskgraph::TaskGraph;

use crate::{Diagnostic, LintCode, Report};

/// The structural facts of a task graph, decoupled from the validated
/// [`TaskGraph`] type so damaged artifacts remain expressible.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphFacts {
    /// Number of tasks.
    pub num_tasks: usize,
    /// Directed edges `(src, dst)` with their communication time and
    /// payload KiB.
    pub edges: Vec<(usize, usize, f64, f64)>,
    /// Per task: the nominal execution times of its implementations.
    pub impl_times: Vec<Vec<f64>>,
    /// The application period.
    pub period: f64,
}

impl GraphFacts {
    /// Extracts the facts of a validated graph.
    pub fn from_graph(graph: &TaskGraph) -> Self {
        Self {
            num_tasks: graph.num_tasks(),
            edges: graph
                .edges()
                .iter()
                .map(|e| {
                    (
                        e.src().index(),
                        e.dst().index(),
                        e.comm_time(),
                        e.data_kib(),
                    )
                })
                .collect(),
            impl_times: graph
                .task_ids()
                .map(|t| {
                    graph
                        .implementations(t)
                        .iter()
                        .map(clr_taskgraph::Implementation::nominal_time)
                        .collect()
                })
                .collect(),
            period: graph.period(),
        }
    }
}

/// Runs every graph lint over a validated [`TaskGraph`].
pub fn check_task_graph(graph: &TaskGraph) -> Report {
    check_graph_facts(&GraphFacts::from_graph(graph), graph.name())
}

/// Runs every graph lint over raw [`GraphFacts`]; `name` labels findings.
pub fn check_graph_facts(facts: &GraphFacts, name: &str) -> Report {
    let artifact = format!("graph:{name}");
    let mut report = Report::new();

    // CLR002: dangling edge endpoints.
    for (i, &(src, dst, _, _)) in facts.edges.iter().enumerate() {
        if src >= facts.num_tasks || dst >= facts.num_tasks {
            report.push(Diagnostic::new(
                LintCode::EdgeEndpointOutOfRange,
                &artifact,
                format!("edge {i}"),
                format!(
                    "edge {src} -> {dst} references a task outside 0..{}",
                    facts.num_tasks
                ),
            ));
        }
    }

    // CLR001: cycles (Kahn's algorithm over the in-range edges).
    let in_range = || {
        facts
            .edges
            .iter()
            .filter(|&&(s, d, _, _)| s < facts.num_tasks && d < facts.num_tasks)
    };
    let mut in_degree = vec![0usize; facts.num_tasks];
    for &(_, dst, _, _) in in_range() {
        in_degree[dst] += 1;
    }
    let mut queue: Vec<usize> = (0..facts.num_tasks)
        .filter(|&t| in_degree[t] == 0)
        .collect();
    let mut visited = 0usize;
    while let Some(t) = queue.pop() {
        visited += 1;
        for &(src, dst, _, _) in in_range() {
            if src == t {
                in_degree[dst] -= 1;
                if in_degree[dst] == 0 {
                    queue.push(dst);
                }
            }
        }
    }
    let is_dag = visited == facts.num_tasks;
    if !is_dag {
        let stuck: Vec<usize> = (0..facts.num_tasks).filter(|&t| in_degree[t] > 0).collect();
        report.push(Diagnostic::new(
            LintCode::GraphCycle,
            &artifact,
            format!("tasks {stuck:?}"),
            format!("{} task(s) participate in at least one cycle", stuck.len()),
        ));
    }

    // CLR003: empty implementation sets.
    for (t, impls) in facts.impl_times.iter().enumerate() {
        if impls.is_empty() {
            report.push(Diagnostic::new(
                LintCode::EmptyImplementationSet,
                &artifact,
                format!("task {t}"),
                "no implementation can execute this task".to_string(),
            ));
        }
    }

    // CLR004: negative or non-finite times/payloads.
    for (t, impls) in facts.impl_times.iter().enumerate() {
        for (i, &time) in impls.iter().enumerate() {
            if !time.is_finite() || time < 0.0 {
                report.push(Diagnostic::new(
                    LintCode::NegativeTiming,
                    &artifact,
                    format!("task {t} impl {i}"),
                    format!("nominal execution time {time} is not a valid duration"),
                ));
            }
        }
    }
    for (i, &(_, _, comm, kib)) in facts.edges.iter().enumerate() {
        if !comm.is_finite() || comm < 0.0 {
            report.push(Diagnostic::new(
                LintCode::NegativeTiming,
                &artifact,
                format!("edge {i}"),
                format!("communication time {comm} is not a valid duration"),
            ));
        }
        if !kib.is_finite() || kib < 0.0 {
            report.push(Diagnostic::new(
                LintCode::NegativeTiming,
                &artifact,
                format!("edge {i}"),
                format!("payload {kib} KiB is not a valid size"),
            ));
        }
    }

    // CLR005: the period must be positive.
    if !facts.period.is_finite() || facts.period <= 0.0 {
        report.push(Diagnostic::new(
            LintCode::NonPositivePeriod,
            &artifact,
            "period",
            format!("period {} is not a positive duration", facts.period),
        ));
    } else if is_dag && facts.impl_times.iter().all(|v| !v.is_empty()) {
        // CLR006: even with the fastest implementation everywhere and free
        // communication, the critical path must fit the period.
        let fastest: Vec<f64> = facts
            .impl_times
            .iter()
            .map(|v| v.iter().copied().fold(f64::INFINITY, f64::min))
            .collect();
        if fastest.iter().all(|t| t.is_finite() && *t >= 0.0) {
            let cp = critical_path(facts, &fastest);
            if cp > facts.period {
                report.push(Diagnostic::new(
                    LintCode::PeriodBelowCriticalPath,
                    &artifact,
                    "period",
                    format!(
                        "fastest zero-communication critical path {cp:.3} exceeds period {}",
                        facts.period
                    ),
                ));
            }
        }
    }

    report
}

/// Longest path through the DAG using `time[t]` per task and free
/// communication. Caller guarantees the facts form a DAG.
fn critical_path(facts: &GraphFacts, time: &[f64]) -> f64 {
    let n = facts.num_tasks;
    let mut finish = time.to_vec();
    // Relax edges until fixpoint; bounded by n iterations in a DAG.
    for _ in 0..n {
        let mut changed = false;
        for &(src, dst, _, _) in &facts.edges {
            if src < n && dst < n {
                let candidate = finish[src] + time[dst];
                if candidate > finish[dst] {
                    finish[dst] = candidate;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    finish.iter().copied().fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clr_platform::PeTypeId;
    use clr_taskgraph::{SwStack, TaskGraphBuilder};

    fn valid_facts() -> GraphFacts {
        GraphFacts {
            num_tasks: 3,
            edges: vec![(0, 1, 2.0, 4.0), (1, 2, 2.0, 4.0)],
            impl_times: vec![vec![10.0], vec![10.0, 8.0], vec![10.0]],
            period: 100.0,
        }
    }

    #[test]
    fn valid_facts_pass_clean() {
        assert!(check_graph_facts(&valid_facts(), "t").is_empty());
    }

    #[test]
    fn builder_graph_passes_clean() {
        let mut b = TaskGraphBuilder::new("ok", 100.0);
        b.task("a")
            .implementation(PeTypeId::new(0), SwStack::BareMetal, 10.0);
        b.task("b")
            .implementation(PeTypeId::new(0), SwStack::BareMetal, 10.0);
        b.edge(0.into(), 1.into(), 1.0, 4.0);
        let g = b.build().unwrap();
        assert!(check_task_graph(&g).is_empty());
    }

    #[test]
    fn cycle_fires_clr001() {
        let mut f = valid_facts();
        f.edges.push((2, 0, 1.0, 1.0));
        let r = check_graph_facts(&f, "t");
        assert!(r.has_code(LintCode::GraphCycle));
        assert_eq!(r.exit_code(), 1);
    }

    #[test]
    fn dangling_edge_fires_clr002() {
        let mut f = valid_facts();
        f.edges.push((1, 9, 1.0, 1.0));
        let r = check_graph_facts(&f, "t");
        assert!(r.has_code(LintCode::EdgeEndpointOutOfRange));
        // The remaining in-range edges still form a DAG — no bogus CLR001.
        assert!(!r.has_code(LintCode::GraphCycle));
    }

    #[test]
    fn empty_impl_set_fires_clr003() {
        let mut f = valid_facts();
        f.impl_times[1].clear();
        assert!(check_graph_facts(&f, "t").has_code(LintCode::EmptyImplementationSet));
    }

    #[test]
    fn negative_times_fire_clr004() {
        let mut f = valid_facts();
        f.impl_times[0][0] = -1.0;
        f.edges[0].2 = f64::NAN;
        let r = check_graph_facts(&f, "t");
        let hits = r
            .diagnostics()
            .iter()
            .filter(|d| d.code == LintCode::NegativeTiming)
            .count();
        assert_eq!(hits, 2);
    }

    #[test]
    fn bad_period_fires_clr005() {
        let mut f = valid_facts();
        f.period = 0.0;
        assert!(check_graph_facts(&f, "t").has_code(LintCode::NonPositivePeriod));
    }

    #[test]
    fn tight_period_fires_clr006_as_warning() {
        let mut f = valid_facts();
        f.period = 20.0; // fastest chain is 10 + 8 + 10 = 28
        let r = check_graph_facts(&f, "t");
        assert!(r.has_code(LintCode::PeriodBelowCriticalPath));
        assert_eq!(r.exit_code(), 0, "CLR006 is warn-level");
    }
}
