//! Platform lints (`CLR010`–`CLR014`) plus the cross-artifact
//! graph-on-platform support check (`CLR013`).
//!
//! [`PlatformBuilder`](clr_platform::PlatformBuilder) and
//! [`Interconnect::new`](clr_platform::Interconnect::new) already reject
//! most nonsense at construction, so — mirroring the graph module — the
//! checks run over [`PlatformFacts`], which persisted or foreign artifacts
//! (and the corruption tests) can assemble directly.

use clr_platform::Platform;
use clr_taskgraph::TaskGraph;

use crate::{Diagnostic, LintCode, Report};

/// The auditable facts of a platform, decoupled from the validated
/// [`Platform`] type so damaged artifacts remain expressible.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformFacts {
    /// Local memory per PE, KiB.
    pub pe_memory_kib: Vec<u32>,
    /// Bitstream size per PRR, KiB.
    pub prr_bitstream_kib: Vec<u32>,
    /// Interconnect bandwidth, KiB per time unit.
    pub bandwidth_kib: f64,
    /// Fixed per-transfer interconnect latency.
    pub base_latency: f64,
    /// Interconnect energy per KiB transferred.
    pub energy_per_kib: f64,
}

impl PlatformFacts {
    /// Extracts the facts of a validated platform.
    pub fn from_platform(platform: &Platform) -> Self {
        Self {
            pe_memory_kib: platform
                .pes()
                .iter()
                .map(clr_platform::Pe::local_memory_kib)
                .collect(),
            prr_bitstream_kib: platform
                .prrs()
                .iter()
                .map(clr_platform::Prr::bitstream_kib)
                .collect(),
            bandwidth_kib: platform.interconnect().bandwidth_kib(),
            base_latency: platform.interconnect().base_latency(),
            energy_per_kib: platform.interconnect().energy_per_kib(),
        }
    }
}

/// Runs every standalone platform lint over a validated [`Platform`].
pub fn check_platform(platform: &Platform, name: &str) -> Report {
    check_platform_facts(&PlatformFacts::from_platform(platform), name)
}

/// Runs every standalone platform lint over raw [`PlatformFacts`].
pub fn check_platform_facts(facts: &PlatformFacts, name: &str) -> Report {
    let artifact = format!("platform:{name}");
    let mut report = Report::new();

    // CLR010: a platform without PEs cannot host anything.
    if facts.pe_memory_kib.is_empty() {
        report.push(Diagnostic::new(
            LintCode::NoProcessingElements,
            &artifact,
            "pes",
            "platform declares zero processing elements".to_string(),
        ));
    }

    // CLR011: the interconnect cost model must be physically plausible.
    if !(facts.bandwidth_kib > 0.0 && facts.bandwidth_kib.is_finite()) {
        report.push(Diagnostic::new(
            LintCode::InterconnectInvalid,
            &artifact,
            "interconnect",
            format!("bandwidth {} KiB/s is not positive", facts.bandwidth_kib),
        ));
    }
    if !(facts.base_latency >= 0.0 && facts.base_latency.is_finite()) {
        report.push(Diagnostic::new(
            LintCode::InterconnectInvalid,
            &artifact,
            "interconnect",
            format!(
                "base latency {} is negative or non-finite",
                facts.base_latency
            ),
        ));
    }
    if !(facts.energy_per_kib >= 0.0 && facts.energy_per_kib.is_finite()) {
        report.push(Diagnostic::new(
            LintCode::InterconnectInvalid,
            &artifact,
            "interconnect",
            format!(
                "energy per KiB {} is negative or non-finite",
                facts.energy_per_kib
            ),
        ));
    }

    // CLR012: zero-memory PEs can host nothing with a footprint.
    for (i, &mem) in facts.pe_memory_kib.iter().enumerate() {
        if mem == 0 {
            report.push(Diagnostic::new(
                LintCode::ZeroMemoryPe,
                &artifact,
                format!("pe {i}"),
                "PE has zero local memory; any task binary will overflow it".to_string(),
            ));
        }
    }

    // CLR014: PRRs with a zero-size bitstream make reconfiguration free,
    // which silently distorts every dRC computation.
    for (i, &kib) in facts.prr_bitstream_kib.iter().enumerate() {
        if kib == 0 {
            report.push(Diagnostic::new(
                LintCode::PrrZeroBitstream,
                &artifact,
                format!("prr {i}"),
                "PRR bitstream size is zero, so reloads cost nothing".to_string(),
            ));
        }
    }

    report
}

/// Cross-artifact check (`CLR013`): if the graph offers accelerated
/// implementations, the platform should expose at least one PRR to host
/// them — otherwise the reconfiguration-aware parts of the flow silently
/// degenerate.
pub fn check_platform_supports(graph: &TaskGraph, platform: &Platform, name: &str) -> Report {
    let artifact = format!("platform:{name}");
    let mut report = Report::new();
    let accelerated: Vec<usize> = graph
        .task_ids()
        .filter(|&t| {
            graph
                .implementations(t)
                .iter()
                .any(clr_taskgraph::Implementation::accelerated)
        })
        .map(|t| t.index())
        .collect();
    if !accelerated.is_empty() && platform.num_prrs() == 0 {
        report.push(Diagnostic::new(
            LintCode::AcceleratedWithoutPrr,
            &artifact,
            format!("tasks {accelerated:?}"),
            format!(
                "graph {:?} offers accelerated implementations but the platform exposes \
                 no PRR to host them",
                graph.name(),
            ),
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use clr_platform::{Interconnect, PeKind, PeType};
    use clr_taskgraph::jpeg_encoder;

    #[test]
    fn dac19_preset_is_clean() {
        assert!(check_platform(&Platform::dac19(), "dac19").is_empty());
        assert!(check_platform_supports(&jpeg_encoder(), &Platform::dac19(), "dac19").is_empty());
    }

    #[test]
    fn tiny_preset_is_clean() {
        assert!(check_platform(&Platform::tiny(), "tiny").is_empty());
    }

    #[test]
    fn empty_pe_list_fires_clr010() {
        let f = PlatformFacts {
            pe_memory_kib: vec![],
            prr_bitstream_kib: vec![],
            bandwidth_kib: 64.0,
            base_latency: 0.1,
            energy_per_kib: 0.01,
        };
        let r = check_platform_facts(&f, "empty");
        assert!(r.has_code(LintCode::NoProcessingElements));
        assert_eq!(r.exit_code(), 1);
    }

    #[test]
    fn bad_interconnect_fires_clr011() {
        let mut f = PlatformFacts::from_platform(&Platform::dac19());
        f.bandwidth_kib = 0.0;
        f.base_latency = -1.0;
        f.energy_per_kib = f64::NAN;
        let r = check_platform_facts(&f, "bad-ic");
        let hits = r
            .diagnostics()
            .iter()
            .filter(|d| d.code == LintCode::InterconnectInvalid)
            .count();
        assert_eq!(hits, 3);
        assert_eq!(r.exit_code(), 1);
    }

    #[test]
    fn zero_memory_pe_fires_clr012_as_warning() {
        let p = Platform::builder()
            .pe_type(PeType::new("core", PeKind::GeneralPurpose))
            .pe(0.into(), 0)
            .interconnect(Interconnect::default())
            .build()
            .unwrap();
        let r = check_platform(&p, "zero-mem");
        assert!(r.has_code(LintCode::ZeroMemoryPe));
        assert_eq!(r.exit_code(), 0);
    }

    #[test]
    fn zero_bitstream_prr_fires_clr014() {
        let mut f = PlatformFacts::from_platform(&Platform::dac19());
        f.prr_bitstream_kib[1] = 0;
        assert!(check_platform_facts(&f, "free-prr").has_code(LintCode::PrrZeroBitstream));
    }

    #[test]
    fn accelerated_graph_on_prr_less_platform_fires_clr013() {
        // jpeg_encoder offers accelerated implementations; strip the fabric.
        let p = Platform::builder()
            .pe_type(PeType::new("core", PeKind::GeneralPurpose))
            .pes(2, 0.into(), 512)
            .interconnect(Interconnect::default())
            .build()
            .unwrap();
        let r = check_platform_supports(&jpeg_encoder(), &p, "no-fabric");
        assert!(r.has_code(LintCode::AcceleratedWithoutPrr));
        assert_eq!(r.exit_code(), 0, "CLR013 is warn-level");
    }
}
