//! `clr-verify`: a cross-layer model linter for the hybrid CLR design
//! flow.
//!
//! Every artifact the methodology produces — task graphs (built, generated
//! or TGFF-parsed), platform models, mappings, schedules, design-point
//! databases, runtime-agent policies, observability journals, serving
//! snapshots, QoS-event traces, fleet telemetry snapshots, replicated
//! snapshot stores and online-learner artifacts — is
//! audited against a registry of stable lint codes (`CLR001`–`CLR092`). Each [`LintCode`] carries a
//! severity ([`Severity::Deny`] fails an audit, [`Severity::Warn`] does
//! not) and a one-line fix hint; findings accumulate in a [`Report`]
//! renderable for humans or as JSON.
//!
//! The cheapest of these invariants are additionally enforced as
//! `debug_assert!`s at the mutation sites themselves (database insertion,
//! list scheduling, HEFT construction), so debug builds catch corruption
//! at the source while this crate audits artifacts end-to-end.
//!
//! # Examples
//!
//! ```
//! use clr_taskgraph::jpeg_encoder;
//! use clr_verify::{check_task_graph, GraphFacts, LintCode};
//!
//! // A library preset is clean.
//! assert!(check_task_graph(&jpeg_encoder()).is_empty());
//!
//! // A corrupted artifact is not.
//! let mut facts = GraphFacts::from_graph(&jpeg_encoder());
//! facts.edges.push((facts.num_tasks - 1, 0, 0.0, 0.0)); // close a cycle
//! let report = clr_verify::check_graph_facts(&facts, "tampered");
//! assert!(report.has_code(LintCode::GraphCycle));
//! assert_eq!(report.exit_code(), 1);
//! ```

mod chaos;
mod codes;
mod database;
mod diag;
mod graph;
mod journal;
mod learn;
mod mapping;
mod platform;
mod policy;
mod snapshot;
mod stats;
mod store;
mod trace;

pub use chaos::{check_campaign_consistency, check_campaign_csv, check_fault_plan};
pub use codes::LintCode;
pub use database::{check_database, check_database_standalone, check_drc_matrix};
pub use diag::{Diagnostic, Report, Severity};
pub use graph::{check_graph_facts, check_task_graph, GraphFacts};
pub use journal::check_journal;
pub use learn::{check_learn_checkpoint, check_shadow_journal};
pub use mapping::{check_mapping, check_schedule};
pub use platform::{check_platform, check_platform_facts, check_platform_supports, PlatformFacts};
pub use policy::{check_aura_subsumes_ura, check_policy_params};
pub use snapshot::check_snapshot;
pub use stats::check_stats;
pub use store::{check_changeset, check_store};
pub use trace::check_trace;
