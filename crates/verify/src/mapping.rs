//! Mapping and schedule lints (`CLR020`–`CLR025`).

use clr_platform::Platform;
use clr_sched::{validate_schedule, Mapping, Schedule, ScheduleViolation};
use clr_taskgraph::{TaskGraph, TaskId};

use crate::{Diagnostic, LintCode, Report};

/// Runs every mapping lint: gene-vector shape, PE/implementation index
/// validity, PE-type compatibility and per-PE memory capacity.
///
/// Unlike [`Mapping::validate`], which stops at the first error, this
/// reports every finding.
pub fn check_mapping(
    graph: &TaskGraph,
    platform: &Platform,
    mapping: &Mapping,
    name: &str,
) -> Report {
    let artifact = format!("mapping:{name}");
    let mut report = Report::new();

    // CLR020: shape and index validity.
    if mapping.len() != graph.num_tasks() {
        report.push(Diagnostic::new(
            LintCode::MappingShapeMismatch,
            &artifact,
            "genes",
            format!(
                "mapping carries {} gene(s) for a graph of {} task(s)",
                mapping.len(),
                graph.num_tasks()
            ),
        ));
        // Per-gene checks below would mis-attribute tasks; stop here.
        return report;
    }
    let mut indices_valid = true;
    for (t, g) in mapping.genes().iter().enumerate() {
        if g.pe.index() >= platform.num_pes() {
            indices_valid = false;
            report.push(Diagnostic::new(
                LintCode::MappingShapeMismatch,
                &artifact,
                format!("task {t}"),
                format!(
                    "gene targets PE {} but the platform has {}",
                    g.pe.index(),
                    platform.num_pes()
                ),
            ));
        }
        let impls = graph.implementations(TaskId::new(t));
        if g.impl_id.index() >= impls.len() {
            indices_valid = false;
            report.push(Diagnostic::new(
                LintCode::MappingShapeMismatch,
                &artifact,
                format!("task {t}"),
                format!(
                    "gene selects implementation {} but the task offers {}",
                    g.impl_id.index(),
                    impls.len()
                ),
            ));
        } else if g.pe.index() < platform.num_pes() {
            // CLR021: the chosen implementation must target the PE's type.
            let im = &impls[g.impl_id.index()];
            if platform.pe(g.pe).type_id() != im.pe_type() {
                report.push(Diagnostic::new(
                    LintCode::MappingIncompatiblePeType,
                    &artifact,
                    format!("task {t}"),
                    format!(
                        "implementation {} targets PE type {} but PE {} is of type {}",
                        g.impl_id.index(),
                        im.pe_type().index(),
                        g.pe.index(),
                        platform.pe(g.pe).type_id().index()
                    ),
                ));
            }
        }
    }

    // CLR022: resident binaries must fit each PE's local memory. Only
    // meaningful once all indices resolve.
    if indices_valid {
        let footprint = mapping.memory_footprint(graph, platform);
        for (pe, &used) in footprint.iter().enumerate() {
            let capacity = u64::from(platform.pe(clr_platform::PeId::new(pe)).local_memory_kib());
            if used > capacity {
                report.push(Diagnostic::new(
                    LintCode::MemoryCapacityExceeded,
                    &artifact,
                    format!("pe {pe}"),
                    format!("resident binaries need {used} KiB but PE offers {capacity} KiB"),
                ));
            }
        }
    }

    report
}

/// Runs every schedule lint (`CLR023`–`CLR025`) by translating
/// [`validate_schedule`] violations into diagnostics.
pub fn check_schedule(
    graph: &TaskGraph,
    mapping: &Mapping,
    schedule: &Schedule,
    name: &str,
) -> Report {
    let artifact = format!("schedule:{name}");
    let mut report = Report::new();
    for v in validate_schedule(graph, mapping, schedule) {
        let (code, location) = match &v {
            ScheduleViolation::PrecedenceBreach { src, dst } => (
                LintCode::SchedulePrecedenceBreach,
                format!("edge {src} -> {dst}"),
            ),
            ScheduleViolation::PeOverlap { pe, .. } => {
                (LintCode::SchedulePeOverlap, format!("pe {pe}"))
            }
            ScheduleViolation::NegativeDuration { task } => {
                (LintCode::ScheduleNegativeDuration, format!("task {task}"))
            }
        };
        report.push(Diagnostic::new(code, &artifact, location, v.to_string()));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use clr_reliability::FaultModel;
    use clr_sched::{heft_mapping, Evaluator, ScheduleEntry};
    use clr_taskgraph::jpeg_encoder;

    fn setup() -> (TaskGraph, Platform, Mapping) {
        let graph = jpeg_encoder();
        let platform = Platform::dac19();
        let mapping = heft_mapping(&graph, &platform, &FaultModel::default()).unwrap();
        (graph, platform, mapping)
    }

    #[test]
    fn heft_artifacts_pass_clean() {
        let (graph, platform, mapping) = setup();
        assert!(check_mapping(&graph, &platform, &mapping, "heft").is_empty());
        let eval = Evaluator::new(&graph, &platform, FaultModel::default());
        let (_, schedule) = eval.evaluate_with_schedule(&mapping);
        assert!(check_schedule(&graph, &mapping, &schedule, "heft").is_empty());
    }

    #[test]
    fn truncated_mapping_fires_clr020() {
        let (graph, platform, mapping) = setup();
        let mut genes = mapping.genes().to_vec();
        genes.pop();
        let r = check_mapping(&graph, &platform, &Mapping::new(genes), "short");
        assert!(r.has_code(LintCode::MappingShapeMismatch));
        assert_eq!(r.exit_code(), 1);
    }

    #[test]
    fn foreign_pe_index_fires_clr020() {
        let (graph, platform, mapping) = setup();
        let mut genes = mapping.genes().to_vec();
        genes[0].pe = clr_platform::PeId::new(platform.num_pes() + 3);
        let r = check_mapping(&graph, &platform, &Mapping::new(genes), "alien-pe");
        assert!(r.has_code(LintCode::MappingShapeMismatch));
    }

    #[test]
    fn incompatible_pe_type_fires_clr021() {
        let (graph, platform, mapping) = setup();
        let mut genes = mapping.genes().to_vec();
        // Find a gene whose implementation does not target some other PE's
        // type, then retarget it there.
        let mut corrupted = false;
        'outer: for (t, g) in mapping.genes().iter().enumerate() {
            let im = &graph.implementations(TaskId::new(t))[g.impl_id.index()];
            for pe in platform.pes() {
                if pe.type_id() != im.pe_type() {
                    genes[t].pe = pe.id();
                    corrupted = true;
                    break 'outer;
                }
            }
        }
        assert!(corrupted, "dac19 is heterogeneous; a mismatch must exist");
        let r = check_mapping(&graph, &platform, &Mapping::new(genes), "wrong-type");
        assert!(r.has_code(LintCode::MappingIncompatiblePeType));
        assert_eq!(r.exit_code(), 1);
    }

    #[test]
    fn schedule_corruptions_fire_clr023_024_025() {
        let (graph, platform, mapping) = setup();
        let eval = Evaluator::new(&graph, &platform, FaultModel::default());
        let (_, schedule) = eval.evaluate_with_schedule(&mapping);

        // CLR023: pull one consumer's start before its producer finishes.
        let mut entries: Vec<ScheduleEntry> = schedule.entries().to_vec();
        let edge = &graph.edges()[0];
        entries[edge.dst().index()].start = 0.0;
        let r = check_schedule(&graph, &mapping, &Schedule::from_entries(entries), "tamper");
        assert!(r.has_code(LintCode::SchedulePrecedenceBreach));
        assert_eq!(r.exit_code(), 1);

        // CLR024: double-book two tasks on one PE over the same interval.
        let mut entries: Vec<ScheduleEntry> = schedule.entries().to_vec();
        let pe0 = entries[0].pe;
        let (s0, e0) = (entries[0].start, entries[0].end);
        let other = (1..entries.len())
            .find(|&i| graph.in_edges(TaskId::new(i)).next().is_none() && i != 0)
            .unwrap_or(1);
        entries[other].pe = pe0;
        entries[other].start = s0;
        entries[other].end = e0.max(s0 + 1.0);
        let r = check_schedule(&graph, &mapping, &Schedule::from_entries(entries), "tamper");
        assert!(r.has_code(LintCode::SchedulePeOverlap));

        // CLR025: a task that ends before it starts.
        let mut entries: Vec<ScheduleEntry> = schedule.entries().to_vec();
        entries[0].end = entries[0].start - 5.0;
        let r = check_schedule(&graph, &mapping, &Schedule::from_entries(entries), "tamper");
        assert!(r.has_code(LintCode::ScheduleNegativeDuration));
    }
}
