//! `clr-verify` — audit cross-layer design artifacts against the lint
//! registry and exit nonzero when a deny-level invariant is broken.
//!
//! ```text
//! clr-verify [--json] all             end-to-end audit of the bundled artifacts
//! clr-verify [--json] tgff <FILE>..   parse and lint TGFF task graphs
//! clr-verify [--json] db <FILE>..     decode and lint design-point databases
//! clr-verify [--json] journal <FILE>.. lint observability journals (*.obs.jsonl)
//! clr-verify [--json] snapshot <FILE>.. lint serving snapshots (*.snap)
//! clr-verify [--json] plan <FILE>..   lint fault plans (clr-fault-plan v1)
//! clr-verify [--json] campaign <CSV> [JOURNAL]
//!                                     lint a campaign CSV, cross-checking
//!                                     quarantine counts against its journal
//! clr-verify [--json] trace <FILE> <NAME,NAME,..>
//!                                     lint a QoS-event trace against a
//!                                     fleet's tenant names (CLR065)
//! clr-verify [--json] stats <FILE>..  lint fleet telemetry snapshots
//!                                     (CLR066–CLR068)
//! clr-verify [--json] learn <FILE>..  lint online-learner artifacts
//!                                     (CLR090–CLR092): CLRLRN1
//!                                     checkpoints, or journals holding
//!                                     shadow/promote events
//! clr-verify [--json] store <LOG> [CHANGESET]
//!                                     lint a clr-store replica log —
//!                                     lineage, stamps, merge laws, GC
//!                                     reachability (CLR080–CLR085) —
//!                                     and optionally a shipped
//!                                     changeset against it (CLR082)
//! clr-verify list                     print the lint registry
//! ```
//!
//! Exit codes: `0` clean or warn-only, `1` at least one deny-level
//! finding, `2` usage / IO / parse error.

use std::process::ExitCode;

use clr_core::{ScenarioKind, ScenarioSuite};
use clr_dse::{explore_based, DesignPointDb, DseConfig, ExplorationMode, QosSpec, RedConfig};
use clr_moea::GaParams;
use clr_platform::Platform;
use clr_reliability::{ConfigSpace, FaultModel};
use clr_runtime::{AuraAgent, RuntimeContext};
use clr_sched::heft_mapping;
use clr_sched::Evaluator;
use clr_serve::Trace;
use clr_store::{Changeset, Store};
use clr_taskgraph::{
    fork_join_graph, jpeg_encoder, parse_tgff, TgffConfig, TgffGenerator, TgffParseOptions,
};
use clr_verify::{
    check_aura_subsumes_ura, check_campaign_consistency, check_campaign_csv, check_changeset,
    check_database, check_database_standalone, check_drc_matrix, check_fault_plan, check_journal,
    check_learn_checkpoint, check_mapping, check_platform, check_platform_supports,
    check_policy_params, check_schedule, check_shadow_journal, check_snapshot, check_stats,
    check_store, check_task_graph, check_trace, Diagnostic, LintCode, Report,
};

const USAGE: &str = "usage: clr-verify [--json] <all | tgff FILE.. | db FILE.. | journal FILE.. \
| snapshot FILE.. | plan FILE.. | campaign CSV [JOURNAL] | trace FILE NAME,NAME,.. \
| stats FILE.. | learn FILE.. | store LOG [CHANGESET] | list>";

fn main() -> ExitCode {
    let mut json = false;
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    args.retain(|a| {
        if a == "--json" {
            json = true;
            false
        } else {
            true
        }
    });
    let Some(command) = args.first().cloned() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let operands = &args[1..];

    let report = match command.as_str() {
        "list" => {
            print_registry();
            return ExitCode::SUCCESS;
        }
        "all" => {
            if !operands.is_empty() {
                eprintln!("{USAGE}");
                return ExitCode::from(2);
            }
            audit_all()
        }
        "tgff" => match audit_files(operands, audit_tgff_file) {
            Ok(r) => r,
            Err(code) => return code,
        },
        "db" => match audit_files(operands, audit_db_file) {
            Ok(r) => r,
            Err(code) => return code,
        },
        "journal" => match audit_files(operands, audit_journal_file) {
            Ok(r) => r,
            Err(code) => return code,
        },
        "snapshot" => match audit_binary_files(operands, audit_snapshot_file) {
            Ok(r) => r,
            Err(code) => return code,
        },
        "plan" => match audit_files(operands, audit_plan_file) {
            Ok(r) => r,
            Err(code) => return code,
        },
        "campaign" => match audit_campaign(operands) {
            Ok(r) => r,
            Err(code) => return code,
        },
        "trace" => match audit_trace(operands) {
            Ok(r) => r,
            Err(code) => return code,
        },
        "stats" => match audit_files(operands, audit_stats_file) {
            Ok(r) => r,
            Err(code) => return code,
        },
        "learn" => match audit_binary_files(operands, audit_learn_file) {
            Ok(r) => r,
            Err(code) => return code,
        },
        "store" => match audit_store(operands) {
            Ok(r) => r,
            Err(code) => return code,
        },
        other => {
            eprintln!("clr-verify: unknown command {other:?}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    if json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_human());
    }
    ExitCode::from(u8::try_from(report.exit_code()).unwrap_or(1))
}

/// Prints the full lint registry as an aligned table: the CLR0xx
/// artifact lints owned by this crate, then the CLR1xx source lints
/// owned by `clr-audit`. A cross-crate test keeps the two code ranges
/// disjoint, so the merged listing can never show a collision.
fn print_registry() {
    println!("{:<8} {:<5} description", "code", "level");
    println!("— CLR0xx artifact lints (clr-verify) —");
    for lint in LintCode::ALL {
        println!(
            "{:<8} {:<5} {}",
            lint.code(),
            lint.severity().to_string(),
            lint.description()
        );
        println!("{:<14} fix: {}", "", lint.fix_hint());
    }
    println!("— CLR1xx source lints (clr-audit) —");
    for lint in clr_audit::AuditCode::ALL {
        println!(
            "{:<8} {:<5} {}",
            lint.code(),
            lint.severity().to_string(),
            lint.description()
        );
        println!("{:<14} fix: {}", "", lint.fix_hint());
    }
}

/// Runs `audit` over each operand file, merging reports; IO errors are
/// fatal (exit 2).
fn audit_files(
    files: &[String],
    audit: impl Fn(&str, &str) -> Result<Report, String>,
) -> Result<Report, ExitCode> {
    if files.is_empty() {
        eprintln!("{USAGE}");
        return Err(ExitCode::from(2));
    }
    let mut report = Report::new();
    for path in files {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("clr-verify: cannot read {path}: {e}");
                return Err(ExitCode::from(2));
            }
        };
        match audit(&text, path) {
            Ok(r) => report.merge(r),
            Err(e) => {
                eprintln!("clr-verify: {path}: {e}");
                return Err(ExitCode::from(2));
            }
        }
    }
    Ok(report)
}

/// Like [`audit_files`], for binary artifacts.
fn audit_binary_files(
    files: &[String],
    audit: impl Fn(&[u8], &str) -> Report,
) -> Result<Report, ExitCode> {
    if files.is_empty() {
        eprintln!("{USAGE}");
        return Err(ExitCode::from(2));
    }
    let mut report = Report::new();
    for path in files {
        match std::fs::read(path) {
            Ok(bytes) => report.merge(audit(&bytes, path)),
            Err(e) => {
                eprintln!("clr-verify: cannot read {path}: {e}");
                return Err(ExitCode::from(2));
            }
        }
    }
    Ok(report)
}

/// Parses one TGFF document and lints every graph-level invariant.
fn audit_tgff_file(text: &str, path: &str) -> Result<Report, String> {
    let graph = parse_tgff(text, &TgffParseOptions::default())
        .map_err(|e| format!("TGFF parse error: {e}"))?;
    let mut report = check_task_graph(&graph);
    report.merge(check_platform_supports(&graph, &Platform::dac19(), "dac19"));
    eprintln!(
        "clr-verify: {path}: graph {:?} ({} tasks, {} edges)",
        graph.name(),
        graph.num_tasks(),
        graph.num_edges()
    );
    Ok(report)
}

/// Decodes one design-point database and runs the context-free lints.
fn audit_db_file(text: &str, path: &str) -> Result<Report, String> {
    let db = DesignPointDb::from_text(text).map_err(|e| format!("database decode error: {e}"))?;
    eprintln!(
        "clr-verify: {path}: database {:?} ({} points)",
        db.name(),
        db.len()
    );
    Ok(check_database_standalone(
        &db,
        ExplorationMode::Full,
        RedConfig::default().tolerance,
    ))
}

/// Lints one fault-plan document (CLR070).
fn audit_plan_file(text: &str, path: &str) -> Result<Report, String> {
    eprintln!("clr-verify: {path}: fault plan");
    Ok(check_fault_plan(text, path))
}

/// Lints a campaign CSV (CLR071) and, when a journal operand is given,
/// the quarantine-consistency law between the two (CLR072).
fn audit_campaign(operands: &[String]) -> Result<Report, ExitCode> {
    let (csv_path, journal_path) = match operands {
        [csv] => (csv, None),
        [csv, journal] => (csv, Some(journal)),
        _ => {
            eprintln!("{USAGE}");
            return Err(ExitCode::from(2));
        }
    };
    let read = |path: &String| {
        std::fs::read_to_string(path).map_err(|e| {
            eprintln!("clr-verify: cannot read {path}: {e}");
            ExitCode::from(2)
        })
    };
    let csv = read(csv_path)?;
    eprintln!(
        "clr-verify: {csv_path}: campaign CSV ({} lines)",
        csv.lines().count()
    );
    match journal_path {
        None => Ok(check_campaign_csv(&csv, csv_path)),
        Some(journal_path) => {
            let journal = read(journal_path)?;
            let mut report = check_campaign_consistency(&csv, &journal, csv_path);
            report.merge(check_journal(&journal, journal_path));
            Ok(report)
        }
    }
}

/// Lints a QoS-event trace against a comma-separated fleet of tenant
/// names (CLR065: every event must address a seated tenant).
fn audit_trace(operands: &[String]) -> Result<Report, ExitCode> {
    let [trace_path, fleet_spec] = operands else {
        eprintln!("{USAGE}");
        return Err(ExitCode::from(2));
    };
    let fleet: Vec<&str> = fleet_spec.split(',').filter(|s| !s.is_empty()).collect();
    if fleet.is_empty() {
        eprintln!("clr-verify: trace needs a non-empty NAME,NAME,.. fleet list");
        return Err(ExitCode::from(2));
    }
    let text = match std::fs::read_to_string(trace_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("clr-verify: cannot read {trace_path}: {e}");
            return Err(ExitCode::from(2));
        }
    };
    let trace = match Trace::from_jsonl(&text) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("clr-verify: {trace_path}: {e}");
            return Err(ExitCode::from(2));
        }
    };
    eprintln!(
        "clr-verify: {trace_path}: trace ({} events, fleet of {})",
        trace.len(),
        fleet.len()
    );
    Ok(check_trace(&trace, &fleet, trace_path))
}

/// Lints a clr-store replica log (CLR080–CLR085) and, when a changeset
/// operand is given, the shipped changeset against the generation it
/// claims as its source (CLR082).
fn audit_store(operands: &[String]) -> Result<Report, ExitCode> {
    let (log_path, cs_path) = match operands {
        [log] => (log, None),
        [log, cs] => (log, Some(cs)),
        _ => {
            eprintln!("{USAGE}");
            return Err(ExitCode::from(2));
        }
    };
    // `Store::open` treats a missing log as empty (the backend creates
    // it on first publish); for an audit that would silently pass, so
    // require the path to exist like the other file subcommands.
    if !std::path::Path::new(log_path).exists() {
        eprintln!("clr-verify: cannot read {log_path}: No such file or directory (os error 2)");
        return Err(ExitCode::from(2));
    }
    let store = match Store::open(log_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("clr-verify: cannot open store {log_path}: {e}");
            return Err(ExitCode::from(2));
        }
    };
    let generations = match store.generations() {
        Ok(g) => g,
        Err(e) => {
            eprintln!("clr-verify: cannot read store {log_path}: {e}");
            return Err(ExitCode::from(2));
        }
    };
    let mut report = Report::new();
    let mut snapshots = Vec::new();
    for generation in generations {
        match store.get(generation) {
            Ok(snapshot) => snapshots.push(snapshot),
            // A held generation that no longer decodes is a damaged
            // container, not a usage error — same code the snapshot
            // audit assigns.
            Err(e) => report.push(Diagnostic::new(
                LintCode::SnapshotContainerInvalid,
                format!("store:{log_path}"),
                format!("generation {generation}"),
                format!("stored container does not decode: {e}"),
            )),
        }
    }
    eprintln!(
        "clr-verify: {log_path}: store ({} generations)",
        snapshots.len()
    );
    report.merge(check_store(&snapshots, log_path));
    if let Some(cs_path) = cs_path {
        let text = match std::fs::read_to_string(cs_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("clr-verify: cannot read {cs_path}: {e}");
                return Err(ExitCode::from(2));
            }
        };
        let source = Changeset::from_text(&text).ok().and_then(|cs| {
            snapshots
                .iter()
                .find(|s| s.lineage().generation == cs.from_generation)
        });
        eprintln!("clr-verify: {cs_path}: changeset ({} bytes)", text.len());
        report.merge(check_changeset(&text, source, cs_path));
    }
    Ok(report)
}

/// Lints one fleet telemetry snapshot (CLR066–CLR068: schema + round
/// trip, window arithmetic, histogram population).
fn audit_stats_file(text: &str, path: &str) -> Result<Report, String> {
    eprintln!(
        "clr-verify: {path}: telemetry snapshot ({} bytes)",
        text.len()
    );
    Ok(check_stats(text, path))
}

/// Lints one online-learner artifact (CLR090–CLR092). The operand is
/// sniffed by magic: a `CLRLRN1` file audits as a checkpoint, anything
/// else as journal text whose shadow/promote events are checked.
fn audit_learn_file(bytes: &[u8], path: &str) -> Report {
    if clr_learn::is_learn_checkpoint(bytes) {
        eprintln!(
            "clr-verify: {path}: learner checkpoint ({} bytes)",
            bytes.len()
        );
        return check_learn_checkpoint(bytes, path);
    }
    let text = String::from_utf8_lossy(bytes);
    eprintln!(
        "clr-verify: {path}: journal ({} lines)",
        text.lines().filter(|l| !l.trim().is_empty()).count()
    );
    check_shadow_journal(&text, path)
}

/// Lints one observability journal (either section; see
/// [`check_journal`]).
fn audit_journal_file(text: &str, path: &str) -> Result<Report, String> {
    eprintln!(
        "clr-verify: {path}: journal ({} lines)",
        text.lines().filter(|l| !l.trim().is_empty()).count()
    );
    Ok(check_journal(text, path))
}

/// Lints one serving snapshot: container structure, checksum, round
/// trip, model resolution and index ≡ linear-scan equivalence.
fn audit_snapshot_file(bytes: &[u8], path: &str) -> Report {
    eprintln!("clr-verify: {path}: snapshot ({} bytes)", bytes.len());
    check_snapshot(bytes, path)
}

/// End-to-end audit of the bundled artifacts: presets, TGFF generation,
/// HEFT mapping/scheduling, a small BaseD exploration with its dRC
/// matrix, the runtime policies and every scenario-suite instance.
fn audit_all() -> Report {
    let mut report = Report::new();
    let fm = FaultModel::default();
    let dac19 = Platform::dac19();

    // Platforms.
    report.merge(check_platform(&dac19, "dac19"));
    report.merge(check_platform(&Platform::tiny(), "tiny"));

    // Graphs: the JPEG preset plus generated TGFF and fork-join graphs.
    let jpeg = jpeg_encoder();
    report.merge(check_task_graph(&jpeg));
    report.merge(check_platform_supports(&jpeg, &dac19, "dac19"));
    for seed in 0..2u64 {
        let g = TgffGenerator::new(TgffConfig::with_tasks(20)).generate(seed);
        report.merge(check_task_graph(&g));
        report.merge(check_platform_supports(&g, &dac19, "dac19"));
        let fj = fork_join_graph(&TgffConfig::with_tasks(16), seed);
        report.merge(check_task_graph(&fj));
    }

    // Mapping + schedule via HEFT on the JPEG preset.
    match heft_mapping(&jpeg, &dac19, &fm) {
        Ok(mapping) => {
            report.merge(check_mapping(&jpeg, &dac19, &mapping, "heft-jpeg"));
            let eval = Evaluator::new(&jpeg, &dac19, fm);
            let (_, schedule) = eval.evaluate_with_schedule(&mapping);
            report.merge(check_schedule(&jpeg, &mapping, &schedule, "heft-jpeg"));
        }
        Err(e) => eprintln!("clr-verify: heft on jpeg/dac19 failed: {e:?}"),
    }

    // A small BaseD exploration, its codec round-trip and dRC matrix.
    let dse = DseConfig {
        ga: GaParams::small(),
        mode: ExplorationMode::Full,
        reference: None,
        max_points: None,
    };
    let db = explore_based(&jpeg, &dac19, fm, ConfigSpace::fine(), &dse, 7);
    report.merge(check_database(
        &jpeg,
        &dac19,
        &fm,
        dse.mode,
        &db,
        RedConfig::default().tolerance,
    ));
    let ctx = RuntimeContext::new(&jpeg, &dac19, &db);
    let matrix: Vec<Vec<f64>> = (0..db.len())
        .map(|i| (0..db.len()).map(|j| ctx.drc(i, j)).collect())
        .collect();
    report.merge(check_drc_matrix(&jpeg, &dac19, &db, &matrix));

    // Runtime policies: parameter ranges and the AuRA-subsumes-uRA law.
    report.merge(check_policy_params(0.5, 0.9, 0.1, "defaults"));
    match AuraAgent::new(db.len(), 0.5, 0.0, 0.5) {
        Ok(mut agent) => {
            let specs = [QosSpec::new(f64::INFINITY, 0.0), QosSpec::new(1e6, 0.5)];
            report.merge(check_aura_subsumes_ura(
                &ctx,
                &mut agent,
                &specs,
                "aura-gamma0",
            ));
        }
        Err(bad) => eprintln!("clr-verify: cannot build aura agent: bad parameter {bad}"),
    }

    // Scenario suite: every degraded platform must still lint clean and
    // keep supporting the application.
    let suite = ScenarioSuite::new(&dac19, fm)
        .with_pe_failures()
        .with_lambda_shifts(&[2e-6, 5e-5]);
    for instance in suite.instances() {
        let label = instance.kind().to_string();
        report.merge(check_platform(instance.platform(), &label));
        if matches!(instance.kind(), ScenarioKind::PeFailure { .. }) && !instance.supports(&jpeg) {
            eprintln!("clr-verify: scenario {label} no longer supports the jpeg graph");
        }
        report.merge(check_platform_supports(&jpeg, instance.platform(), &label));
    }

    report
}
