//! The lint registry: every check `clr-verify` performs has a stable
//! `CLR0xx` code, a fixed severity and a one-line fix hint.
//!
//! Codes are grouped by pipeline stage: `CLR00x` task graphs, `CLR01x`
//! platforms, `CLR02x` mappings/schedules, `CLR03x` design-point
//! databases, `CLR04x` run-time policies, `CLR05x` observability
//! journals, `CLR06x` serving snapshots, `CLR07x` chaos campaigns,
//! `CLR08x` replicated snapshot stores, `CLR09x` online learners.
//! Codes are append-only — a retired lint's number is never reused.

use crate::Severity;

/// A registered lint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum LintCode {
    // ----- task graphs (CLR00x) -----------------------------------------
    /// CLR001: the task graph contains a dependency cycle.
    GraphCycle,
    /// CLR002: an edge endpoint indexes a task that does not exist.
    EdgeEndpointOutOfRange,
    /// CLR003: a task has an empty implementation set.
    EmptyImplementationSet,
    /// CLR004: a nominal execution time, communication time or payload is
    /// negative or non-finite.
    NegativeTiming,
    /// CLR005: the graph period is non-positive or non-finite.
    NonPositivePeriod,
    /// CLR006: the period is shorter than the zero-communication critical
    /// path of the fastest implementations — no mapping can meet it.
    PeriodBelowCriticalPath,

    // ----- platforms (CLR01x) -------------------------------------------
    /// CLR010: the platform has no processing elements.
    NoProcessingElements,
    /// CLR011: the interconnect model is unusable (non-positive or
    /// non-finite bandwidth, negative latency or energy).
    InterconnectInvalid,
    /// CLR012: a PE advertises zero local memory — nothing can be mapped
    /// onto it.
    ZeroMemoryPe,
    /// CLR013: the application carries accelerated implementations but the
    /// platform has no partially reconfigurable regions to host them.
    AcceleratedWithoutPrr,
    /// CLR014: a PRR has a zero-size bit-stream, making reconfiguration of
    /// that region free — almost certainly a modelling mistake.
    PrrZeroBitstream,

    // ----- mappings & schedules (CLR02x) --------------------------------
    /// CLR020: the mapping's shape does not fit the graph/platform (gene
    /// count, unknown PE, unknown implementation).
    MappingShapeMismatch,
    /// CLR021: a task is bound to a PE whose type cannot execute the
    /// chosen implementation.
    MappingIncompatiblePeType,
    /// CLR022: the binaries resident on some PE exceed its local memory.
    MemoryCapacityExceeded,
    /// CLR023: a task starts before a predecessor's data can arrive.
    SchedulePrecedenceBreach,
    /// CLR024: two tasks overlap on one PE (double booking).
    SchedulePeOverlap,
    /// CLR025: a schedule entry ends before it starts.
    ScheduleNegativeDuration,

    // ----- design-point databases (CLR03x) ------------------------------
    /// CLR030: the database holds no points — the run-time layer cannot
    /// adapt over it.
    EmptyDatabase,
    /// CLR031: a Pareto-origin point is dominated by another stored point
    /// in the exploration objective space.
    DominatedParetoPoint,
    /// CLR032: a reconfiguration-aware extra degrades beyond the tolerance
    /// band of every Pareto point it could have been seeded from.
    RedDegradationExceeded,
    /// CLR033: two stored points have numerically identical metrics.
    DuplicatePoints,
    /// CLR034: a stored metric is out of range (non-finite or negative
    /// time/energy, reliability outside `[0, 1]`).
    MetricOutOfRange,
    /// CLR035: the database does not survive a text-codec round trip.
    RoundTripMismatch,
    /// CLR036: stored metrics disagree with re-evaluating the stored
    /// mapping (stale or tampered artifact).
    StaleMetrics,
    /// CLR037: a persisted `dRC` matrix entry disagrees with the
    /// recomputed reconfiguration distance.
    DrcMatrixMismatch,

    // ----- run-time policies (CLR04x) -----------------------------------
    /// CLR040: a policy parameter is outside its domain
    /// (`p_RC ∉ [0, 1]`, `γ ∉ [0, 1)`, `α ∉ (0, 1]`).
    PolicyParamOutOfRange,
    /// CLR041: an AuRA agent claiming `γ = 0` diverges from uRA — the
    /// Algorithm-1 equivalence is broken.
    AuraUraDivergence,

    // ----- observability journals (CLR05x) ------------------------------
    /// CLR050: a journal line is not a well-formed schema-1 event.
    JournalSchemaInvalid,
    /// CLR051: journal logical time runs backwards (sequence numbers not
    /// strictly increasing, or decision cycles regress within one
    /// simulation bracket).
    JournalNonMonotoneSeq,
    /// CLR052: a decision record references a design-point index outside
    /// the enclosing simulation's stored database.
    JournalDecisionIndexOutOfRange,
    /// CLR053: the journal does not survive a parse/re-encode round trip
    /// byte-for-byte — the file was hand-edited or written by a foreign
    /// encoder.
    JournalRoundTripMismatch,

    // ----- serving snapshots & traces (CLR06x) --------------------------
    /// CLR060: the snapshot container fails structural decoding (magic,
    /// version, flags, declared length, payload meta, or the embedded
    /// database codec).
    SnapshotContainerInvalid,
    /// CLR061: the payload checksum does not match — the snapshot was
    /// corrupted or edited after export.
    SnapshotChecksumMismatch,
    /// CLR062: the feasibility index over the embedded database disagrees
    /// with a linear feasibility scan for some QoS requirement.
    SnapshotIndexDivergence,
    /// CLR063: the snapshot does not survive a decode/re-encode round trip
    /// byte-for-byte.
    SnapshotRoundTripMismatch,
    /// CLR064: a model descriptor names no bundled graph or platform, so
    /// this installation cannot replay the snapshot.
    SnapshotUnknownModel,
    /// CLR065: a trace event addresses a tenant absent from the serving
    /// fleet — the engine would drop the event at replay.
    TraceUnknownTenant,
    /// CLR066: a telemetry snapshot fails to parse as schema-2 JSON, or
    /// does not survive a decode/re-encode round trip byte-for-byte.
    TelemetrySchemaInvalid,
    /// CLR067: a rolling-window statistic is internally inconsistent
    /// (length exceeds its capacity or event index, the index outruns
    /// the tenant's event count, or the running sum is non-finite).
    TelemetryWindowInconsistent,
    /// CLR068: a quantile histogram is internally inconsistent (bucket
    /// counts do not sum to the stored total, or the min/max bounds
    /// disagree with the population).
    TelemetryHistogramInconsistent,

    // ----- chaos campaigns (CLR07x) -------------------------------------
    /// CLR070: a fault plan fails to parse, validate, or survive a
    /// text-codec round trip byte-for-byte.
    FaultPlanRoundTripMismatch,
    /// CLR071: a campaign CSV violates the schema (header, field count,
    /// numeric fields, or a `survival` column inconsistent with
    /// `served / events`).
    CampaignCsvSchemaInvalid,
    /// CLR072: the campaign CSV's quarantine totals disagree with the
    /// journal's quarantine `fault` events — the two artifacts describe
    /// different runs.
    QuarantineJournalMismatch,

    // ----- replicated snapshot stores (CLR08x) ---------------------------
    /// CLR080: the store's generation lineage is not acyclic — a parent
    /// pointer is missing, self-referential, or not strictly below its
    /// child.
    StoreLineageCycle,
    /// CLR081: a point stamp claims a generation ahead of the snapshot
    /// that carries it, or a stamp hash does not address the stored
    /// point's content.
    StoreStampNotMonotone,
    /// CLR082: a changeset references source-generation state that the
    /// store does not hold (an op outside the `from` snapshot's bounds).
    ChangesetOutsideSource,
    /// CLR083: merging a replica's snapshot is not idempotent — merging
    /// the same generation twice changed the store.
    MergeNotIdempotent,
    /// CLR084: merge is order-dependent — two replicas that exchange the
    /// same generations in different orders diverge.
    MergeNotCommutative,
    /// CLR085: after garbage collection a kept generation's parent chain
    /// no longer reaches a stored root or GC floor.
    GcUnreachableGeneration,

    // ----- online learners (CLR09x) ---------------------------------------
    /// CLR090: a learner's regret accounting is broken — a shadow-scored
    /// regret is negative or non-finite, an accumulator is corrupt, or a
    /// promotion counter runs backwards.
    RegretAccountingInvalid,
    /// CLR091: the A/B assignment law is violated — a variant is not the
    /// seeded assignment of `(seed, tenant)`, changes mid-stream, or the
    /// serving table disagrees with the arm and promotion history.
    AbAssignmentMismatch,
    /// CLR092: a `CLRLRN1` learner checkpoint fails to decode or does not
    /// survive a decode/re-encode round trip byte-for-byte.
    LearnCheckpointRoundTripMismatch,
}

impl LintCode {
    /// Every registered lint, in code order.
    pub const ALL: [LintCode; 52] = [
        LintCode::GraphCycle,
        LintCode::EdgeEndpointOutOfRange,
        LintCode::EmptyImplementationSet,
        LintCode::NegativeTiming,
        LintCode::NonPositivePeriod,
        LintCode::PeriodBelowCriticalPath,
        LintCode::NoProcessingElements,
        LintCode::InterconnectInvalid,
        LintCode::ZeroMemoryPe,
        LintCode::AcceleratedWithoutPrr,
        LintCode::PrrZeroBitstream,
        LintCode::MappingShapeMismatch,
        LintCode::MappingIncompatiblePeType,
        LintCode::MemoryCapacityExceeded,
        LintCode::SchedulePrecedenceBreach,
        LintCode::SchedulePeOverlap,
        LintCode::ScheduleNegativeDuration,
        LintCode::EmptyDatabase,
        LintCode::DominatedParetoPoint,
        LintCode::RedDegradationExceeded,
        LintCode::DuplicatePoints,
        LintCode::MetricOutOfRange,
        LintCode::RoundTripMismatch,
        LintCode::StaleMetrics,
        LintCode::DrcMatrixMismatch,
        LintCode::PolicyParamOutOfRange,
        LintCode::AuraUraDivergence,
        LintCode::JournalSchemaInvalid,
        LintCode::JournalNonMonotoneSeq,
        LintCode::JournalDecisionIndexOutOfRange,
        LintCode::JournalRoundTripMismatch,
        LintCode::SnapshotContainerInvalid,
        LintCode::SnapshotChecksumMismatch,
        LintCode::SnapshotIndexDivergence,
        LintCode::SnapshotRoundTripMismatch,
        LintCode::SnapshotUnknownModel,
        LintCode::TraceUnknownTenant,
        LintCode::TelemetrySchemaInvalid,
        LintCode::TelemetryWindowInconsistent,
        LintCode::TelemetryHistogramInconsistent,
        LintCode::FaultPlanRoundTripMismatch,
        LintCode::CampaignCsvSchemaInvalid,
        LintCode::QuarantineJournalMismatch,
        LintCode::StoreLineageCycle,
        LintCode::StoreStampNotMonotone,
        LintCode::ChangesetOutsideSource,
        LintCode::MergeNotIdempotent,
        LintCode::MergeNotCommutative,
        LintCode::GcUnreachableGeneration,
        LintCode::RegretAccountingInvalid,
        LintCode::AbAssignmentMismatch,
        LintCode::LearnCheckpointRoundTripMismatch,
    ];

    /// The stable `CLRnnn` code string.
    pub fn code(&self) -> &'static str {
        match self {
            LintCode::GraphCycle => "CLR001",
            LintCode::EdgeEndpointOutOfRange => "CLR002",
            LintCode::EmptyImplementationSet => "CLR003",
            LintCode::NegativeTiming => "CLR004",
            LintCode::NonPositivePeriod => "CLR005",
            LintCode::PeriodBelowCriticalPath => "CLR006",
            LintCode::NoProcessingElements => "CLR010",
            LintCode::InterconnectInvalid => "CLR011",
            LintCode::ZeroMemoryPe => "CLR012",
            LintCode::AcceleratedWithoutPrr => "CLR013",
            LintCode::PrrZeroBitstream => "CLR014",
            LintCode::MappingShapeMismatch => "CLR020",
            LintCode::MappingIncompatiblePeType => "CLR021",
            LintCode::MemoryCapacityExceeded => "CLR022",
            LintCode::SchedulePrecedenceBreach => "CLR023",
            LintCode::SchedulePeOverlap => "CLR024",
            LintCode::ScheduleNegativeDuration => "CLR025",
            LintCode::EmptyDatabase => "CLR030",
            LintCode::DominatedParetoPoint => "CLR031",
            LintCode::RedDegradationExceeded => "CLR032",
            LintCode::DuplicatePoints => "CLR033",
            LintCode::MetricOutOfRange => "CLR034",
            LintCode::RoundTripMismatch => "CLR035",
            LintCode::StaleMetrics => "CLR036",
            LintCode::DrcMatrixMismatch => "CLR037",
            LintCode::PolicyParamOutOfRange => "CLR040",
            LintCode::AuraUraDivergence => "CLR041",
            LintCode::JournalSchemaInvalid => "CLR050",
            LintCode::JournalNonMonotoneSeq => "CLR051",
            LintCode::JournalDecisionIndexOutOfRange => "CLR052",
            LintCode::JournalRoundTripMismatch => "CLR053",
            LintCode::SnapshotContainerInvalid => "CLR060",
            LintCode::SnapshotChecksumMismatch => "CLR061",
            LintCode::SnapshotIndexDivergence => "CLR062",
            LintCode::SnapshotRoundTripMismatch => "CLR063",
            LintCode::SnapshotUnknownModel => "CLR064",
            LintCode::TraceUnknownTenant => "CLR065",
            LintCode::TelemetrySchemaInvalid => "CLR066",
            LintCode::TelemetryWindowInconsistent => "CLR067",
            LintCode::TelemetryHistogramInconsistent => "CLR068",
            LintCode::FaultPlanRoundTripMismatch => "CLR070",
            LintCode::CampaignCsvSchemaInvalid => "CLR071",
            LintCode::QuarantineJournalMismatch => "CLR072",
            LintCode::StoreLineageCycle => "CLR080",
            LintCode::StoreStampNotMonotone => "CLR081",
            LintCode::ChangesetOutsideSource => "CLR082",
            LintCode::MergeNotIdempotent => "CLR083",
            LintCode::MergeNotCommutative => "CLR084",
            LintCode::GcUnreachableGeneration => "CLR085",
            LintCode::RegretAccountingInvalid => "CLR090",
            LintCode::AbAssignmentMismatch => "CLR091",
            LintCode::LearnCheckpointRoundTripMismatch => "CLR092",
        }
    }

    /// The fixed severity of this lint.
    pub fn severity(&self) -> Severity {
        match self {
            LintCode::PeriodBelowCriticalPath
            | LintCode::ZeroMemoryPe
            | LintCode::AcceleratedWithoutPrr
            | LintCode::PrrZeroBitstream
            | LintCode::DuplicatePoints
            | LintCode::SnapshotUnknownModel => Severity::Warn,
            _ => Severity::Deny,
        }
    }

    /// A one-line description of what the lint checks.
    pub fn description(&self) -> &'static str {
        match self {
            LintCode::GraphCycle => "task graph must be a DAG",
            LintCode::EdgeEndpointOutOfRange => "edge endpoints must reference existing tasks",
            LintCode::EmptyImplementationSet => "every task needs at least one implementation",
            LintCode::NegativeTiming => "times and payloads must be finite and non-negative",
            LintCode::NonPositivePeriod => "the application period must be positive",
            LintCode::PeriodBelowCriticalPath => {
                "the period should cover the fastest critical path"
            }
            LintCode::NoProcessingElements => "a platform needs at least one PE",
            LintCode::InterconnectInvalid => "the interconnect model must be physically sane",
            LintCode::ZeroMemoryPe => "PEs should have non-zero local memory",
            LintCode::AcceleratedWithoutPrr => {
                "accelerated implementations need PRRs to be reloadable"
            }
            LintCode::PrrZeroBitstream => "PRR bit-streams should be non-empty",
            LintCode::MappingShapeMismatch => "mappings must structurally fit graph and platform",
            LintCode::MappingIncompatiblePeType => {
                "tasks must run on PEs compatible with their implementation"
            }
            LintCode::MemoryCapacityExceeded => "resident binaries must fit each PE's memory",
            LintCode::SchedulePrecedenceBreach => "schedules must respect dependency edges",
            LintCode::SchedulePeOverlap => "a PE executes one task at a time",
            LintCode::ScheduleNegativeDuration => "schedule intervals must be well-formed",
            LintCode::EmptyDatabase => "stored databases must hold at least one point",
            LintCode::DominatedParetoPoint => "BaseD points must be pairwise non-dominated",
            LintCode::RedDegradationExceeded => {
                "ReD extras must stay within the degradation tolerance"
            }
            LintCode::DuplicatePoints => "stored points should be numerically distinct",
            LintCode::MetricOutOfRange => "stored metrics must lie in their physical ranges",
            LintCode::RoundTripMismatch => "databases must survive a codec round trip",
            LintCode::StaleMetrics => "stored metrics must match re-evaluation",
            LintCode::DrcMatrixMismatch => "persisted dRC matrices must match recomputation",
            LintCode::PolicyParamOutOfRange => "policy parameters must lie in their domains",
            LintCode::AuraUraDivergence => "AuRA at γ = 0 must reproduce uRA decisions",
            LintCode::JournalSchemaInvalid => "journal lines must be well-formed schema-1 events",
            LintCode::JournalNonMonotoneSeq => "journal logical time must be monotone",
            LintCode::JournalDecisionIndexOutOfRange => {
                "decision records must index into the enclosing simulation's database"
            }
            LintCode::JournalRoundTripMismatch => {
                "journals must survive a parse/re-encode round trip"
            }
            LintCode::SnapshotContainerInvalid => "snapshot containers must decode structurally",
            LintCode::SnapshotChecksumMismatch => "snapshot payload checksums must match",
            LintCode::SnapshotIndexDivergence => {
                "the feasibility index must equal a linear feasibility scan"
            }
            LintCode::SnapshotRoundTripMismatch => {
                "snapshots must survive a decode/re-encode round trip"
            }
            LintCode::SnapshotUnknownModel => {
                "snapshot model descriptors should resolve to bundled models"
            }
            LintCode::TraceUnknownTenant => {
                "trace events must address tenants present in the serving fleet"
            }
            LintCode::TelemetrySchemaInvalid => {
                "telemetry snapshots must be schema-2 and survive a codec round trip"
            }
            LintCode::TelemetryWindowInconsistent => {
                "rolling-window statistics must be internally consistent"
            }
            LintCode::TelemetryHistogramInconsistent => {
                "histogram bucket counts must sum to the stored total"
            }
            LintCode::FaultPlanRoundTripMismatch => {
                "fault plans must validate and survive a codec round trip"
            }
            LintCode::CampaignCsvSchemaInvalid => {
                "campaign CSVs must follow the 16-column survival schema"
            }
            LintCode::QuarantineJournalMismatch => {
                "campaign quarantine totals must match the journal's fault events"
            }
            LintCode::StoreLineageCycle => {
                "generation lineage must be acyclic with parents strictly below children"
            }
            LintCode::StoreStampNotMonotone => {
                "point stamps must content-address their points at or before the snapshot generation"
            }
            LintCode::ChangesetOutsideSource => {
                "changeset operations must stay within the source generation's bounds"
            }
            LintCode::MergeNotIdempotent => "merging the same generation twice must be a no-op",
            LintCode::MergeNotCommutative => {
                "replicas exchanging the same generations must converge in any order"
            }
            LintCode::GcUnreachableGeneration => {
                "every generation kept by GC must reach a stored root or the GC floor"
            }
            LintCode::RegretAccountingInvalid => {
                "shadow regrets must be finite, non-negative and monotonically accounted"
            }
            LintCode::AbAssignmentMismatch => {
                "the A/B arm must be the seeded assignment and stable per tenant"
            }
            LintCode::LearnCheckpointRoundTripMismatch => {
                "learner checkpoints must survive a decode/re-encode round trip"
            }
        }
    }

    /// A one-line suggestion for fixing a finding.
    pub fn fix_hint(&self) -> &'static str {
        match self {
            LintCode::GraphCycle => "remove or reverse one edge of the reported cycle",
            LintCode::EdgeEndpointOutOfRange => "drop the edge or add the missing task",
            LintCode::EmptyImplementationSet => "add an implementation for a platform PE type",
            LintCode::NegativeTiming => "re-derive the offending time from its source data",
            LintCode::NonPositivePeriod => {
                "set the period to the application's real iteration interval"
            }
            LintCode::PeriodBelowCriticalPath => {
                "raise the period or provide faster implementations"
            }
            LintCode::NoProcessingElements => "add at least one PE to the platform description",
            LintCode::InterconnectInvalid => {
                "use positive finite bandwidth and non-negative latency/energy"
            }
            LintCode::ZeroMemoryPe => "give the PE its real local memory capacity",
            LintCode::AcceleratedWithoutPrr => {
                "add PRRs to the platform or drop the accelerated variants"
            }
            LintCode::PrrZeroBitstream => "set the PRR's real bit-stream size",
            LintCode::MappingShapeMismatch => {
                "regenerate the mapping against the current graph/platform"
            }
            LintCode::MappingIncompatiblePeType => {
                "rebind the task to a PE of the implementation's type"
            }
            LintCode::MemoryCapacityExceeded => {
                "move tasks off the overfull PE or pick smaller binaries"
            }
            LintCode::SchedulePrecedenceBreach => {
                "re-run the list scheduler; do not hand-edit start times"
            }
            LintCode::SchedulePeOverlap => {
                "re-run the list scheduler; entries on one PE must serialise"
            }
            LintCode::ScheduleNegativeDuration => {
                "recompute the entry's end as start + execution time"
            }
            LintCode::EmptyDatabase => "re-run the design-space exploration before deploying",
            LintCode::DominatedParetoPoint => {
                "re-run non-dominated sorting before persisting BaseD"
            }
            LintCode::RedDegradationExceeded => {
                "re-run the ReD stage with the configured tolerance"
            }
            LintCode::DuplicatePoints => "insert through push_if_new to deduplicate on metrics",
            LintCode::MetricOutOfRange => {
                "re-evaluate the point; reject NaN/negative metrics at the source"
            }
            LintCode::RoundTripMismatch => "re-export the database; check for non-finite metrics",
            LintCode::StaleMetrics => "re-evaluate stored mappings after model changes",
            LintCode::DrcMatrixMismatch => {
                "rebuild the runtime context instead of editing the matrix"
            }
            LintCode::PolicyParamOutOfRange => "clamp the parameter into its documented domain",
            LintCode::AuraUraDivergence => {
                "audit the agent's value function; γ = 0 must subsume uRA"
            }
            LintCode::JournalSchemaInvalid => {
                "regenerate the journal with CLR_OBS=json; do not hand-edit it"
            }
            LintCode::JournalNonMonotoneSeq => {
                "export through Obs::export; do not merge or reorder journal files"
            }
            LintCode::JournalDecisionIndexOutOfRange => {
                "re-run the simulation; the journal disagrees with its own sim_start"
            }
            LintCode::JournalRoundTripMismatch => {
                "regenerate the journal; foreign encoders are not byte-stable"
            }
            LintCode::SnapshotContainerInvalid => {
                "re-export with clr-serve snapshot; do not hand-edit the container"
            }
            LintCode::SnapshotChecksumMismatch => "re-export the snapshot from its source database",
            LintCode::SnapshotIndexDivergence => {
                "rebuild the index from the decoded database; report as an index bug"
            }
            LintCode::SnapshotRoundTripMismatch => {
                "re-export the snapshot; foreign encoders are not byte-stable"
            }
            LintCode::SnapshotUnknownModel => {
                "use a bundled descriptor (jpeg, tgff:<tasks>:<seed>; dac19, tiny)"
            }
            LintCode::TraceUnknownTenant => {
                "regenerate the trace for this fleet, or seat the missing tenants"
            }
            LintCode::TelemetrySchemaInvalid => {
                "re-query the daemon (clr-serve stats); do not hand-edit snapshots"
            }
            LintCode::TelemetryWindowInconsistent => {
                "re-query the daemon; report a divergence as a health-registry bug"
            }
            LintCode::TelemetryHistogramInconsistent => {
                "re-query the daemon; report a divergence as a histogram bug"
            }
            LintCode::FaultPlanRoundTripMismatch => {
                "regenerate with clr-chaos plan; do not hand-edit rates"
            }
            LintCode::CampaignCsvSchemaInvalid => {
                "regenerate with clr-chaos campaign; do not hand-edit the CSV"
            }
            LintCode::QuarantineJournalMismatch => {
                "keep campaign.csv and campaign.obs.jsonl from the same run"
            }
            LintCode::StoreLineageCycle => {
                "re-publish through clr-store publish; do not hand-edit the log"
            }
            LintCode::StoreStampNotMonotone => {
                "re-publish the generation; stamps are computed, never edited"
            }
            LintCode::ChangesetOutsideSource => {
                "recompute the changeset against the generation actually held"
            }
            LintCode::MergeNotIdempotent => {
                "report as a store bug; the merge order must be a join-semilattice"
            }
            LintCode::MergeNotCommutative => {
                "report as a store bug; the publisher/byte tiebreak must be total"
            }
            LintCode::GcUnreachableGeneration => {
                "run clr-store gc again; keep-depth must retain whole parent chains"
            }
            LintCode::RegretAccountingInvalid => {
                "regenerate the artifact; regret is measured against the oracle and cannot go negative"
            }
            LintCode::AbAssignmentMismatch => {
                "do not edit variants by hand; the arm is derived from (seed, tenant)"
            }
            LintCode::LearnCheckpointRoundTripMismatch => {
                "let clr-served write checkpoints at drain; do not hand-edit them"
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn codes_are_unique_and_stable_format() {
        let mut seen = HashSet::new();
        for lint in LintCode::ALL {
            let c = lint.code();
            assert!(c.starts_with("CLR") && c.len() == 6, "bad code {c}");
            assert!(c[3..].chars().all(|ch| ch.is_ascii_digit()));
            assert!(seen.insert(c), "duplicate code {c}");
        }
    }

    #[test]
    fn every_code_has_nonempty_metadata() {
        for lint in LintCode::ALL {
            assert!(!lint.description().is_empty());
            assert!(!lint.fix_hint().is_empty());
        }
    }

    #[test]
    fn all_is_sorted_by_code() {
        let codes: Vec<&str> = LintCode::ALL.iter().map(LintCode::code).collect();
        let mut sorted = codes.clone();
        sorted.sort_unstable();
        assert_eq!(codes, sorted);
    }
}
