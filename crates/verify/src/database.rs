//! DSE-database lints (`CLR030`–`CLR037`).

use clr_dse::{DesignPointDb, ExplorationMode, PointOrigin};
use clr_moea::dominates;
use clr_platform::Platform;
use clr_reliability::FaultModel;
use clr_sched::{reconfiguration_cost, Evaluator};
use clr_stats::{approx_eq_probability, approx_eq_time, EPS_TIME};
use clr_taskgraph::TaskGraph;

use crate::{check_mapping, Diagnostic, LintCode, Report};

/// Runs every database lint over `db`, recomputing metrics against
/// `graph`/`platform`/`fault_model` and judging dominance in the
/// objective space of `mode`. `red_tolerance` is the ReD degradation
/// bound (use [`clr_dse::RedConfig::default`]'s `tolerance` unless the
/// database was built with another).
pub fn check_database(
    graph: &TaskGraph,
    platform: &Platform,
    fault_model: &FaultModel,
    mode: ExplorationMode,
    db: &DesignPointDb,
    red_tolerance: f64,
) -> Report {
    let artifact = format!("db:{}", db.name());
    let mut report = check_database_standalone(db, mode, red_tolerance);
    if db.is_empty() {
        return report;
    }

    // The embedded mappings must themselves be valid (reusing the mapping
    // lints) before metric recomputation makes sense.
    let mut mappings_valid = true;
    for (i, p) in db.iter().enumerate() {
        let sub = check_mapping(graph, platform, &p.mapping, &format!("{}[{i}]", db.name()));
        if !sub.is_empty() {
            mappings_valid = false;
        }
        report.merge(sub);
    }

    // CLR036: stored metrics must match a fresh evaluation of the mapping.
    if mappings_valid {
        let eval = Evaluator::new(graph, platform, *fault_model);
        for (i, p) in db.iter().enumerate() {
            let fresh = eval.evaluate(&p.mapping);
            let consistent = approx_eq_time(fresh.makespan, p.metrics.makespan)
                && approx_eq_probability(fresh.reliability, p.metrics.reliability)
                && approx_eq_time(fresh.energy, p.metrics.energy)
                && approx_eq_time(fresh.peak_power, p.metrics.peak_power)
                && approx_eq_time(fresh.mean_mttf, p.metrics.mean_mttf);
            if !consistent {
                report.push(Diagnostic::new(
                    LintCode::StaleMetrics,
                    &artifact,
                    format!("point {i}"),
                    format!(
                        "stored (makespan {}, reliability {}, energy {}) but re-evaluation \
                         yields (makespan {}, reliability {}, energy {})",
                        p.metrics.makespan,
                        p.metrics.reliability,
                        p.metrics.energy,
                        fresh.makespan,
                        fresh.reliability,
                        fresh.energy,
                    ),
                ));
            }
        }
    }

    report
}

/// Runs the context-free subset of the database lints — everything that
/// needs no graph or platform: emptiness, metric ranges, duplicates,
/// BaseD non-domination, ReD degradation bounds and codec round-trip.
/// [`check_database`] adds the mapping and metric-recomputation lints on
/// top; use this form when auditing a database file whose source
/// graph/platform are unavailable.
pub fn check_database_standalone(
    db: &DesignPointDb,
    mode: ExplorationMode,
    red_tolerance: f64,
) -> Report {
    let artifact = format!("db:{}", db.name());
    let mut report = Report::new();

    // CLR030: an empty database leaves the runtime agent without options.
    if db.is_empty() {
        report.push(Diagnostic::new(
            LintCode::EmptyDatabase,
            &artifact,
            "points",
            "database stores no design points".to_string(),
        ));
        return report;
    }

    // CLR034: the stored metrics must be sane.
    for (i, p) in db.iter().enumerate() {
        let m = &p.metrics;
        let mut bad = |what: &str, value: f64| {
            report.push(Diagnostic::new(
                LintCode::MetricOutOfRange,
                &artifact,
                format!("point {i}"),
                format!("{what} = {value} is outside its valid range"),
            ));
        };
        if !(m.makespan.is_finite() && m.makespan >= 0.0) {
            bad("makespan", m.makespan);
        }
        if !(m.reliability.is_finite() && (0.0..=1.0).contains(&m.reliability)) {
            bad("reliability", m.reliability);
        }
        if !(m.energy.is_finite() && m.energy >= 0.0) {
            bad("energy", m.energy);
        }
        if !(m.peak_power.is_finite() && m.peak_power >= 0.0) {
            bad("peak_power", m.peak_power);
        }
        if !(m.mean_mttf.is_finite() && m.mean_mttf >= 0.0) {
            bad("mean_mttf", m.mean_mttf);
        }
    }

    // CLR033: duplicate points waste storage (warn).
    for i in 0..db.len() {
        for j in (i + 1)..db.len() {
            let (a, b) = (&db.points()[i].metrics, &db.points()[j].metrics);
            if approx_eq_time(a.makespan, b.makespan)
                && approx_eq_probability(a.reliability, b.reliability)
                && approx_eq_time(a.energy, b.energy)
            {
                report.push(Diagnostic::new(
                    LintCode::DuplicatePoints,
                    &artifact,
                    format!("points {i}, {j}"),
                    "both points carry the same (makespan, reliability, energy)".to_string(),
                ));
            }
        }
    }

    // CLR031: the BaseD subset must be mutually non-dominated in the
    // objective space the exploration ran in.
    let objectives: Vec<(usize, Vec<f64>)> = db
        .iter()
        .enumerate()
        .filter(|(_, p)| p.origin == PointOrigin::Pareto)
        .map(|(i, p)| (i, mode.objectives_of(&p.metrics)))
        .collect();
    for (i, oi) in &objectives {
        for (j, oj) in &objectives {
            if i != j && dominates(oj, oi) {
                report.push(Diagnostic::new(
                    LintCode::DominatedParetoPoint,
                    &artifact,
                    format!("point {i}"),
                    format!("claimed Pareto-optimal but point {j} dominates it ({oj:?} ≺ {oi:?})"),
                ));
            }
        }
    }

    // CLR032: every ReD extra must sit within the tolerated degradation of
    // at least one BaseD seed, per objective.
    if !objectives.is_empty() {
        for (i, p) in db.iter().enumerate() {
            if p.origin != PointOrigin::ReconfigAware {
                continue;
            }
            let oe = mode.objectives_of(&p.metrics);
            // All objectives are minimised and non-negative (makespan,
            // error rate, energy, inverse MTTF), so the bound is a plain
            // relative inflation of the seed's value.
            let within_some_seed = objectives.iter().any(|(_, os)| {
                oe.iter()
                    .zip(os)
                    .all(|(&e, &s)| e <= s * (1.0 + red_tolerance) + EPS_TIME)
            });
            if !within_some_seed {
                report.push(Diagnostic::new(
                    LintCode::RedDegradationExceeded,
                    &artifact,
                    format!("point {i}"),
                    format!(
                        "reconfiguration-aware extra degrades beyond tolerance {red_tolerance} \
                         of every BaseD seed (objectives {oe:?})"
                    ),
                ));
            }
        }
    }

    // CLR035: the database must survive its own text codec.
    match DesignPointDb::from_text(&db.to_text()) {
        Ok(decoded) if &decoded == db => {}
        Ok(_) => {
            report.push(Diagnostic::new(
                LintCode::RoundTripMismatch,
                &artifact,
                "codec",
                "decode(encode(db)) differs from db (non-finite metrics break equality)"
                    .to_string(),
            ));
        }
        Err(e) => {
            report.push(Diagnostic::new(
                LintCode::RoundTripMismatch,
                &artifact,
                "codec",
                format!("database does not re-parse through its own codec: {e}"),
            ));
        }
    }

    report
}

/// `CLR037`: a persisted dRC matrix (`matrix[i][j]` = cost of switching
/// the running configuration from point `i` to point `j`) must agree with
/// the costs recomputed from the stored mappings.
pub fn check_drc_matrix(
    graph: &TaskGraph,
    platform: &Platform,
    db: &DesignPointDb,
    matrix: &[Vec<f64>],
) -> Report {
    let artifact = format!("db:{}", db.name());
    let mut report = Report::new();
    if matrix.len() != db.len() || matrix.iter().any(|row| row.len() != db.len()) {
        report.push(Diagnostic::new(
            LintCode::DrcMatrixMismatch,
            &artifact,
            "drc matrix",
            format!(
                "matrix shape {}x{} does not cover the {} stored point(s)",
                matrix.len(),
                matrix.first().map_or(0, Vec::len),
                db.len()
            ),
        ));
        return report;
    }
    for (i, row) in matrix.iter().enumerate() {
        for (j, &stored) in row.iter().enumerate() {
            let fresh = reconfiguration_cost(
                graph,
                platform,
                &db.points()[i].mapping,
                &db.points()[j].mapping,
            )
            .total();
            if !approx_eq_time(stored, fresh) {
                report.push(Diagnostic::new(
                    LintCode::DrcMatrixMismatch,
                    &artifact,
                    format!("drc[{i}][{j}]"),
                    format!("stored cost {stored} but recomputation yields {fresh}"),
                ));
            }
        }
    }
    report
}
