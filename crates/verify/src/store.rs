//! Replicated-store lints (`CLR080`–`CLR085`): generation lineage,
//! changeset containment and the merge laws of `clr-store`.
//!
//! A store replica is trusted to hot-swap databases into a serving
//! fleet, so its replication invariants get a static gate: the lineage
//! must be acyclic with parents strictly below children (CLR080), every
//! point stamp must content-address its point at or before the carrying
//! snapshot's generation (CLR081), a shipped changeset must stay within
//! the bounds of the source generation it claims (CLR082), merge must
//! be a join — idempotent (CLR083) and order-independent (CLR084) — and
//! garbage collection must keep whole parent chains (CLR085). `ci.sh`
//! runs `clr-verify store` over the log it publishes in step 13.

use std::collections::BTreeSet;

use clr_serve::{fnv1a64, LineageSnapshot};
use clr_store::{ChangeOp, Changeset, MergeOutcome, Store};

use crate::{Diagnostic, LintCode, Report};

/// Lints a replica's held generations (CLR080, CLR081, CLR085) and
/// replays them through a scratch in-memory replica to check the merge
/// laws (CLR083, CLR084).
///
/// `snapshots` is every generation the replica holds, in log order;
/// `label` names the store in findings.
pub fn check_store(snapshots: &[LineageSnapshot], label: &str) -> Report {
    let mut report = Report::new();
    let origin = format!("store:{label}");
    let held: BTreeSet<u64> = snapshots.iter().map(|s| s.lineage().generation).collect();
    let floor = held.first().copied().unwrap_or(0);
    for snap in snapshots {
        let l = snap.lineage();
        let location = format!("generation {}", l.generation);
        match l.parent {
            Some(parent) if parent >= l.generation => {
                report.push(Diagnostic::new(
                    LintCode::StoreLineageCycle,
                    origin.clone(),
                    location.clone(),
                    format!(
                        "parent generation {parent} is not strictly below {}",
                        l.generation
                    ),
                ));
            }
            None if l.generation != 0 => {
                report.push(Diagnostic::new(
                    LintCode::StoreLineageCycle,
                    origin.clone(),
                    location.clone(),
                    format!(
                        "generation {} claims to be a root (only generation 0 may)",
                        l.generation
                    ),
                ));
            }
            // A parent below the oldest held generation was collected by
            // GC (the floor); a missing parent at or above the floor is
            // a hole GC must never leave.
            Some(parent) if !held.contains(&parent) && parent >= floor => {
                report.push(Diagnostic::new(
                    LintCode::GcUnreachableGeneration,
                    origin.clone(),
                    location.clone(),
                    format!(
                        "parent generation {parent} is missing although the \
                         store still holds generation {floor} and above"
                    ),
                ));
            }
            _ => {}
        }
        check_stamps(&mut report, &origin, &location, snap);
    }
    check_merge_laws(&mut report, &origin, snapshots);
    report
}

/// CLR081: one stamp per stored point, each content-addressing its
/// point, none minted after the snapshot's own generation.
fn check_stamps(report: &mut Report, origin: &str, location: &str, snap: &LineageSnapshot) {
    let l = snap.lineage();
    let db = snap.snapshot().db();
    if l.stamps.len() != db.len() {
        report.push(Diagnostic::new(
            LintCode::StoreStampNotMonotone,
            origin.to_string(),
            location.to_string(),
            format!("{} stamps for {} stored points", l.stamps.len(), db.len()),
        ));
        return;
    }
    for (i, (stamp, point)) in l.stamps.iter().zip(db.iter()).enumerate() {
        let actual = fnv1a64(clr_dse::point_text(point).as_bytes());
        if stamp.hash != actual {
            report.push(Diagnostic::new(
                LintCode::StoreStampNotMonotone,
                origin.to_string(),
                location.to_string(),
                format!(
                    "point {i}: stamp hash {:#018x} does not address the stored \
                     content {actual:#018x}",
                    stamp.hash
                ),
            ));
        }
        if stamp.generation > l.generation {
            report.push(Diagnostic::new(
                LintCode::StoreStampNotMonotone,
                origin.to_string(),
                location.to_string(),
                format!(
                    "point {i}: stamp generation {} is ahead of snapshot generation {}",
                    stamp.generation, l.generation
                ),
            ));
        }
    }
}

/// CLR083/CLR084: replays the held generations through two scratch
/// in-memory replicas — forward and reversed — then re-merges everything
/// into the forward replica. A second merge that mutates state breaks
/// idempotence; replicas that absorbed the same generations in different
/// orders but disagree break commutativity.
fn check_merge_laws(report: &mut Report, origin: &str, snapshots: &[LineageSnapshot]) {
    let lawful: Vec<&LineageSnapshot> = snapshots.iter().filter(|s| s.verify().is_ok()).collect();
    let mut forward = Store::in_memory();
    for snap in &lawful {
        let _ = forward.merge(snap);
    }
    for snap in &lawful {
        match forward.merge(snap) {
            Ok(MergeOutcome::Unchanged | MergeOutcome::KeptExisting) | Err(_) => {}
            Ok(outcome) => {
                report.push(Diagnostic::new(
                    LintCode::MergeNotIdempotent,
                    origin.to_string(),
                    format!("generation {}", snap.lineage().generation),
                    format!("re-merging an already-held generation reported {outcome}"),
                ));
            }
        }
    }
    let mut reversed = Store::in_memory();
    for snap in lawful.iter().rev() {
        let _ = reversed.merge(snap);
    }
    let (Ok(a), Ok(b)) = (forward.generations(), reversed.generations()) else {
        return;
    };
    if a != b {
        report.push(Diagnostic::new(
            LintCode::MergeNotCommutative,
            origin.to_string(),
            "replica".to_string(),
            format!("forward replay holds generations {a:?}, reversed replay {b:?}"),
        ));
        return;
    }
    for generation in a {
        let (Ok(fwd), Ok(rev)) = (forward.get(generation), reversed.get(generation)) else {
            continue;
        };
        if fwd.to_bytes() != rev.to_bytes() {
            report.push(Diagnostic::new(
                LintCode::MergeNotCommutative,
                origin.to_string(),
                format!("generation {generation}"),
                "forward and reversed replay disagree on the sealed bytes".to_string(),
            ));
        }
    }
}

/// CLR082: lints one shipped changeset — it must parse, claim the
/// source generation the replica actually holds (by number *and* sealed
/// bytes), and keep every positional edit within the source's bounds.
///
/// `source` is the replica's copy of the changeset's `from` generation,
/// `None` when the replica does not hold it.
pub fn check_changeset(text: &str, source: Option<&LineageSnapshot>, label: &str) -> Report {
    let mut report = Report::new();
    let origin = format!("changeset:{label}");
    let cs = match Changeset::from_text(text) {
        Ok(cs) => cs,
        Err(e) => {
            report.push(Diagnostic::new(
                LintCode::ChangesetOutsideSource,
                origin,
                "changeset".to_string(),
                format!("changeset does not parse: {e}"),
            ));
            return report;
        }
    };
    let Some(source) = source else {
        report.push(Diagnostic::new(
            LintCode::ChangesetOutsideSource,
            origin,
            "changeset".to_string(),
            format!(
                "source generation {} is not in the store",
                cs.from_generation
            ),
        ));
        return report;
    };
    let source_bytes = source.to_bytes();
    if cs.from_hash != fnv1a64(&source_bytes) {
        report.push(Diagnostic::new(
            LintCode::ChangesetOutsideSource,
            origin.clone(),
            "changeset".to_string(),
            format!(
                "source hash {:#018x} does not match the held generation {}",
                cs.from_hash, cs.from_generation
            ),
        ));
    }
    // Simulate the edits against the source length only — content is the
    // codec's job; containment is this lint's.
    let mut len = source.snapshot().db().len();
    for (i, op) in cs.ops.iter().enumerate() {
        match op {
            ChangeOp::Set { index, .. } if *index >= len => {
                report.push(Diagnostic::new(
                    LintCode::ChangesetOutsideSource,
                    origin.clone(),
                    format!("op {i}"),
                    format!("set at index {index} outside the current {len} points"),
                ));
            }
            ChangeOp::Truncate { len: keep } if *keep > len => {
                report.push(Diagnostic::new(
                    LintCode::ChangesetOutsideSource,
                    origin.clone(),
                    format!("op {i}"),
                    format!("truncate to {keep} exceeds the current {len} points"),
                ));
            }
            ChangeOp::Set { .. } | ChangeOp::Truncate { .. } => {}
            ChangeOp::Append { .. } => len += 1,
        }
        if let ChangeOp::Truncate { len: keep } = op {
            len = (*keep).min(len);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use clr_serve::{compute_stamps, Lineage, Snapshot};
    use clr_store::synth_db;

    /// A two-generation store built through the real publish path.
    fn published() -> Vec<LineageSnapshot> {
        let mut store = Store::in_memory();
        store
            .publish(
                Snapshot::new("jpeg", "dac19", synth_db("based", 6, |_| 0)),
                "alpha",
            )
            .unwrap();
        store
            .publish(
                Snapshot::new("jpeg", "dac19", synth_db("based", 6, |i| u64::from(i == 2))),
                "alpha",
            )
            .unwrap();
        store
            .generations()
            .unwrap()
            .into_iter()
            .map(|g| store.get(g).unwrap())
            .collect()
    }

    #[test]
    fn a_published_store_is_clean() {
        let report = check_store(&published(), "t");
        assert!(report.is_empty(), "{report:?}");
    }

    #[test]
    fn a_cyclic_parent_denies_clr080() {
        let mut snaps = published();
        let snapshot = snaps[1].snapshot().clone();
        let mut lineage = snaps[1].lineage().clone();
        lineage.parent = Some(lineage.generation);
        snaps[1] = LineageSnapshot::from_parts(lineage, snapshot);
        let report = check_store(&snaps, "t");
        assert!(report.has_code(LintCode::StoreLineageCycle), "{report:?}");
        assert_eq!(report.exit_code(), 1);
    }

    #[test]
    fn a_forward_dated_stamp_denies_clr081() {
        let mut snaps = published();
        let snapshot = snaps[0].snapshot().clone();
        let mut lineage = snaps[0].lineage().clone();
        lineage.stamps[0].generation = 99;
        snaps[0] = LineageSnapshot::from_parts(lineage, snapshot);
        let report = check_store(&snaps, "t");
        assert!(
            report.has_code(LintCode::StoreStampNotMonotone),
            "{report:?}"
        );
    }

    #[test]
    fn a_gc_hole_in_the_parent_chain_denies_clr085() {
        let mut store = Store::in_memory();
        for round in 0..4u64 {
            store
                .publish(
                    Snapshot::new(
                        "jpeg",
                        "dac19",
                        synth_db("based", 4, |i| round * 10 + i as u64),
                    ),
                    "a",
                )
                .unwrap();
        }
        let snaps: Vec<LineageSnapshot> = [0u64, 1, 3] // generation 2 vanished mid-chain
            .iter()
            .map(|&g| store.get(g).unwrap())
            .collect();
        let report = check_store(&snaps, "t");
        assert!(
            report.has_code(LintCode::GcUnreachableGeneration),
            "{report:?}"
        );
        // An honest GC that dropped the *oldest* generations is clean.
        let kept: Vec<LineageSnapshot> = [2u64, 3].iter().map(|&g| store.get(g).unwrap()).collect();
        assert!(check_store(&kept, "t").is_empty());
    }

    #[test]
    fn changesets_outside_their_source_deny_clr082() {
        let snaps = published();
        let cs = Changeset::compute(&snaps[0], &snaps[1]);
        let clean = check_changeset(&cs.to_text(), Some(&snaps[0]), "t");
        assert!(clean.is_empty(), "{clean:?}");
        // Unknown source generation.
        let report = check_changeset(&cs.to_text(), None, "t");
        assert!(report.has_code(LintCode::ChangesetOutsideSource));
        // Garbage text.
        let report = check_changeset("nope", Some(&snaps[0]), "t");
        assert!(report.has_code(LintCode::ChangesetOutsideSource));
        // An edit past the source bounds.
        let mut oob = cs.clone();
        if let Some(ChangeOp::Set { index, .. }) = oob.ops.first_mut() {
            *index = 999;
        }
        let report = check_changeset(&oob.to_text(), Some(&snaps[0]), "t");
        assert!(
            report.has_code(LintCode::ChangesetOutsideSource),
            "{report:?}"
        );
    }

    #[test]
    fn hand_forged_lineage_without_a_root_denies_clr080() {
        let db = synth_db("based", 3, |_| 0);
        let snapshot = Snapshot::new("jpeg", "dac19", db);
        let lineage = Lineage {
            generation: 4,
            parent: None,
            publisher: "forge".into(),
            stamps: compute_stamps(snapshot.db(), 4),
        };
        let report = check_store(&[LineageSnapshot::from_parts(lineage, snapshot)], "t");
        assert!(report.has_code(LintCode::StoreLineageCycle), "{report:?}");
    }
}
