//! Online-learner lints (`CLR09x`): regret accounting, seeded A/B
//! assignment and `CLRLRN1` checkpoint codec integrity.
//!
//! The serve loop's `aura+learn:` path leaves two artifacts behind — a
//! journal section carrying `shadow`/`promote` events, and per-tenant
//! `CLRLRN1` checkpoints written at daemon drain. Both are pure
//! functions of the tenant's serial event stream, which makes them
//! auditable offline:
//!
//! - **CLR090** regret accounting: every shadow-scored regret is finite
//!   and non-negative (regret is measured against the per-event oracle,
//!   so a negative value means the oracle was beaten — impossible), and
//!   a tenant's promotion counter never runs backwards.
//! - **CLR091** A/B assignment: the variant is the deterministic
//!   [`assign_variant`] of `(policy seed, tenant name)` and never
//!   changes mid-stream; the serving table is the one the variant and
//!   promotion history dictate.
//! - **CLR092** checkpoint codec: a `CLRLRN1` checkpoint decodes and
//!   re-encodes to its exact input bytes.

use clr_learn::{assign_variant, LearnerState, Table, Variant};
use clr_obs::Event;

use crate::{Diagnostic, LintCode, Report};

/// Audits one `CLRLRN1` learner checkpoint: codec round trip (CLR092),
/// regret/counter accounting (CLR090) and the seeded A/B assignment law
/// (CLR091).
pub fn check_learn_checkpoint(bytes: &[u8], artifact: &str) -> Report {
    let mut report = Report::new();
    let state = match LearnerState::from_bytes(bytes) {
        Ok(state) => state,
        Err(e) => {
            report.push(Diagnostic::new(
                LintCode::LearnCheckpointRoundTripMismatch,
                artifact,
                "container",
                format!("checkpoint does not decode: {e}"),
            ));
            return report;
        }
    };
    if state.to_bytes() != bytes {
        report.push(Diagnostic::new(
            LintCode::LearnCheckpointRoundTripMismatch,
            artifact,
            "container",
            "decode/re-encode is not byte-identical",
        ));
    }

    // CLR090: accumulators must be finite and non-negative, and the
    // exploration counter cannot outrun the decision counter it is a
    // subset of.
    let accumulators = [
        ("cum_live_regret", state.cum_live_regret()),
        ("cum_shadow_regret", state.cum_shadow_regret()),
        ("prefetch_saved_drc", state.prefetch_saved_drc()),
    ];
    for (field, value) in accumulators {
        if !value.is_finite() || value < 0.0 {
            report.push(Diagnostic::new(
                LintCode::RegretAccountingInvalid,
                artifact,
                field,
                format!("{value} is not a finite non-negative accumulator"),
            ));
        }
    }
    if state.explored() > state.decisions() {
        report.push(Diagnostic::new(
            LintCode::RegretAccountingInvalid,
            artifact,
            "explored",
            format!(
                "{} explored decisions out of {} scored",
                state.explored(),
                state.decisions()
            ),
        ));
    }
    for (table, values) in [
        ("live", state.live_values()),
        ("shadow", state.shadow_values()),
    ] {
        if let Some(i) = values.iter().position(|v| !v.is_finite()) {
            report.push(Diagnostic::new(
                LintCode::RegretAccountingInvalid,
                artifact,
                format!("{table}[{i}]"),
                "value table entry is not finite",
            ));
        }
    }

    // CLR091: the variant is pinned by (seed, tenant), and the serving
    // table follows from it — treatment serves the shadow table until
    // its first promotion copies shadow over live.
    let expected = assign_variant(state.config().seed, state.tenant());
    if state.variant() != expected {
        report.push(Diagnostic::new(
            LintCode::AbAssignmentMismatch,
            artifact,
            "variant",
            format!(
                "checkpoint claims {}, seed {} assigns {} to tenant {:?}",
                state.variant().label(),
                state.config().seed,
                expected.label(),
                state.tenant()
            ),
        ));
    }
    let expected_serving = if state.variant() == Variant::Treatment && state.promotions() == 0 {
        Table::Shadow
    } else {
        Table::Live
    };
    if state.serving() != expected_serving {
        report.push(Diagnostic::new(
            LintCode::AbAssignmentMismatch,
            artifact,
            "serving",
            format!(
                "{} arm with {} promotions must serve the {} table, checkpoint serves {}",
                state.variant().label(),
                state.promotions(),
                expected_serving.label(),
                state.serving().label()
            ),
        ));
    }
    report
}

/// Audits the learner-visible events of one observability journal:
/// per-event regrets (CLR090), variant stability and serving-table
/// labels (CLR091), and promotion-counter monotonicity (CLR090).
/// Lines that are not well-formed events are CLR050's concern and are
/// skipped here.
pub fn check_shadow_journal(text: &str, artifact: &str) -> Report {
    let mut report = Report::new();
    let mut variants: std::collections::BTreeMap<String, String> =
        std::collections::BTreeMap::new();
    let mut promotions: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let Ok((seq, event)) = Event::from_json_line(line) else {
            continue;
        };
        match event {
            Event::Shadow {
                tenant,
                event,
                variant,
                serving,
                live_regret,
                shadow_regret,
                ..
            } => {
                for (field, value) in [
                    ("live_regret", live_regret),
                    ("shadow_regret", shadow_regret),
                ] {
                    if !value.is_finite() || value < 0.0 {
                        report.push(Diagnostic::new(
                            LintCode::RegretAccountingInvalid,
                            artifact,
                            format!("seq {seq}"),
                            format!("{field} {value} is not finite and non-negative"),
                        ));
                    }
                }
                if Variant::parse(&variant).is_err() {
                    report.push(Diagnostic::new(
                        LintCode::AbAssignmentMismatch,
                        artifact,
                        format!("seq {seq}"),
                        format!("unknown variant {variant:?}"),
                    ));
                } else if let Some(first) = variants.get(&tenant) {
                    if *first != variant {
                        report.push(Diagnostic::new(
                            LintCode::AbAssignmentMismatch,
                            artifact,
                            format!("seq {seq}"),
                            format!(
                                "tenant {tenant:?} changed arm mid-stream \
                                 ({first} then {variant} at event {event})"
                            ),
                        ));
                    }
                } else {
                    variants.insert(tenant.clone(), variant);
                }
                if serving != "live" && serving != "shadow" {
                    report.push(Diagnostic::new(
                        LintCode::AbAssignmentMismatch,
                        artifact,
                        format!("seq {seq}"),
                        format!("unknown serving table {serving:?}"),
                    ));
                }
            }
            Event::Promote {
                tenant,
                promotions: total,
                status,
                ..
            } => {
                if status != "promoted" {
                    continue;
                }
                let seen = promotions.entry(tenant.clone()).or_insert(0);
                if total < *seen {
                    report.push(Diagnostic::new(
                        LintCode::RegretAccountingInvalid,
                        artifact,
                        format!("seq {seq}"),
                        format!(
                            "tenant {tenant:?} promotion counter ran backwards \
                             ({seen} then {total})"
                        ),
                    ));
                }
                *seen = total;
            }
            _ => {}
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use clr_learn::LearnConfig;

    fn checkpoint_bytes() -> Vec<u8> {
        let cfg = LearnConfig::new(0.5, 0.6, 0.2, 0.1, 7).unwrap();
        LearnerState::new("cam0", 4, 1, cfg).unwrap().to_bytes()
    }

    fn shadow_line(seq: u64, tenant: &str, variant: &str, regret: f64) -> String {
        Event::Shadow {
            label: "t".into(),
            tenant: tenant.into(),
            event: 1,
            variant: variant.into(),
            serving: "live".into(),
            live_choice: 0,
            shadow_choice: 1,
            live_regret: regret,
            shadow_regret: 0.0,
        }
        .to_json_line(seq)
    }

    fn promote_line(seq: u64, tenant: &str, promotions: u64) -> String {
        Event::Promote {
            label: "t".into(),
            tenant: tenant.into(),
            event: 2,
            promotions,
            status: "promoted".into(),
        }
        .to_json_line(seq)
    }

    #[test]
    fn fresh_checkpoint_audits_clean() {
        assert!(check_learn_checkpoint(&checkpoint_bytes(), "t").is_empty());
    }

    #[test]
    fn garbage_checkpoint_is_clr092() {
        let report = check_learn_checkpoint(b"not a checkpoint", "t");
        assert!(report.has_code(LintCode::LearnCheckpointRoundTripMismatch));
        assert_eq!(report.exit_code(), 1);
    }

    #[test]
    fn padded_checkpoint_is_clr092() {
        let mut bytes = checkpoint_bytes();
        bytes.push(0);
        assert!(check_learn_checkpoint(&bytes, "t")
            .has_code(LintCode::LearnCheckpointRoundTripMismatch));
    }

    #[test]
    fn wrong_variant_checkpoint_is_clr091() {
        // Flipping the seed moves "cam0" to the other arm for at least
        // one of two adjacent seeds; find one that disagrees with the
        // stored assignment by editing the tenant name instead: a
        // checkpoint for "cam0" restored under a name whose assignment
        // differs. Simpler: corrupt the variant byte directly — the
        // codec stores it after the tenant name, so rebuild a state for
        // a (seed, tenant) pair on the other arm and splice its name.
        // Cheapest deterministic route: scan seeds for a disagreement.
        let base = assign_variant(7, "cam0");
        let other_seed = (0..u64::MAX)
            .find(|s| assign_variant(*s, "cam0") != base)
            .unwrap();
        let cfg = LearnConfig::new(0.5, 0.6, 0.2, 0.1, other_seed).unwrap();
        let state = LearnerState::new("cam0", 4, 1, cfg).unwrap();
        let mut bytes = state.to_bytes();
        // Overwrite the stored seed with 7 and refresh nothing else:
        // from_bytes accepts the container (checksums cover payload
        // bytes, which we patch coherently) — if the codec rejects the
        // edit outright that is CLR092, which is also a failure signal;
        // assert we get one of the two.
        let seed_pos = bytes
            .windows(8)
            .rposition(|w| w == other_seed.to_le_bytes())
            .unwrap();
        bytes[seed_pos..seed_pos + 8].copy_from_slice(&7u64.to_le_bytes());
        let report = check_learn_checkpoint(&bytes, "t");
        assert!(
            report.has_code(LintCode::AbAssignmentMismatch)
                || report.has_code(LintCode::LearnCheckpointRoundTripMismatch),
            "patched checkpoint must trip CLR091 or CLR092"
        );
        assert_eq!(report.exit_code(), 1);
    }

    #[test]
    fn clean_shadow_journal_audits_clean() {
        let journal = format!(
            "{}\n{}\n{}\n",
            shadow_line(1, "cam0", "control", 0.1),
            promote_line(2, "cam0", 1),
            promote_line(3, "cam0", 2),
        );
        assert!(check_shadow_journal(&journal, "t").is_empty());
    }

    #[test]
    fn negative_regret_is_clr090() {
        let journal = format!("{}\n", shadow_line(1, "cam0", "control", -0.5));
        let report = check_shadow_journal(&journal, "t");
        assert!(report.has_code(LintCode::RegretAccountingInvalid));
        assert_eq!(report.exit_code(), 1);
    }

    #[test]
    fn mid_stream_arm_change_is_clr091() {
        let journal = format!(
            "{}\n{}\n",
            shadow_line(1, "cam0", "control", 0.1),
            shadow_line(2, "cam0", "treatment", 0.1),
        );
        assert!(check_shadow_journal(&journal, "t").has_code(LintCode::AbAssignmentMismatch));
    }

    #[test]
    fn backwards_promotion_counter_is_clr090() {
        let journal = format!(
            "{}\n{}\n",
            promote_line(1, "cam0", 2),
            promote_line(2, "cam0", 1),
        );
        assert!(check_shadow_journal(&journal, "t").has_code(LintCode::RegretAccountingInvalid));
    }

    #[test]
    fn unknown_variant_label_is_clr091() {
        let journal = format!("{}\n", shadow_line(1, "cam0", "placebo", 0.1));
        assert!(check_shadow_journal(&journal, "t").has_code(LintCode::AbAssignmentMismatch));
    }
}
