//! Structured diagnostics: severities, findings and renderable reports.

use std::fmt;

use crate::LintCode;

/// How severe a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but not necessarily wrong; does not fail an audit.
    Warn,
    /// A broken invariant; the audited artifact must not be deployed.
    Deny,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warn => write!(f, "warn"),
            Severity::Deny => write!(f, "deny"),
        }
    }
}

/// One finding: a lint code anchored to an artifact and a location inside
/// it, with a free-form detail string.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// The violated lint.
    pub code: LintCode,
    /// The audited artifact, e.g. `graph:jpeg-encoder` or `db:based`.
    pub artifact: String,
    /// Where inside the artifact, e.g. `task 3` or `point 7`.
    pub location: String,
    /// What exactly was observed.
    pub detail: String,
}

impl Diagnostic {
    /// Creates a finding.
    pub fn new(
        code: LintCode,
        artifact: impl Into<String>,
        location: impl Into<String>,
        detail: impl Into<String>,
    ) -> Self {
        Self {
            code,
            artifact: artifact.into(),
            location: location.into(),
            detail: detail.into(),
        }
    }

    /// The severity inherited from the lint code.
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }

    /// The one-line fix hint inherited from the lint code.
    pub fn fix_hint(&self) -> &'static str {
        self.code.fix_hint()
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {} ({}): {}\n  hint: {}",
            self.code.code(),
            self.severity(),
            self.artifact,
            self.location,
            self.detail,
            self.fix_hint()
        )
    }
}

/// An accumulated set of findings over one or more artifacts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one finding.
    pub fn push(&mut self, diagnostic: Diagnostic) {
        self.diagnostics.push(diagnostic);
    }

    /// Absorbs all findings of another report.
    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// All findings, in discovery order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Number of findings.
    pub fn len(&self) -> usize {
        self.diagnostics.len()
    }

    /// `true` if no lint fired.
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Number of deny-level findings.
    pub fn deny_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Deny)
            .count()
    }

    /// Number of warn-level findings.
    pub fn warn_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Warn)
            .count()
    }

    /// `true` if some finding carries the given code.
    pub fn has_code(&self, code: LintCode) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// The process exit code an audit should end with: `0` when clean or
    /// warn-only, `1` when any deny-level finding exists.
    pub fn exit_code(&self) -> i32 {
        i32::from(self.deny_count() > 0)
    }

    /// Renders the report for humans: one block per finding plus a
    /// summary line.
    pub fn render_human(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for d in &self.diagnostics {
            let _ = writeln!(out, "{d}");
        }
        let _ = writeln!(
            out,
            "{} finding(s): {} deny, {} warn",
            self.len(),
            self.deny_count(),
            self.warn_count()
        );
        out
    }

    /// Renders the report as a JSON document:
    /// `{"findings": [...], "deny": n, "warn": n}`.
    pub fn render_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\"findings\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"code\":{},\"severity\":{},\"artifact\":{},\"location\":{},\"detail\":{},\"hint\":{}}}",
                json_string(d.code.code()),
                json_string(&d.severity().to_string()),
                json_string(&d.artifact),
                json_string(&d.location),
                json_string(&d.detail),
                json_string(d.fix_hint()),
            );
        }
        let _ = write!(
            out,
            "],\"deny\":{},\"warn\":{}}}",
            self.deny_count(),
            self.warn_count()
        );
        out
    }
}

/// Escapes a string into a JSON string literal (RFC 8259 §7).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::new();
        r.push(Diagnostic::new(
            LintCode::GraphCycle,
            "graph:t",
            "tasks 0->1->0",
            "cycle detected",
        ));
        r.push(Diagnostic::new(
            LintCode::DuplicatePoints,
            "db:based",
            "points 1, 2",
            "metrics coincide",
        ));
        r
    }

    #[test]
    fn counts_split_by_severity() {
        let r = sample();
        assert_eq!(r.len(), 2);
        assert_eq!(r.deny_count(), 1);
        assert_eq!(r.warn_count(), 1);
        assert_eq!(r.exit_code(), 1);
        assert!(r.has_code(LintCode::GraphCycle));
        assert!(!r.has_code(LintCode::EmptyDatabase));
    }

    #[test]
    fn warn_only_report_exits_zero() {
        let mut r = Report::new();
        r.push(Diagnostic::new(
            LintCode::DuplicatePoints,
            "db:based",
            "points 1, 2",
            "metrics coincide",
        ));
        assert_eq!(r.exit_code(), 0);
        assert!(!r.is_empty());
    }

    #[test]
    fn human_rendering_names_code_and_hint() {
        let text = sample().render_human();
        assert!(text.contains("CLR001"));
        assert!(text.contains("hint:"));
        assert!(text.contains("2 finding(s): 1 deny, 1 warn"));
    }

    #[test]
    fn json_rendering_is_well_formed() {
        let json = sample().render_json();
        assert!(json.starts_with("{\"findings\":["));
        assert!(json.ends_with("\"deny\":1,\"warn\":1}"));
        assert!(json.contains("\"code\":\"CLR001\""));
    }

    #[test]
    fn json_escaping_handles_specials() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
