//! Telemetry-snapshot lints (`CLR066`–`CLR068`): fleet health snapshots
//! as served by a `clr-served` stats query or `clr-serve replay`.
//!
//! A snapshot is the one artifact operators act on without the engine in
//! hand, so it gets its own consistency gate: the schema-2 codec must
//! round-trip byte-for-byte (CLR066 — any foreign or hand-edited encoder
//! fails this), every rolling-window statistic must be arithmetically
//! possible (CLR067), and every quantile histogram's sparse buckets must
//! sum to its stored total with population-consistent bounds (CLR068).
//! `ci.sh` runs `clr-verify stats` on the snapshot it byte-compares
//! across thread counts.

use clr_obs::{QuantileHistogram, TelemetrySnapshot, TenantTelemetry, WindowStat};

use crate::{Diagnostic, LintCode, Report};

/// Lints one telemetry snapshot line (CLR066–CLR068): schema-2 parse +
/// byte round trip, window arithmetic, histogram population.
///
/// `text` is the raw snapshot as read from the wire or disk; `label`
/// names the artifact in findings.
pub fn check_stats(text: &str, label: &str) -> Report {
    let mut report = Report::new();
    let origin = format!("stats:{label}");
    let snapshot = match TelemetrySnapshot::from_json(text) {
        Ok(s) => s,
        Err(e) => {
            report.push(Diagnostic::new(
                LintCode::TelemetrySchemaInvalid,
                origin,
                "snapshot".to_string(),
                format!("snapshot does not parse as schema-2 telemetry: {e}"),
            ));
            return report;
        }
    };
    let reencoded = snapshot.to_json();
    if reencoded != text.trim_end_matches('\n') {
        report.push(Diagnostic::new(
            LintCode::TelemetrySchemaInvalid,
            origin.clone(),
            "snapshot".to_string(),
            "snapshot does not survive a decode/re-encode round trip — \
             it was hand-edited or written by a foreign encoder"
                .to_string(),
        ));
    }
    for tenant in &snapshot.tenants {
        for (name, stat) in &tenant.windows {
            check_window(&mut report, &origin, tenant, name, stat);
        }
        for (name, histogram) in &tenant.histograms {
            check_histogram(&mut report, &origin, tenant, name, histogram);
        }
    }
    report
}

/// CLR067: a window's (length, index, sum) triple must be reachable by
/// pushing `index` values into a ring of capacity `window`.
fn check_window(
    report: &mut Report,
    origin: &str,
    tenant: &TenantTelemetry,
    name: &str,
    stat: &WindowStat,
) {
    let location = format!("tenant {:?} window {name:?}", tenant.name);
    let expected_len = stat.index.min(stat.window);
    if stat.len != expected_len {
        report.push(Diagnostic::new(
            LintCode::TelemetryWindowInconsistent,
            origin.to_string(),
            location.clone(),
            format!(
                "window holds {} values but {} pushes into capacity {} \
                 can only leave {expected_len}",
                stat.len, stat.index, stat.window
            ),
        ));
    }
    if stat.index > tenant.events {
        report.push(Diagnostic::new(
            LintCode::TelemetryWindowInconsistent,
            origin.to_string(),
            location.clone(),
            format!(
                "window index {} outruns the tenant's {} recorded events",
                stat.index, tenant.events
            ),
        ));
    }
    if !stat.sum.is_finite() {
        report.push(Diagnostic::new(
            LintCode::TelemetryWindowInconsistent,
            origin.to_string(),
            location,
            format!("window sum {} is not finite", stat.sum),
        ));
    }
}

/// CLR068: a histogram's sparse buckets must sum to its total, and its
/// min/max bounds must exist exactly when the population does.
fn check_histogram(
    report: &mut Report,
    origin: &str,
    tenant: &TenantTelemetry,
    name: &str,
    histogram: &QuantileHistogram,
) {
    let location = format!("tenant {:?} histogram {name:?}", tenant.name);
    let bucket_sum: u64 = histogram.counts().iter().sum();
    if bucket_sum != histogram.total() {
        report.push(Diagnostic::new(
            LintCode::TelemetryHistogramInconsistent,
            origin.to_string(),
            location.clone(),
            format!(
                "bucket counts sum to {bucket_sum} but the stored total is {}",
                histogram.total()
            ),
        ));
    }
    let min = histogram.min_value();
    let max = histogram.max_value();
    if (histogram.total() > 0) != (min.is_some() && max.is_some()) {
        report.push(Diagnostic::new(
            LintCode::TelemetryHistogramInconsistent,
            origin.to_string(),
            location.clone(),
            format!(
                "population {} disagrees with bounds min {min:?} max {max:?}",
                histogram.total()
            ),
        ));
    }
    if let (Some(min), Some(max)) = (min, max) {
        if min > max {
            report.push(Diagnostic::new(
                LintCode::TelemetryHistogramInconsistent,
                origin.to_string(),
                location,
                format!("min {min} exceeds max {max}"),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small but fully-populated snapshot, built through the real
    /// encoder so it round-trips by construction.
    fn sample() -> String {
        let mut hist = QuantileHistogram::new();
        hist.record(1.5);
        hist.record(40.0);
        let mut window = clr_obs::RollingWindow::new(64);
        window.push(1.0);
        window.push(0.0);
        let snapshot = TelemetrySnapshot {
            schema: clr_obs::TELEMETRY_SCHEMA_VERSION,
            label: "fleet".into(),
            events: 2,
            dropped: vec![("ghost".into(), 3)],
            tenants: vec![TenantTelemetry {
                name: "cam".into(),
                events: 2,
                status: "normal".into(),
                generation: 1,
                counters: vec![("decisions".into(), 2)],
                windows: vec![("fault_rate".into(), window.stat())],
                histograms: vec![("slack".into(), hist)],
                flight: vec![],
            }],
        };
        snapshot.to_json()
    }

    #[test]
    fn a_real_snapshot_is_clean() {
        let report = check_stats(&sample(), "t");
        assert!(report.is_empty(), "{report:?}");
        // A trailing newline (as read from a file) is tolerated.
        let report = check_stats(&format!("{}\n", sample()), "t");
        assert!(report.is_empty(), "{report:?}");
    }

    #[test]
    fn unparseable_or_wrong_schema_snapshots_deny_clr066() {
        let report = check_stats("not json", "t");
        assert!(report.has_code(LintCode::TelemetrySchemaInvalid));
        assert_eq!(report.exit_code(), 1);
        let wrong = sample().replace("\"schema\":2", "\"schema\":3");
        let report = check_stats(&wrong, "t");
        assert!(
            report.has_code(LintCode::TelemetrySchemaInvalid),
            "{report:?}"
        );
    }

    #[test]
    fn cosmetic_edits_break_the_round_trip() {
        // Whitespace inside the line parses fine but re-encodes away.
        let edited = sample().replace("\"events\":2", "\"events\": 2");
        let report = check_stats(&edited, "t");
        assert!(
            report.has_code(LintCode::TelemetrySchemaInvalid),
            "{report:?}"
        );
    }

    #[test]
    fn impossible_window_arithmetic_denies_clr067() {
        // 2 pushes cannot leave 64 stored values.
        let edited = sample().replace("\"len\":2", "\"len\":64");
        let report = check_stats(&edited, "t");
        assert!(
            report.has_code(LintCode::TelemetryWindowInconsistent),
            "{report:?}"
        );
        // An index past the tenant's event count is equally impossible.
        let edited = sample().replace("\"index\":2", "\"index\":9");
        let report = check_stats(&edited, "t");
        assert!(
            report.has_code(LintCode::TelemetryWindowInconsistent),
            "{report:?}"
        );
    }

    #[test]
    fn histogram_population_mismatches_deny_clr068() {
        let edited = sample().replace("\"total\":2", "\"total\":5");
        let report = check_stats(&edited, "t");
        assert!(
            report.has_code(LintCode::TelemetryHistogramInconsistent),
            "{report:?}"
        );
    }
}
