//! Chaos-campaign lints (`CLR07x`): fault-plan codec integrity, the
//! campaign CSV schema, and the CSV ↔ journal quarantine-consistency
//! law.
//!
//! A campaign produces two artifacts from one run — `campaign.csv`
//! (per-cell survival counts) and `campaign.obs.jsonl` (one `fault`
//! journal event per absorbed fault and per quarantined event). The
//! engine emits exactly one quarantine `fault` event per quarantined
//! decision, so the CSV's `quarantined` column must sum to the journal's
//! quarantine event count; a mismatch means the artifacts come from
//! different runs or were edited.

use clr_chaos::{parse_campaign_csv, FaultPlan};
use clr_obs::Event;

use crate::{Diagnostic, LintCode, Report};

/// Audits one fault-plan document ([`LintCode::FaultPlanRoundTripMismatch`],
/// CLR070): it must parse, validate its rates, and re-encode to its
/// exact input bytes.
pub fn check_fault_plan(text: &str, artifact: &str) -> Report {
    let mut report = Report::new();
    let plan = match FaultPlan::from_text(text) {
        Ok(plan) => plan,
        Err(e) => {
            report.push(Diagnostic::new(
                LintCode::FaultPlanRoundTripMismatch,
                artifact,
                "plan",
                e.to_string(),
            ));
            return report;
        }
    };
    if plan.to_text() != text {
        report.push(Diagnostic::new(
            LintCode::FaultPlanRoundTripMismatch,
            artifact,
            "plan",
            "decode/re-encode is not byte-identical",
        ));
    }
    report
}

/// Audits one campaign CSV document ([`LintCode::CampaignCsvSchemaInvalid`],
/// CLR071) against the shared 16-column schema, including the
/// `survival ≡ served / events` consistency rule.
pub fn check_campaign_csv(text: &str, artifact: &str) -> Report {
    let mut report = Report::new();
    if let Err(e) = parse_campaign_csv(text) {
        report.push(Diagnostic::new(
            LintCode::CampaignCsvSchemaInvalid,
            artifact,
            format!("line {}", e.line),
            e.message,
        ));
    }
    report
}

/// Cross-checks a campaign CSV against its journal
/// ([`LintCode::QuarantineJournalMismatch`], CLR072): the CSV's
/// `quarantined` totals must equal the journal's count of quarantine
/// `fault` events. Schema failures in the CSV surface as CLR071.
pub fn check_campaign_consistency(csv: &str, journal: &str, artifact: &str) -> Report {
    let mut report = check_campaign_csv(csv, artifact);
    if !report.is_empty() {
        return report;
    }
    let rows = parse_campaign_csv(csv).expect("schema-checked above");
    let csv_quarantined: usize = rows.iter().map(|r| r.quarantined).sum();
    let journal_quarantined = journal
        .lines()
        .filter(|l| !l.trim().is_empty())
        .filter_map(|l| Event::from_json_line(l).ok())
        .filter(|(_, event)| {
            matches!(
                event,
                Event::Fault { kind, action, .. }
                    if kind == "quarantine" && action == "quarantine"
            )
        })
        .count();
    if csv_quarantined != journal_quarantined {
        report.push(Diagnostic::new(
            LintCode::QuarantineJournalMismatch,
            artifact,
            "quarantine",
            format!(
                "CSV counts {csv_quarantined} quarantined events, \
                 journal has {journal_quarantined} quarantine fault events"
            ),
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use clr_chaos::{FaultRates, CAMPAIGN_CSV_HEADER};

    fn plan_text() -> String {
        FaultPlan::new(7, FaultRates::default_campaign())
            .unwrap()
            .to_text()
    }

    fn csv_line(quarantined: usize) -> String {
        let served = 100 - quarantined;
        let survival = served as f64 / 100.0;
        format!(
            "budget@0.02,decision,budget,0.02,7,100,{served},{},4,{quarantined},0,4,4,0,0,{survival:?}",
            served - 4
        )
    }

    fn quarantine_event_line(seq: u64) -> String {
        Event::Fault {
            label: "t".into(),
            layer: "decision".into(),
            kind: "quarantine".into(),
            tenant: "t".into(),
            event: 1,
            action: "quarantine".into(),
        }
        .to_json_line(seq)
    }

    #[test]
    fn clean_plan_audits_clean() {
        assert!(check_fault_plan(&plan_text(), "t").is_empty());
    }

    #[test]
    fn garbage_plan_is_clr070() {
        let report = check_fault_plan("not a plan", "t");
        assert!(report.has_code(LintCode::FaultPlanRoundTripMismatch));
        assert_eq!(report.exit_code(), 1);
    }

    #[test]
    fn non_canonical_plan_encoding_is_clr070() {
        let padded = format!("{}\n", plan_text());
        assert!(check_fault_plan(&padded, "t").has_code(LintCode::FaultPlanRoundTripMismatch));
    }

    #[test]
    fn clean_campaign_csv_audits_clean() {
        let doc = format!("{CAMPAIGN_CSV_HEADER}\n{}\n", csv_line(2));
        assert!(check_campaign_csv(&doc, "t").is_empty());
    }

    #[test]
    fn malformed_campaign_csv_is_clr071() {
        let report = check_campaign_csv("cell,layer\nbad\n", "t");
        assert!(report.has_code(LintCode::CampaignCsvSchemaInvalid));
        assert_eq!(report.exit_code(), 1);
    }

    #[test]
    fn quarantine_counts_must_match_the_journal() {
        let doc = format!("{CAMPAIGN_CSV_HEADER}\n{}\n", csv_line(2));
        let journal = format!(
            "{}\n{}\n",
            quarantine_event_line(1),
            quarantine_event_line(2)
        );
        assert!(check_campaign_consistency(&doc, &journal, "t").is_empty());

        let short = format!("{}\n", quarantine_event_line(1));
        let report = check_campaign_consistency(&doc, &short, "t");
        assert!(report.has_code(LintCode::QuarantineJournalMismatch));
        assert_eq!(report.exit_code(), 1);
    }

    #[test]
    fn non_quarantine_fault_events_do_not_count() {
        let doc = format!("{CAMPAIGN_CSV_HEADER}\n{}\n", csv_line(0));
        let absorbed = Event::Fault {
            label: "t".into(),
            layer: "decision".into(),
            kind: "budget".into(),
            tenant: "t".into(),
            event: 1,
            action: "lkg".into(),
        }
        .to_json_line(1);
        let journal = format!("{absorbed}\n");
        assert!(check_campaign_consistency(&doc, &journal, "t").is_empty());
    }
}
