//! The two lint families share one namespace (`CLRnnn`) across two
//! crates. This test is the single source of truth that keeps them
//! disjoint: a code added to either registry that collides with — or
//! strays into — the other family fails here.

use clr_audit::AuditCode;
use clr_verify::LintCode;

#[test]
fn artifact_and_source_lint_codes_never_collide() {
    let artifact: Vec<&str> = LintCode::ALL.iter().map(LintCode::code).collect();
    let source: Vec<&str> = AuditCode::ALL.iter().map(AuditCode::code).collect();
    for code in &source {
        assert!(
            !artifact.contains(code),
            "{code} is registered in both clr-verify and clr-audit"
        );
    }
    // The families also keep their numeric ranges: artifact lints stay
    // below CLR100, source lints at or above it.
    for code in &artifact {
        assert!(
            *code < "CLR100",
            "{code}: CLR0xx artifact lints must stay below CLR100"
        );
    }
    for code in &source {
        assert!(
            ("CLR100".."CLR200").contains(code),
            "{code}: CLR1xx source lints must stay in [CLR100, CLR200)"
        );
    }
}

#[test]
fn merged_registry_is_globally_unique_and_sorted_per_family() {
    let mut all: Vec<&str> = LintCode::ALL.iter().map(LintCode::code).collect();
    all.extend(AuditCode::ALL.iter().map(AuditCode::code));
    let mut dedup = all.clone();
    dedup.sort_unstable();
    dedup.dedup();
    assert_eq!(all.len(), dedup.len(), "duplicate code across families");
}

#[test]
fn the_store_family_is_registered_and_stays_in_its_decade() {
    // CLR08x is the replicated-store family; every lint it documents
    // must exist in the artifact registry, deny by default, and no lint
    // from another decade may stray into it.
    let store: Vec<&LintCode> = LintCode::ALL
        .iter()
        .filter(|l| l.code().starts_with("CLR08"))
        .collect();
    assert_eq!(store.len(), 6, "CLR080–CLR085 are registered");
    for lint in store {
        assert_eq!(
            lint.severity().to_string(),
            "deny",
            "{}: store lints guard swap safety and must deny",
            lint.code()
        );
    }
}
