//! Seeded-corruption suite: every deliberate act of vandalism against a
//! valid artifact must trigger exactly the lint code that guards the
//! broken invariant, with a deny-level (nonzero) exit — and the pristine
//! artifact must pass clean first. Property tests at the bottom confirm
//! the linter stays quiet across the generator space.

use clr_dse::{explore_based, DesignPointDb, DseConfig, ExplorationMode, PointOrigin};
use clr_moea::GaParams;
use clr_platform::{Interconnect, PeKind, PeType, Platform};
use clr_reliability::{ConfigSpace, FaultModel};
use clr_sched::{heft_mapping, reconfiguration_cost, Evaluator, Gene, Mapping};
use clr_taskgraph::{fork_join_graph, jpeg_encoder, TaskGraph, TgffConfig, TgffGenerator};
use clr_verify::{
    check_database, check_database_standalone, check_drc_matrix, check_mapping, LintCode, Report,
};

const TOLERANCE: f64 = 0.15; // RedConfig::default().tolerance

fn fixture() -> (TaskGraph, Platform, FaultModel) {
    (jpeg_encoder(), Platform::dac19(), FaultModel::default())
}

/// A genuinely explored BaseD database with at least two points (a naive
/// hand-built pair will not do: HEFT outright dominates first-fit on the
/// JPEG preset, so labelling both Pareto would itself be a lie the linter
/// rightly rejects).
fn explored_db() -> (TaskGraph, Platform, FaultModel, DesignPointDb) {
    let (graph, platform, fm) = fixture();
    let dse = DseConfig {
        ga: GaParams::small(),
        mode: ExplorationMode::Full,
        reference: None,
        max_points: None,
    };
    for seed in [7u64, 3, 11, 42] {
        let db = explore_based(&graph, &platform, fm, ConfigSpace::fine(), &dse, seed);
        if db.len() >= 2 {
            return (graph, platform, fm, db);
        }
    }
    panic!("no BaseD seed yielded a multi-point front");
}

fn assert_denies(report: &Report, code: LintCode, what: &str) {
    assert!(
        report.has_code(code),
        "{what}: expected {} in:\n{}",
        code.code(),
        report.render_human()
    );
    assert_eq!(report.exit_code(), 1, "{what}: must exit nonzero");
}

#[test]
fn pristine_database_passes_full_check() {
    let (graph, platform, fm, db) = explored_db();
    let report = check_database(
        &graph,
        &platform,
        &fm,
        ExplorationMode::Full,
        &db,
        TOLERANCE,
    );
    // The two mappings may duplicate each other metrically (warn) but no
    // deny-level lint may fire on an honestly built database.
    assert_eq!(report.exit_code(), 0, "{}", report.render_human());
}

#[test]
fn empty_database_fires_clr030() {
    let db = DesignPointDb::new("void");
    let report = check_database_standalone(&db, ExplorationMode::Full, TOLERANCE);
    assert_denies(&report, LintCode::EmptyDatabase, "empty db");
}

#[test]
fn dominated_pareto_insertion_fires_clr031() {
    let (_, _, _, mut db) = explored_db();
    // Forge a "Pareto" point strictly worse than point 0 on every Full-mode
    // objective (makespan, error rate, energy).
    let base = db.get(0).unwrap().clone();
    let mut worse = base.clone();
    worse.metrics.makespan += 10.0;
    worse.metrics.reliability = (base.metrics.reliability - 0.05).max(0.0);
    worse.metrics.energy += 10.0;
    worse.origin = PointOrigin::Pareto;
    db.push(worse);
    let report = check_database_standalone(&db, ExplorationMode::Full, TOLERANCE);
    assert_denies(
        &report,
        LintCode::DominatedParetoPoint,
        "dominated insertion",
    );
}

#[test]
fn degraded_red_extra_fires_clr032() {
    let (_, _, _, mut db) = explored_db();
    // A reconfiguration-aware extra degrading *every* objective to double
    // the worst value any BaseD seed attains — far beyond the 15 %
    // tolerance of every seed.
    let worst = |f: fn(&clr_sched::SystemMetrics) -> f64| {
        db.iter().map(|p| f(&p.metrics)).fold(0.0, f64::max)
    };
    let worst_makespan = worst(|m| m.makespan);
    let worst_error = worst(clr_sched::SystemMetrics::error_rate);
    let worst_energy = worst(|m| m.energy);
    let mut extra = db.get(0).unwrap().clone();
    extra.metrics.makespan = worst_makespan * 2.0;
    extra.metrics.reliability = (1.0 - worst_error * 2.0).clamp(0.0, 1.0);
    extra.metrics.energy = worst_energy * 2.0;
    extra.origin = PointOrigin::ReconfigAware;
    db.push(extra);
    let report = check_database_standalone(&db, ExplorationMode::Full, TOLERANCE);
    assert_denies(&report, LintCode::RedDegradationExceeded, "degraded extra");
}

#[test]
fn duplicate_insertion_fires_clr033_as_warning() {
    let (_, _, _, mut db) = explored_db();
    db.push(db.get(0).unwrap().clone()); // push() skips the dedup of push_if_new
    let report = check_database_standalone(&db, ExplorationMode::Full, TOLERANCE);
    assert!(
        report.has_code(LintCode::DuplicatePoints),
        "{}",
        report.render_human()
    );
    // Duplicates waste storage but break nothing: warn-level, exit 0.
    assert_eq!(report.exit_code(), 0);
}

#[test]
fn out_of_range_metric_fires_clr034() {
    let (_, _, _, db) = explored_db();
    // Tamper at the text level (the decoder deliberately accepts damaged
    // artifacts so they can be audited).
    let text = db.to_text();
    let first_metrics = text
        .lines()
        .find(|l| l.starts_with("metrics "))
        .expect("codec emits metrics lines");
    let mut fields: Vec<String> = first_metrics.split_whitespace().map(String::from).collect();
    fields[2] = "1.5".to_string(); // reliability > 1
    let tampered = text.replacen(first_metrics, &fields.join(" "), 1);
    let db = DesignPointDb::from_text(&tampered).expect("tampered db still parses");
    let report = check_database_standalone(&db, ExplorationMode::Full, TOLERANCE);
    assert_denies(&report, LintCode::MetricOutOfRange, "reliability 1.5");
}

#[test]
fn nan_metric_fires_clr035_round_trip() {
    let (_, _, _, db) = explored_db();
    let text = db.to_text();
    let first_metrics = text
        .lines()
        .find(|l| l.starts_with("metrics "))
        .expect("codec emits metrics lines");
    let mut fields: Vec<String> = first_metrics.split_whitespace().map(String::from).collect();
    fields[1] = "NaN".to_string(); // makespan
    let tampered = text.replacen(first_metrics, &fields.join(" "), 1);
    let db = DesignPointDb::from_text(&tampered).expect("NaN parses");
    let report = check_database_standalone(&db, ExplorationMode::Full, TOLERANCE);
    // NaN breaks PartialEq, so decode(encode(db)) != db.
    assert_denies(&report, LintCode::RoundTripMismatch, "NaN metric");
    assert!(report.has_code(LintCode::MetricOutOfRange));
}

#[test]
fn tampered_metrics_fire_clr036() {
    let (graph, platform, fm, mut db) = explored_db();
    // Shave the stored makespan: still in range, still non-dominated, but
    // no longer what the mapping actually evaluates to.
    let mut p = db.get(0).unwrap().clone();
    p.metrics.makespan += 5.0;
    p.metrics.energy += 5.0;
    db.push(p);
    let report = check_database(
        &graph,
        &platform,
        &fm,
        ExplorationMode::Full,
        &db,
        TOLERANCE,
    );
    assert_denies(&report, LintCode::StaleMetrics, "tampered makespan");
}

#[test]
fn tampered_drc_cell_fires_clr037() {
    let (graph, platform, _, db) = explored_db();
    let mut matrix: Vec<Vec<f64>> = (0..db.len())
        .map(|i| {
            (0..db.len())
                .map(|j| {
                    reconfiguration_cost(
                        &graph,
                        &platform,
                        &db.get(i).unwrap().mapping,
                        &db.get(j).unwrap().mapping,
                    )
                    .total()
                })
                .collect()
        })
        .collect();
    // The honest matrix passes.
    assert!(check_drc_matrix(&graph, &platform, &db, &matrix).is_empty());
    // One tampered cell does not.
    matrix[0][1] += 1.0;
    let report = check_drc_matrix(&graph, &platform, &db, &matrix);
    assert_denies(&report, LintCode::DrcMatrixMismatch, "tampered drc cell");
    // A mis-shaped matrix is caught too.
    let report = check_drc_matrix(&graph, &platform, &db, &[]);
    assert_denies(&report, LintCode::DrcMatrixMismatch, "mis-shaped matrix");
}

#[test]
fn oversubscribed_memory_fires_clr022() {
    // One 8 KiB PE hosting two 100 KiB binaries of different task types.
    let platform = Platform::builder()
        .pe_type(PeType::new("core", PeKind::GeneralPurpose))
        .pe(0.into(), 8)
        .interconnect(Interconnect::default())
        .build()
        .expect("single-pe platform is valid");
    let mut b = clr_taskgraph::TaskGraphBuilder::new("fat", 1000.0);
    for name in ["a", "b"] {
        let mut h = b.task(name);
        h.implementation_full(
            clr_taskgraph::Implementation::new(
                clr_taskgraph::ImplId::new(0),
                0.into(),
                clr_taskgraph::SwStack::BareMetal,
                10.0,
            )
            .with_binary_kib(100),
        );
    }
    b.edge(0.into(), 1.into(), 1.0, 4.0);
    let graph = b.build().expect("two-task graph is valid");
    let mapping = Mapping::new(vec![
        Gene {
            pe: 0.into(),
            impl_id: clr_taskgraph::ImplId::new(0),
            clr: clr_reliability::ClrConfig::NONE,
            priority: 1,
        };
        2
    ]);
    let report = check_mapping(&graph, &platform, &mapping, "fat");
    assert_denies(
        &report,
        LintCode::MemoryCapacityExceeded,
        "oversubscribed pe",
    );
}

#[test]
fn based_exploration_output_is_lint_clean() {
    // The real pipeline end-to-end: whatever BaseD stores must satisfy
    // every deny-level database invariant.
    let (graph, platform, fm) = fixture();
    let dse = DseConfig {
        ga: GaParams::small(),
        mode: ExplorationMode::Full,
        reference: None,
        max_points: None,
    };
    for seed in [3u64, 11] {
        let db = explore_based(&graph, &platform, fm, ConfigSpace::fine(), &dse, seed);
        let report = check_database(
            &graph,
            &platform,
            &fm,
            ExplorationMode::Full,
            &db,
            TOLERANCE,
        );
        assert_eq!(
            report.exit_code(),
            0,
            "seed {seed}:\n{}",
            report.render_human()
        );
    }
}

mod properties {
    use super::*;
    use clr_verify::check_task_graph;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Every TGFF-style generated graph lints clean.
        #[test]
        fn tgff_generator_is_lint_clean(n in 2usize..40, seed in 0u64..500) {
            let g = TgffGenerator::new(TgffConfig::with_tasks(n)).generate(seed);
            let report = check_task_graph(&g);
            prop_assert!(report.is_empty(), "{}", report.render_human());
        }

        /// Every fork-join generated graph lints clean (including the
        /// period-vs-critical-path warning, thanks to the period floor).
        #[test]
        fn fork_join_generator_is_lint_clean(n in 1usize..40, seed in 0u64..500) {
            let g = fork_join_graph(&TgffConfig::with_tasks(n), seed);
            let report = check_task_graph(&g);
            prop_assert!(report.is_empty(), "{}", report.render_human());
        }

        /// HEFT mappings and their schedules lint clean across workloads.
        #[test]
        fn heft_pipeline_is_lint_clean(n in 4usize..25, seed in 0u64..200) {
            let graph = TgffGenerator::new(TgffConfig::with_tasks(n)).generate(seed);
            let platform = Platform::dac19();
            let fm = FaultModel::default();
            let mapping = heft_mapping(&graph, &platform, &fm).expect("generated graphs map");
            let report = clr_verify::check_mapping(&graph, &platform, &mapping, "heft");
            prop_assert!(report.is_empty(), "{}", report.render_human());
            let eval = Evaluator::new(&graph, &platform, fm);
            let (_, schedule) = eval.evaluate_with_schedule(&mapping);
            let report = clr_verify::check_schedule(&graph, &mapping, &schedule, "heft");
            prop_assert!(report.is_empty(), "{}", report.render_human());
        }
    }
}
