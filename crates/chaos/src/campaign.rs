//! The campaign CSV schema: one row per (fault kind, rate) grid cell.
//!
//! `clr-chaos campaign` renders rows with [`CampaignRow::csv_line`];
//! `clr-verify campaign` parses them back with [`parse_campaign_csv`]
//! and cross-checks counts against the journal.

use std::fmt;

/// Header line of `campaign.csv` (no trailing newline).
pub const CAMPAIGN_CSV_HEADER: &str = "cell,layer,kind,rate,seed,events,served,normal,degraded,\
quarantined,violations,injected,absorbed,retries,skipped,survival";

/// One campaign grid cell's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignRow {
    /// Cell label, e.g. `budget@0.02` or `all@default`.
    pub cell: String,
    /// Layer the cell's faults target (`snapshot` / `trace` / `decision`
    /// / `all`).
    pub layer: String,
    /// Fault-kind name (a [`crate::FaultKind::name`] value, or `all`).
    pub kind: String,
    /// Injection rate for the cell.
    pub rate: f64,
    /// Fault-plan seed for the cell.
    pub seed: u64,
    /// Trace events routed to tenants (after lenient trace decode).
    pub events: usize,
    /// Decisions served, normally or degraded (everything except
    /// quarantined events).
    pub served: usize,
    /// Decisions served through the normal policy path.
    pub normal: usize,
    /// Decisions served degraded (last-known-good or baseline fallback).
    pub degraded: usize,
    /// Events swallowed by a quarantined tenant.
    pub quarantined: usize,
    /// Decisions that had to hold a dRC-violating point.
    pub violations: usize,
    /// Faults injected across all layers.
    pub injected: usize,
    /// Injected faults absorbed by the ladder (retry / skip / fallback /
    /// quarantine) — equals `injected` whenever the run finished.
    pub absorbed: usize,
    /// Snapshot decode retries spent.
    pub retries: usize,
    /// Malformed trace lines skipped-and-journalled.
    pub skipped: usize,
}

impl CampaignRow {
    /// Served fraction in `[0, 1]`; `1.0` for an event-free cell.
    pub fn survival(&self) -> f64 {
        if self.events == 0 {
            1.0
        } else {
            self.served as f64 / self.events as f64
        }
    }

    /// Renders the row as one CSV line (no trailing newline). `rate` and
    /// `survival` use shortest round-trip formatting so re-rendering a
    /// parsed row is byte-identical.
    pub fn csv_line(&self) -> String {
        format!(
            "{},{},{},{:?},{},{},{},{},{},{},{},{},{},{},{},{:?}",
            self.cell,
            self.layer,
            self.kind,
            self.rate,
            self.seed,
            self.events,
            self.served,
            self.normal,
            self.degraded,
            self.quarantined,
            self.violations,
            self.injected,
            self.absorbed,
            self.retries,
            self.skipped,
            self.survival()
        )
    }
}

/// Why a campaign CSV failed to parse.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignCsvError {
    /// 1-based line number (0 = whole document).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for CampaignCsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "campaign csv line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CampaignCsvError {}

/// Parses a full `campaign.csv` document (header + rows).
///
/// # Errors
///
/// A [`CampaignCsvError`] naming the first bad line: wrong header, wrong
/// field count, an unparsable field, or a `survival` column inconsistent
/// with `served / events`.
pub fn parse_campaign_csv(text: &str) -> Result<Vec<CampaignRow>, CampaignCsvError> {
    let err = |line: usize, message: String| CampaignCsvError { line, message };
    let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l));
    let (_, header) = lines
        .next()
        .ok_or_else(|| err(0, "empty document".into()))?;
    if header.trim_end() != CAMPAIGN_CSV_HEADER {
        return Err(err(1, format!("bad header {header:?}")));
    }
    let mut rows = Vec::new();
    for (ln, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 16 {
            return Err(err(ln, format!("expected 16 fields, got {}", fields.len())));
        }
        fn num<T: std::str::FromStr>(
            fields: &[&str],
            idx: usize,
            ln: usize,
            name: &str,
        ) -> Result<T, CampaignCsvError> {
            fields[idx].parse().map_err(|_| CampaignCsvError {
                line: ln,
                message: format!("bad {name} {:?}", fields[idx]),
            })
        }
        let row = CampaignRow {
            cell: fields[0].to_string(),
            layer: fields[1].to_string(),
            kind: fields[2].to_string(),
            rate: num(&fields, 3, ln, "rate")?,
            seed: num(&fields, 4, ln, "seed")?,
            events: num(&fields, 5, ln, "events")?,
            served: num(&fields, 6, ln, "served")?,
            normal: num(&fields, 7, ln, "normal")?,
            degraded: num(&fields, 8, ln, "degraded")?,
            quarantined: num(&fields, 9, ln, "quarantined")?,
            violations: num(&fields, 10, ln, "violations")?,
            injected: num(&fields, 11, ln, "injected")?,
            absorbed: num(&fields, 12, ln, "absorbed")?,
            retries: num(&fields, 13, ln, "retries")?,
            skipped: num(&fields, 14, ln, "skipped")?,
        };
        let survival: f64 = num(&fields, 15, ln, "survival")?;
        if (survival - row.survival()).abs() > 1e-12 {
            return Err(err(
                ln,
                format!(
                    "survival {survival} inconsistent with served/events = {}",
                    row.survival()
                ),
            ));
        }
        rows.push(row);
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CampaignRow {
        CampaignRow {
            cell: "budget@0.02".into(),
            layer: "decision".into(),
            kind: "budget".into(),
            rate: 0.02,
            seed: 99,
            events: 400,
            served: 396,
            normal: 380,
            degraded: 16,
            quarantined: 4,
            violations: 2,
            injected: 20,
            absorbed: 20,
            retries: 0,
            skipped: 0,
        }
    }

    #[test]
    fn csv_round_trip_is_identity() {
        let rows = vec![
            sample(),
            CampaignRow {
                cell: "all@default".into(),
                layer: "all".into(),
                kind: "all".into(),
                rate: 0.02,
                seed: 100,
                events: 0,
                served: 0,
                normal: 0,
                degraded: 0,
                quarantined: 0,
                violations: 0,
                injected: 3,
                absorbed: 3,
                retries: 3,
                skipped: 0,
            },
        ];
        let mut text = String::from(CAMPAIGN_CSV_HEADER);
        for row in &rows {
            text.push('\n');
            text.push_str(&row.csv_line());
        }
        text.push('\n');
        let parsed = parse_campaign_csv(&text).unwrap();
        assert_eq!(parsed, rows);
        // Re-render is byte-identical.
        for (row, orig) in parsed.iter().zip(&rows) {
            assert_eq!(row.csv_line(), orig.csv_line());
        }
    }

    #[test]
    fn survival_counts_event_free_cells_as_full() {
        let mut row = sample();
        assert!((row.survival() - 0.99).abs() < 1e-12);
        row.events = 0;
        row.served = 0;
        assert_eq!(row.survival(), 1.0);
    }

    #[test]
    fn bad_documents_are_rejected() {
        assert!(parse_campaign_csv("").is_err());
        assert!(parse_campaign_csv("nope\n").is_err());
        let short = format!("{CAMPAIGN_CSV_HEADER}\na,b,c\n");
        assert!(parse_campaign_csv(&short).is_err());
        let bad_num = format!(
            "{CAMPAIGN_CSV_HEADER}\n{}",
            sample().csv_line().replace(",99,", ",x,")
        );
        assert!(parse_campaign_csv(&bad_num).is_err());
        // Inconsistent survival column is caught.
        let row = sample();
        let line = row.csv_line();
        let lied = format!("{}0.5", &line[..line.rfind(',').unwrap() + 1]);
        let doc = format!("{CAMPAIGN_CSV_HEADER}\n{lied}\n");
        let e = parse_campaign_csv(&doc).unwrap_err();
        assert!(e.message.contains("inconsistent"), "{e}");
    }
}
