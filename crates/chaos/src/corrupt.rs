//! Deterministic corruption operators for serve-path artifacts.
//!
//! Each operator is a pure function of the artifact bytes and a
//! [`FaultPlan`] site, so a campaign corrupts the same bytes the same
//! way on every run and at every thread count.

use crate::plan::{FaultKind, FaultPlan};

/// Maps a 64-bit hash onto `[0, 1)` using its top 53 bits (the largest
/// integer range exactly representable in an `f64`, so the mapping is
/// portable and exact).
pub fn unit_f64(hash: u64) -> f64 {
    crate::plan::unit_from_hash(hash)
}

/// What [`corrupt_snapshot_bytes`] did to the artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotDamage {
    /// No fault fired for this attempt; bytes are untouched.
    None,
    /// One bit was flipped at the given byte offset.
    BitFlip {
        /// Offset of the flipped byte.
        offset: usize,
    },
    /// The artifact was truncated to the given length.
    Truncate {
        /// Surviving prefix length in bytes.
        len: usize,
    },
}

/// Applies the plan's snapshot faults to a load `attempt` (0-based).
///
/// Bit-flip and truncation are decided independently per attempt, so a
/// bounded retry loop in the loader eventually sees a clean attempt with
/// probability 1 for any rate < 1. When both fire on the same attempt,
/// truncation wins (it subsumes the flip). Returns the possibly-damaged
/// bytes plus a description of the damage for journalling.
pub fn corrupt_snapshot_bytes(
    bytes: &[u8],
    plan: &FaultPlan,
    attempt: u64,
) -> (Vec<u8>, SnapshotDamage) {
    if bytes.is_empty() {
        return (Vec::new(), SnapshotDamage::None);
    }
    if plan.fires(FaultKind::SnapshotTruncate, attempt, 1) {
        let hash = plan.site_hash(FaultKind::SnapshotTruncate, attempt, 2);
        // Keep at least one byte and drop at least one, so the damage is
        // real but the decoder still has something to reject.
        let len = 1 + (hash as usize) % bytes.len().max(2).saturating_sub(1);
        return (
            bytes[..len.min(bytes.len() - 1)].to_vec(),
            SnapshotDamage::Truncate {
                len: len.min(bytes.len() - 1),
            },
        );
    }
    if plan.fires(FaultKind::SnapshotBitFlip, attempt, 1) {
        let hash = plan.site_hash(FaultKind::SnapshotBitFlip, attempt, 2);
        let offset = (hash as usize) % bytes.len();
        let bit = (hash >> 32) % 8;
        let mut out = bytes.to_vec();
        out[offset] ^= 1 << bit;
        return (out, SnapshotDamage::BitFlip { offset });
    }
    (bytes.to_vec(), SnapshotDamage::None)
}

/// Summary of what [`corrupt_trace`] did to a JSONL trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceDamage {
    /// Lines whose payload was garbled.
    pub malformed: usize,
    /// Adjacent line pairs swapped (producing out-of-order timestamps).
    pub reordered: usize,
}

/// Applies the plan's trace faults to a JSONL trace text.
///
/// Per line `i`, `TraceMalformed` garbles the line by knocking out its
/// leading `{` (guaranteeing a parse error rather than a silently
/// different event), and `TraceReorder` swaps line `i` with line `i + 1`
/// (already-swapped lines are not re-swapped). Malformation is decided
/// before reordering, on original line indices, so the damage set is
/// independent of evaluation order.
pub fn corrupt_trace(text: &str, plan: &FaultPlan) -> (String, TraceDamage) {
    let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
    let mut damage = TraceDamage::default();
    for (i, line) in lines.iter_mut().enumerate() {
        if !line.is_empty() && plan.fires(FaultKind::TraceMalformed, i as u64, 0) {
            // `X` prefix: definitely not JSON, trivially spotted in fixtures.
            *line = format!("X{}", &line[1..]);
            damage.malformed += 1;
        }
    }
    let mut i = 0;
    while i + 1 < lines.len() {
        if plan.fires(FaultKind::TraceReorder, i as u64, 1) {
            lines.swap(i, i + 1);
            damage.reordered += 1;
            i += 2; // don't undo the swap by matching on the moved line
        } else {
            i += 1;
        }
    }
    let mut out = lines.join("\n");
    if text.ends_with('\n') && !out.is_empty() {
        out.push('\n');
    }
    (out, damage)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultRates;

    fn plan(rates: FaultRates) -> FaultPlan {
        FaultPlan::new(5, rates).unwrap()
    }

    #[test]
    fn unit_f64_covers_the_unit_interval() {
        assert_eq!(unit_f64(0), 0.0);
        let top = unit_f64(u64::MAX);
        assert!((0.999..1.0).contains(&top));
    }

    #[test]
    fn inert_plan_leaves_bytes_untouched() {
        let bytes = b"CLRSNAP1 payload".to_vec();
        let (out, damage) = corrupt_snapshot_bytes(&bytes, &FaultPlan::inert(1), 0);
        assert_eq!(out, bytes);
        assert_eq!(damage, SnapshotDamage::None);
    }

    #[test]
    fn bitflip_changes_exactly_one_bit() {
        let p = plan(FaultRates::only(FaultKind::SnapshotBitFlip, 1.0));
        let bytes = vec![0u8; 64];
        let (out, damage) = corrupt_snapshot_bytes(&bytes, &p, 0);
        let SnapshotDamage::BitFlip { offset } = damage else {
            panic!("expected a bit flip, got {damage:?}");
        };
        assert_eq!(out.len(), bytes.len());
        let flipped: u32 = out.iter().map(|b| b.count_ones()).sum();
        assert_eq!(flipped, 1);
        assert_ne!(out[offset], 0);
        // Same attempt → same damage; different attempt → (almost surely)
        // a different site.
        assert_eq!(corrupt_snapshot_bytes(&bytes, &p, 0).0, out);
    }

    #[test]
    fn truncation_strictly_shrinks() {
        let p = plan(FaultRates::only(FaultKind::SnapshotTruncate, 1.0));
        let bytes = vec![7u8; 100];
        for attempt in 0..16 {
            let (out, damage) = corrupt_snapshot_bytes(&bytes, &p, attempt);
            let SnapshotDamage::Truncate { len } = damage else {
                panic!("expected truncation, got {damage:?}");
            };
            assert_eq!(out.len(), len);
            assert!(!out.is_empty() && out.len() < bytes.len());
        }
    }

    #[test]
    fn retry_eventually_sees_a_clean_attempt() {
        let p = plan(FaultRates {
            snapshot_bitflip: 0.5,
            snapshot_truncate: 0.5,
            ..FaultRates::zero()
        });
        let bytes = vec![1u8; 32];
        let clean = (0..32u64).any(|a| {
            matches!(
                corrupt_snapshot_bytes(&bytes, &p, a).1,
                SnapshotDamage::None
            )
        });
        assert!(clean, "no clean attempt in 32 tries at 75% damage rate");
    }

    #[test]
    fn trace_malformation_is_per_line_and_counted() {
        let text = "{\"a\":1}\n{\"b\":2}\n{\"c\":3}\n{\"d\":4}\n";
        let p = plan(FaultRates::only(FaultKind::TraceMalformed, 1.0));
        let (out, damage) = corrupt_trace(text, &p);
        assert_eq!(damage.malformed, 4);
        assert_eq!(damage.reordered, 0);
        assert!(out.lines().all(|l| l.starts_with('X')));
        assert!(out.ends_with('\n'));
    }

    #[test]
    fn trace_reorder_swaps_disjoint_pairs() {
        let text = "l0\nl1\nl2\nl3\nl4\nl5\n";
        let p = plan(FaultRates::only(FaultKind::TraceReorder, 1.0));
        let (out, damage) = corrupt_trace(text, &p);
        assert_eq!(damage.reordered, 3);
        assert_eq!(out, "l1\nl0\nl3\nl2\nl5\nl4\n");
    }

    #[test]
    fn trace_corruption_is_deterministic() {
        let text: String = (0..50).map(|i| format!("{{\"t\":{i}}}\n")).collect();
        let p = plan(FaultRates {
            trace_malformed: 0.3,
            trace_reorder: 0.3,
            ..FaultRates::zero()
        });
        assert_eq!(corrupt_trace(&text, &p), corrupt_trace(&text, &p));
        let (_, damage) = corrupt_trace(&text, &p);
        assert!(damage.malformed > 0 && damage.reordered > 0);
    }
}
