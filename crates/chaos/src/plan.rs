//! Seeded fault plans: which fault fires at which site, decided purely.

use std::fmt;

use clr_par::splitmix64;

/// One injectable fault kind, tagged with the serve-path layer it hits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum FaultKind {
    /// Snapshot layer: a payload bit is flipped before decode.
    SnapshotBitFlip,
    /// Snapshot layer: the artifact is truncated before decode.
    SnapshotTruncate,
    /// Trace layer: an event line is malformed (a required field is
    /// garbled away).
    TraceMalformed,
    /// Trace layer: an event line is swapped with its successor, so
    /// timestamps regress.
    TraceReorder,
    /// Decision layer: the tenant's decision-time budget is exhausted —
    /// the policy cannot run for this event.
    BudgetExhausted,
    /// Decision layer: the policy errors (models a crashed or corrupted
    /// agent returning garbage).
    PolicyFailure,
    /// Decision layer: the database is transiently infeasible — the
    /// feasible set reads as empty for this event.
    TransientInfeasible,
}

impl FaultKind {
    /// Every fault kind, in declaration order (= plan codec order).
    pub const ALL: [FaultKind; 7] = [
        FaultKind::SnapshotBitFlip,
        FaultKind::SnapshotTruncate,
        FaultKind::TraceMalformed,
        FaultKind::TraceReorder,
        FaultKind::BudgetExhausted,
        FaultKind::PolicyFailure,
        FaultKind::TransientInfeasible,
    ];

    /// The stable textual name (plan codec, campaign CSV, journals).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::SnapshotBitFlip => "snapshot_bitflip",
            FaultKind::SnapshotTruncate => "snapshot_truncate",
            FaultKind::TraceMalformed => "trace_malformed",
            FaultKind::TraceReorder => "trace_reorder",
            FaultKind::BudgetExhausted => "budget",
            FaultKind::PolicyFailure => "policy",
            FaultKind::TransientInfeasible => "infeasible",
        }
    }

    /// The serve-path layer this kind is injected at.
    pub fn layer(self) -> &'static str {
        match self {
            FaultKind::SnapshotBitFlip | FaultKind::SnapshotTruncate => "snapshot",
            FaultKind::TraceMalformed | FaultKind::TraceReorder => "trace",
            FaultKind::BudgetExhausted
            | FaultKind::PolicyFailure
            | FaultKind::TransientInfeasible => "decision",
        }
    }

    /// Parses the stable textual name.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.iter().copied().find(|k| k.name() == name)
    }

    /// A per-kind salt decorrelating the kinds' decision streams.
    fn salt(self) -> u64 {
        // Distinct odd constants; any fixed assignment works, it only has
        // to be stable because plans are persisted by seed + rates.
        match self {
            FaultKind::SnapshotBitFlip => 0x9E37_79B9_7F4A_7C15,
            FaultKind::SnapshotTruncate => 0xC2B2_AE3D_27D4_EB4F,
            FaultKind::TraceMalformed => 0x1656_67B1_9E37_79F9,
            FaultKind::TraceReorder => 0x2545_F491_4F6C_DD1D,
            FaultKind::BudgetExhausted => 0xFF51_AFD7_ED55_8CCD,
            FaultKind::PolicyFailure => 0xC4CE_B9FE_1A85_EC53,
            FaultKind::TransientInfeasible => 0x8765_4321_0FED_CBA9,
        }
    }
}

/// Per-kind injection probabilities, each in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRates {
    /// Snapshot-payload bit-flip probability per load attempt.
    pub snapshot_bitflip: f64,
    /// Snapshot truncation probability per load attempt.
    pub snapshot_truncate: f64,
    /// Per-line trace malformation probability.
    pub trace_malformed: f64,
    /// Per-line trace reorder (swap-with-successor) probability.
    pub trace_reorder: f64,
    /// Per-decision budget-exhaustion probability.
    pub budget: f64,
    /// Per-decision policy-failure probability.
    pub policy: f64,
    /// Per-decision transient-infeasibility probability.
    pub infeasible: f64,
}

impl FaultRates {
    /// All-zero rates: a plan that never fires.
    pub fn zero() -> Self {
        Self {
            snapshot_bitflip: 0.0,
            snapshot_truncate: 0.0,
            trace_malformed: 0.0,
            trace_reorder: 0.0,
            budget: 0.0,
            policy: 0.0,
            infeasible: 0.0,
        }
    }

    /// The default campaign rates: 2% per site and kind — low enough
    /// that the ladder keeps ≥95% of decisions served, high enough that
    /// every rung is exercised on a few-thousand-event trace.
    pub fn default_campaign() -> Self {
        Self {
            snapshot_bitflip: 0.02,
            snapshot_truncate: 0.02,
            trace_malformed: 0.02,
            trace_reorder: 0.02,
            budget: 0.02,
            policy: 0.02,
            infeasible: 0.02,
        }
    }

    /// Rates with only `kind` firing, at probability `rate` — one cell of
    /// a per-layer campaign grid.
    pub fn only(kind: FaultKind, rate: f64) -> Self {
        let mut rates = Self::zero();
        *rates.rate_mut(kind) = rate;
        rates
    }

    /// The rate of one kind.
    pub fn rate(&self, kind: FaultKind) -> f64 {
        match kind {
            FaultKind::SnapshotBitFlip => self.snapshot_bitflip,
            FaultKind::SnapshotTruncate => self.snapshot_truncate,
            FaultKind::TraceMalformed => self.trace_malformed,
            FaultKind::TraceReorder => self.trace_reorder,
            FaultKind::BudgetExhausted => self.budget,
            FaultKind::PolicyFailure => self.policy,
            FaultKind::TransientInfeasible => self.infeasible,
        }
    }

    /// Mutable access to one kind's rate (for building mixes kind-by-kind).
    pub fn rate_mut(&mut self, kind: FaultKind) -> &mut f64 {
        match kind {
            FaultKind::SnapshotBitFlip => &mut self.snapshot_bitflip,
            FaultKind::SnapshotTruncate => &mut self.snapshot_truncate,
            FaultKind::TraceMalformed => &mut self.trace_malformed,
            FaultKind::TraceReorder => &mut self.trace_reorder,
            FaultKind::BudgetExhausted => &mut self.budget,
            FaultKind::PolicyFailure => &mut self.policy,
            FaultKind::TransientInfeasible => &mut self.infeasible,
        }
    }

    /// `true` when every rate is finite and within `[0, 1]`.
    pub fn is_valid(&self) -> bool {
        FaultKind::ALL
            .iter()
            .all(|&k| self.rate(k).is_finite() && (0.0..=1.0).contains(&self.rate(k)))
    }
}

/// Why a fault plan failed to construct or decode.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultPlanError {
    /// A rate is non-finite or outside `[0, 1]`.
    RateOutOfRange {
        /// The offending kind.
        kind: FaultKind,
        /// The offending value.
        rate: f64,
    },
    /// The plan text failed to parse.
    Parse {
        /// 1-based line number (0 = whole document).
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::RateOutOfRange { kind, rate } => {
                write!(f, "rate {rate} for {} outside [0, 1]", kind.name())
            }
            Self::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// Magic first line of the plan text codec.
const HEADER: &str = "clr-fault-plan v1";

/// A seeded fault-injection plan: a pure function from `(kind, site,
/// sub-site)` to fire/don't-fire, plus deterministic corruption
/// parameters.
///
/// Two plans with the same seed and rates make identical decisions
/// everywhere, and a decision depends only on its site coordinates —
/// never on evaluation order — so injection composes with the serve
/// engine's parallel tenant fan-out without breaking bit-identity.
///
/// # Examples
///
/// ```
/// use clr_chaos::{FaultKind, FaultPlan, FaultRates};
/// let plan = FaultPlan::new(7, FaultRates::default_campaign()).unwrap();
/// let hit = plan.fires(FaultKind::BudgetExhausted, 0, 12);
/// // Pure: the same site always gets the same answer.
/// assert_eq!(hit, plan.fires(FaultKind::BudgetExhausted, 0, 12));
/// assert_eq!(FaultPlan::from_text(&plan.to_text()).unwrap(), plan);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    rates: FaultRates,
}

impl FaultPlan {
    /// Builds a plan from a seed and per-kind rates.
    ///
    /// # Errors
    ///
    /// [`FaultPlanError::RateOutOfRange`] when a rate is non-finite or
    /// outside `[0, 1]`.
    pub fn new(seed: u64, rates: FaultRates) -> Result<Self, FaultPlanError> {
        for kind in FaultKind::ALL {
            let rate = rates.rate(kind);
            if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
                return Err(FaultPlanError::RateOutOfRange { kind, rate });
            }
        }
        Ok(Self { seed, rates })
    }

    /// A plan that never fires (rate 0 everywhere) — replaying under it
    /// is byte-identical to replaying without chaos.
    pub fn inert(seed: u64) -> Self {
        Self {
            seed,
            rates: FaultRates::zero(),
        }
    }

    /// The plan seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The per-kind rates.
    pub fn rates(&self) -> &FaultRates {
        &self.rates
    }

    /// The raw site hash for `(kind, site, sub)` — also used to derive
    /// deterministic corruption parameters (which bit to flip, where to
    /// truncate).
    pub fn site_hash(&self, kind: FaultKind, site: u64, sub: u64) -> u64 {
        splitmix64(self.seed ^ kind.salt() ^ splitmix64(site.wrapping_mul(2).wrapping_add(1)) ^ sub)
    }

    /// Does `kind` fire at `(site, sub)`? Sites are caller-defined
    /// coordinates: the serve engine uses `(tenant index, event ordinal)`,
    /// artifact corruption uses `(attempt, line/byte index)`.
    pub fn fires(&self, kind: FaultKind, site: u64, sub: u64) -> bool {
        let rate = self.rates.rate(kind);
        if rate <= 0.0 {
            return false;
        }
        unit_from_hash(self.site_hash(kind, site, sub)) < rate
    }

    /// Serialises the plan into its line-oriented text form (shortest
    /// round-trip float formatting, so `from_text(to_text(p)) == p`
    /// bit-for-bit).
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{HEADER}");
        let _ = writeln!(out, "seed {}", self.seed);
        for kind in FaultKind::ALL {
            let _ = writeln!(out, "{} {:?}", kind.name(), self.rates.rate(kind));
        }
        out
    }

    /// Parses a plan from its text form.
    ///
    /// # Errors
    ///
    /// [`FaultPlanError::Parse`] naming the first offending line, or
    /// [`FaultPlanError::RateOutOfRange`] for a decoded rate outside its
    /// domain.
    pub fn from_text(text: &str) -> Result<Self, FaultPlanError> {
        let perr = |line: usize, message: String| FaultPlanError::Parse { line, message };
        let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l.trim()));
        let (_, header) = lines
            .next()
            .ok_or_else(|| perr(0, "empty document".into()))?;
        if header != HEADER {
            return Err(perr(
                1,
                format!("bad header {header:?}, expected {HEADER:?}"),
            ));
        }
        let (s_line, seed_line) = lines
            .next()
            .ok_or_else(|| perr(0, "missing seed line".into()))?;
        let seed: u64 = seed_line
            .strip_prefix("seed ")
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| perr(s_line, "expected `seed <u64>`".into()))?;
        let mut rates = FaultRates::zero();
        for (ln, line) in lines {
            if line.is_empty() {
                continue;
            }
            let (name, value) = line
                .split_once(' ')
                .ok_or_else(|| perr(ln, format!("expected `<kind> <rate>`, got {line:?}")))?;
            let kind = FaultKind::from_name(name)
                .ok_or_else(|| perr(ln, format!("unknown fault kind {name:?}")))?;
            let rate: f64 = value
                .parse()
                .map_err(|_| perr(ln, format!("bad rate {value:?}")))?;
            *rates.rate_mut(kind) = rate;
        }
        Self::new(seed, rates)
    }
}

/// Maps a 64-bit hash onto `[0, 1)` using the top 53 bits (exactly
/// representable in an `f64`, so the mapping is portable and exact).
pub(crate) fn unit_from_hash(hash: u64) -> f64 {
    (hash >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_pure_functions_of_their_sites() {
        let plan = FaultPlan::new(42, FaultRates::default_campaign()).unwrap();
        for kind in FaultKind::ALL {
            for site in 0..4u64 {
                for sub in 0..64u64 {
                    assert_eq!(plan.fires(kind, site, sub), plan.fires(kind, site, sub));
                }
            }
        }
    }

    #[test]
    fn fire_frequency_tracks_the_rate() {
        let plan = FaultPlan::new(7, FaultRates::only(FaultKind::BudgetExhausted, 0.1)).unwrap();
        let fired = (0..20_000u64)
            .filter(|&sub| plan.fires(FaultKind::BudgetExhausted, 3, sub))
            .count();
        // 10% ± generous slack.
        assert!((1_600..=2_400).contains(&fired), "fired {fired}");
        // Other kinds stay silent under an `only` rate set.
        assert!(!(0..20_000u64).any(|s| plan.fires(FaultKind::PolicyFailure, 3, s)));
    }

    #[test]
    fn inert_plans_never_fire() {
        let plan = FaultPlan::inert(9);
        for kind in FaultKind::ALL {
            assert!(!(0..1_000u64).any(|s| plan.fires(kind, 0, s)));
        }
    }

    #[test]
    fn kinds_are_decorrelated() {
        let plan = FaultPlan::new(11, FaultRates::default_campaign()).unwrap();
        // The same site must not fire all kinds in lockstep.
        let patterns: Vec<Vec<bool>> = FaultKind::ALL
            .iter()
            .map(|&k| (0..512u64).map(|s| plan.fires(k, 1, s)).collect())
            .collect();
        for (i, a) in patterns.iter().enumerate() {
            for b in patterns.iter().skip(i + 1) {
                assert_ne!(a, b, "two kinds share a decision stream");
            }
        }
    }

    #[test]
    fn codec_round_trip_is_identity() {
        let plan = FaultPlan::new(
            u64::MAX,
            FaultRates {
                snapshot_bitflip: 0.125,
                snapshot_truncate: 0.0,
                trace_malformed: 1.0,
                trace_reorder: 1e-3,
                budget: 0.333_333_333_333,
                policy: 0.02,
                infeasible: 0.07,
            },
        )
        .unwrap();
        let text = plan.to_text();
        let decoded = FaultPlan::from_text(&text).unwrap();
        assert_eq!(decoded, plan);
        assert_eq!(decoded.to_text(), text, "byte-stable re-encoding");
    }

    #[test]
    fn bad_plans_are_rejected() {
        assert!(matches!(
            FaultPlan::new(1, FaultRates::only(FaultKind::BudgetExhausted, 1.5)),
            Err(FaultPlanError::RateOutOfRange { .. })
        ));
        assert!(matches!(
            FaultPlan::new(1, FaultRates::only(FaultKind::PolicyFailure, f64::NAN)),
            Err(FaultPlanError::RateOutOfRange { .. })
        ));
        assert!(FaultPlan::from_text("nonsense\n").is_err());
        assert!(FaultPlan::from_text("clr-fault-plan v1\nseed x\n").is_err());
        assert!(FaultPlan::from_text("clr-fault-plan v1\nseed 1\nwat 0.5\n").is_err());
        assert!(FaultPlan::from_text("clr-fault-plan v1\nseed 1\nbudget 2.0\n").is_err());
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in FaultKind::ALL {
            assert_eq!(FaultKind::from_name(kind.name()), Some(kind));
            assert!(!kind.layer().is_empty());
        }
        assert_eq!(FaultKind::from_name("mystery"), None);
    }
}
