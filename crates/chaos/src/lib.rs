//! clr-chaos: deterministic fault injection for the serve path.
//!
//! The methodology's premise is surviving faults through cross-layer
//! mitigation — so the serving stack itself must be evaluated *under*
//! injected faults, not only on clean inputs. This crate supplies the
//! injection half of that evaluation:
//!
//! - **[`FaultPlan`]**: a seeded, splitmix-derived description of which
//!   faults fire where. A plan is a pure function of `(seed, rates,
//!   site)`, so the same plan injects the same faults at any
//!   `CLR_THREADS` — the serve engine's bit-identity contract survives
//!   chaos testing.
//! - **Corruption operators** ([`corrupt_snapshot_bytes`],
//!   [`corrupt_trace`]): deterministic bit-flips/truncation for binary
//!   snapshot artifacts and malformed/out-of-order line damage for JSONL
//!   traces.
//! - **Campaign schema** ([`CampaignRow`]): the per-layer
//!   survival/degradation CSV emitted by `clr-chaos campaign`, parsed
//!   back by `clr-verify`'s CLR07x lints.
//!
//! The degradation ladder that *absorbs* these faults lives in
//! `clr-serve`'s replay engine; the `clr-chaos` binary
//! (`plan | inject | campaign | report`) drives whole campaigns.

mod campaign;
mod corrupt;
mod plan;

pub use campaign::{parse_campaign_csv, CampaignCsvError, CampaignRow, CAMPAIGN_CSV_HEADER};
pub use corrupt::{corrupt_snapshot_bytes, corrupt_trace, unit_f64, SnapshotDamage, TraceDamage};
pub use plan::{FaultKind, FaultPlan, FaultPlanError, FaultRates};
