//! Run-time adaptation layer (paper §4.3).
//!
//! On every discrete event — a change of the QoS requirement
//! `(S_SPEC, F_SPEC)` — the system may reconfigure to a different stored
//! design point. Two policies are provided:
//!
//! - [`UraPolicy`] — *user-modulated run-time adaptation* (Algorithm 1):
//!   filter the feasible stored points, score each by
//!   `RET(p) = p_RC · norm(R(p)) − (1 − p_RC) · norm(dRC(p))`
//!   and reconfigure to the arg-max. `p_RC = 1` recovers the purely
//!   performance-oriented baseline of Rehman et al.\ (ref.\ 11); `p_RC = 0`
//!   minimises reconfiguration cost (the system then only moves on a QoS
//!   violation, since staying costs `dRC = 0`).
//! - [`AuraAgent`] — *agent-based uRA*: a reinforcement-learning agent that
//!   scores feasible states by learned value functions (first-visit
//!   Monte-Carlo updates with discount `γ`; `γ = 0` degenerates to uRA).
//!   Prior knowledge about the QoS-variation distribution is injected by
//!   an offline Monte-Carlo pass ([`AuraAgent::train_prior`]).
//!
//! [`simulate`] runs the discrete-event Monte-Carlo evaluation of §5.1:
//! QoS requirements drawn from a bivariate Gaussian, inter-event gaps from
//! an exponential distribution with a mean of 100 cycles.
//!
//! # Examples
//!
//! ```
//! use clr_dse::{explore_based, DseConfig, ExplorationMode};
//! use clr_moea::GaParams;
//! use clr_platform::Platform;
//! use clr_reliability::{ConfigSpace, FaultModel};
//! use clr_runtime::{simulate, QosVariationModel, RuntimeContext, SimConfig, UraPolicy};
//! use clr_taskgraph::{TgffConfig, TgffGenerator};
//!
//! let graph = TgffGenerator::new(TgffConfig::with_tasks(10)).generate(9);
//! let platform = Platform::dac19();
//! let cfg = DseConfig { ga: GaParams::small(), ..DseConfig::default() };
//! let db = explore_based(&graph, &platform, FaultModel::default(),
//!                        ConfigSpace::fine(), &cfg, 9);
//! let ctx = RuntimeContext::new(&graph, &platform, &db);
//! let qos = QosVariationModel::calibrated(&db, 0.25, 0.3);
//! let mut policy = UraPolicy::new(0.5).unwrap();
//! let result = simulate(&ctx, &mut policy, &qos, &SimConfig::quick(11));
//! assert!(result.events > 0);
//! ```

mod agent;
mod analysis;
mod context;
mod error;
mod hv_policy;
mod qos;
mod sim;
mod ura;

pub use agent::{AuraAgent, PRIOR_BATCH};
pub use analysis::TraceAnalysis;
pub use context::RuntimeContext;
pub use error::RuntimeError;
pub use hv_policy::HvPolicy;
pub use qos::{EventStream, QosEvent, QosVariationModel, VariationMode};
#[allow(deprecated)]
pub use sim::AdaptationPolicy;
pub use sim::{
    simulate, simulate_checked, simulate_obs, simulate_replications, DecisionInput,
    DecisionOutcome, Feedback, RuntimePolicy, SimConfig, SimResult, TraceRecord,
};
pub use ura::{ura_argmax, UraPolicy};
