//! Post-hoc analysis of adaptation traces.
//!
//! The Monte-Carlo simulation can retain per-event [`crate::TraceRecord`]s;
//! this module aggregates them into the quantities one inspects when
//! debugging a policy or database: per-point occupancy, dwell times,
//! reconfiguration-cost histograms and violation runs.

use serde::{Deserialize, Serialize};

use crate::TraceRecord;

/// Aggregated statistics of one adaptation trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceAnalysis {
    /// Number of analysed records.
    pub events: usize,
    /// Fraction of events that moved the operating point.
    pub move_rate: f64,
    /// Fraction of events with no feasible stored point.
    pub violation_rate: f64,
    /// Longest run of consecutive violating events.
    pub longest_violation_run: usize,
    /// Visits per design point (index = point id; sized to the largest
    /// point index seen + 1).
    pub visits: Vec<usize>,
    /// The most visited point and its visit count.
    pub hottest_point: Option<(usize, usize)>,
    /// Histogram of paid reconfiguration costs over `bins` equal-width
    /// buckets spanning `[0, max_drc]`; empty when no cost was paid.
    pub drc_histogram: Vec<usize>,
    /// Upper edge of the histogram (the largest paid cost).
    pub max_drc: f64,
}

impl TraceAnalysis {
    /// Analyses a trace with the given number of histogram bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`.
    pub fn of(trace: &[TraceRecord], bins: usize) -> TraceAnalysis {
        assert!(bins > 0, "histogram needs at least one bin");
        let events = trace.len();
        let mut moves = 0usize;
        let mut violations = 0usize;
        let mut longest_run = 0usize;
        let mut run = 0usize;
        let mut visits: Vec<usize> = Vec::new();
        let max_drc = trace.iter().map(|t| t.drc).fold(0.0f64, f64::max);
        let mut histogram = vec![0usize; bins];

        for t in trace {
            if t.to != t.from {
                moves += 1;
            }
            if t.violated {
                violations += 1;
                run += 1;
                longest_run = longest_run.max(run);
            } else {
                run = 0;
            }
            if t.to >= visits.len() {
                visits.resize(t.to + 1, 0);
            }
            visits[t.to] += 1;
            if t.drc > 0.0 && max_drc > 0.0 {
                let bin = ((t.drc / max_drc) * bins as f64).ceil() as usize;
                histogram[bin.clamp(1, bins) - 1] += 1;
            }
        }

        let hottest_point = visits
            .iter()
            .enumerate()
            .max_by_key(|(_, &v)| v)
            .filter(|(_, &v)| v > 0)
            .map(|(i, &v)| (i, v));

        TraceAnalysis {
            events,
            move_rate: ratio(moves, events),
            violation_rate: ratio(violations, events),
            longest_violation_run: longest_run,
            visits,
            hottest_point,
            drc_histogram: histogram,
            max_drc,
        }
    }

    /// Renders the analysis as a short human-readable report.
    pub fn report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "events:            {}", self.events);
        let _ = writeln!(out, "move rate:         {:.1}%", self.move_rate * 100.0);
        let _ = writeln!(
            out,
            "violation rate:    {:.1}%",
            self.violation_rate * 100.0
        );
        let _ = writeln!(
            out,
            "longest violation: {} events",
            self.longest_violation_run
        );
        if let Some((p, v)) = self.hottest_point {
            let _ = writeln!(out, "hottest point:     #{p} ({v} visits)");
        }
        if self.max_drc > 0.0 {
            let _ = writeln!(out, "paid dRC histogram (0 .. {:.1}):", self.max_drc);
            let peak = self.drc_histogram.iter().copied().max().unwrap_or(1).max(1);
            for (i, &count) in self.drc_histogram.iter().enumerate() {
                let bar = "#".repeat(count * 40 / peak);
                let _ = writeln!(out, "  bin {i:>2}: {count:>5} {bar}");
            }
        }
        out
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clr_dse::QosSpec;

    fn record(from: usize, to: usize, drc: f64, violated: bool) -> TraceRecord {
        TraceRecord {
            time: 0.0,
            spec: QosSpec::new(1.0, 0.5),
            from,
            to,
            drc,
            violated,
        }
    }

    #[test]
    fn empty_trace_is_all_zero() {
        let a = TraceAnalysis::of(&[], 4);
        assert_eq!(a.events, 0);
        assert_eq!(a.move_rate, 0.0);
        assert!(a.hottest_point.is_none());
        assert_eq!(a.max_drc, 0.0);
    }

    #[test]
    fn rates_and_runs_are_computed() {
        let trace = vec![
            record(0, 1, 5.0, false),
            record(1, 1, 0.0, true),
            record(1, 1, 0.0, true),
            record(1, 2, 3.0, false),
        ];
        let a = TraceAnalysis::of(&trace, 4);
        assert_eq!(a.events, 4);
        assert!((a.move_rate - 0.5).abs() < 1e-12);
        assert!((a.violation_rate - 0.5).abs() < 1e-12);
        assert_eq!(a.longest_violation_run, 2);
        assert_eq!(a.visits[1], 3);
        assert_eq!(a.hottest_point, Some((1, 3)));
    }

    #[test]
    fn histogram_buckets_paid_costs() {
        let trace = vec![
            record(0, 1, 1.0, false),
            record(1, 2, 10.0, false),
            record(2, 3, 9.5, false),
            record(3, 3, 0.0, false), // free stay: not binned
        ];
        let a = TraceAnalysis::of(&trace, 2);
        assert_eq!(a.max_drc, 10.0);
        assert_eq!(a.drc_histogram, vec![1, 2]);
    }

    #[test]
    fn report_is_nonempty_and_mentions_rates() {
        let trace = vec![record(0, 1, 2.0, false)];
        let a = TraceAnalysis::of(&trace, 3);
        let r = a.report();
        assert!(r.contains("move rate"));
        assert!(r.contains("histogram"));
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        let _ = TraceAnalysis::of(&[], 0);
    }
}
