//! Discrete-event Monte-Carlo simulation of run-time adaptation
//! (paper §5.1–5.2).

use std::collections::VecDeque;

use clr_dse::QosSpec;
use clr_obs::{Event, Obs};
use serde::{Deserialize, Serialize};

use crate::{EventStream, QosVariationModel, RuntimeContext, RuntimeError};

/// Everything a policy needs to make one adaptation decision.
///
/// Hot loops compute the feasible set once per event into a reusable
/// buffer and hand the slice to the policy through this struct, so a
/// decision performs no allocation and no second database filter.
#[derive(Debug, Clone, Copy)]
pub struct DecisionInput<'a, 'ctx> {
    /// Shared run-time state: the stored database, the pairwise `dRC`
    /// matrix and the min–max normalisers.
    pub ctx: &'a RuntimeContext<'ctx>,
    /// Index of the currently active design point.
    pub current: usize,
    /// The new QoS requirement that triggered this decision.
    pub spec: &'a QosSpec,
    /// Feasible stored points under `spec`, ascending — exactly
    /// `ctx.feasible(spec)`.
    pub feasible: &'a [usize],
}

/// A policy's answer to one [`DecisionInput`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DecisionOutcome {
    /// The selected design point, or `None` when no stored point is
    /// feasible (the system then keeps its current configuration).
    pub choice: Option<usize>,
    /// The winning RET score, when the policy has a scalar score
    /// (e.g. [`crate::HvPolicy`] reports none). Journal decision records
    /// carry it whenever present.
    pub score: Option<f64>,
    /// The policy's `p_RC` modulation parameter, when it has one.
    pub p_rc: Option<f64>,
}

impl DecisionOutcome {
    /// An outcome carrying only a choice — for policies without
    /// introspection data.
    pub fn bare(choice: Option<usize>) -> Self {
        Self {
            choice,
            score: None,
            p_rc: None,
        }
    }
}

/// Post-decision feedback: the transition that was actually executed
/// (including staying put, and including degradation-ladder overrides
/// the policy did not choose itself).
#[derive(Debug, Clone, Copy)]
pub struct Feedback<'a, 'ctx> {
    /// Shared run-time state at the moment of the transition.
    pub ctx: &'a RuntimeContext<'ctx>,
    /// Active design point before the event.
    pub from: usize,
    /// Active design point after the event.
    pub to: usize,
}

/// A run-time adaptation policy driving the discrete-event simulation.
///
/// [`crate::UraPolicy`] is stateless; [`crate::AuraAgent`] learns from the
/// `observe`/`end_episode` callbacks.
///
/// `Send` is a supertrait so boxed policies can live inside resident
/// serving state that migrates across worker threads (clr-serve's
/// sharded tenant sessions); every policy is plain owned data, so the
/// bound costs implementors nothing.
pub trait RuntimePolicy: Send {
    /// Makes one adaptation decision: selects the next design point for
    /// the new requirement (or none, keeping the current configuration)
    /// plus whatever introspection data the policy exposes for journal
    /// decision records.
    fn decide(&mut self, input: &DecisionInput<'_, '_>) -> DecisionOutcome;

    /// Notified after each executed transition (including staying put).
    /// The default is a no-op; learning policies accumulate experience
    /// here.
    fn observe(&mut self, _feedback: &Feedback<'_, '_>) {}

    /// Notified at each episode boundary (a fixed number of application
    /// cycles; paper: "typically a thousand application execution cycles").
    fn end_episode(&mut self) {}

    /// Deprecated pre-[`DecisionInput`] entry point, kept as a shim for
    /// one release: computes the feasible set internally and delegates to
    /// [`decide`](Self::decide).
    #[deprecated(since = "0.11.0", note = "use decide(&DecisionInput) instead")]
    fn decide_scored(
        &mut self,
        ctx: &RuntimeContext<'_>,
        current: usize,
        spec: &QosSpec,
    ) -> (Option<usize>, Option<f64>, Option<f64>) {
        let feasible = ctx.feasible(spec);
        let out = self.decide(&DecisionInput {
            ctx,
            current,
            spec,
            feasible: &feasible,
        });
        (out.choice, out.score, out.p_rc)
    }

    /// Deprecated pre-[`DecisionInput`] entry point with a caller-computed
    /// feasible set, kept as a shim for one release: delegates to
    /// [`decide`](Self::decide).
    #[deprecated(since = "0.11.0", note = "use decide(&DecisionInput) instead")]
    fn decide_scored_from(
        &mut self,
        ctx: &RuntimeContext<'_>,
        current: usize,
        spec: &QosSpec,
        feasible: &[usize],
    ) -> (Option<usize>, Option<f64>, Option<f64>) {
        let out = self.decide(&DecisionInput {
            ctx,
            current,
            spec,
            feasible,
        });
        (out.choice, out.score, out.p_rc)
    }
}

/// Deprecated former name of [`RuntimePolicy`], kept as a shim for one
/// release. Every `RuntimePolicy` implements it, so existing bounds and
/// `Box<dyn AdaptationPolicy>` trait objects keep compiling.
#[deprecated(since = "0.11.0", note = "renamed to RuntimePolicy")]
pub trait AdaptationPolicy: RuntimePolicy {}

#[allow(deprecated)]
impl<T: RuntimePolicy + ?Sized> AdaptationPolicy for T {}

/// Simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Total simulated application execution cycles.
    pub total_cycles: f64,
    /// Mean inter-event gap in cycles (paper: 100).
    pub mean_event_gap: f64,
    /// Episode length in cycles for RL value updates (paper: ~1000).
    pub episode_cycles: f64,
    /// RNG seed for the event stream.
    pub seed: u64,
    /// Index of the initially active design point.
    pub initial_point: usize,
    /// Cap on the number of retained trace records (0 = keep none). The
    /// trace is a ring buffer: when more than `max_trace` events occur, the
    /// **last** `max_trace` records are kept — the tail of a run is what
    /// post-mortem debugging needs. Use [`simulate_obs`] with an enabled
    /// [`Obs`] handle to journal *every* decision instead.
    pub max_trace: usize,
}

impl SimConfig {
    /// The paper's full evaluation: one million application execution
    /// cycles, 100-cycle mean gaps, 1000-cycle episodes.
    pub fn paper(seed: u64) -> Self {
        Self {
            total_cycles: 1_000_000.0,
            mean_event_gap: 100.0,
            episode_cycles: 1_000.0,
            seed,
            initial_point: 0,
            max_trace: 0,
        }
    }

    /// A fast configuration for tests and smoke benches (20 k cycles).
    pub fn quick(seed: u64) -> Self {
        Self {
            total_cycles: 20_000.0,
            ..Self::paper(seed)
        }
    }

    /// Returns a copy retaining up to the *last* `n` trace records.
    pub fn with_trace(mut self, n: usize) -> Self {
        self.max_trace = n;
        self
    }
}

/// One retained adaptation event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Event time in cycles.
    pub time: f64,
    /// The new QoS requirement.
    pub spec: QosSpec,
    /// Active point before the event.
    pub from: usize,
    /// Active point after the event.
    pub to: usize,
    /// Reconfiguration cost paid.
    pub drc: f64,
    /// `true` if no stored point satisfied the requirement.
    pub violated: bool,
}

/// Aggregate outcome of one Monte-Carlo run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// Number of QoS-change events processed.
    pub events: usize,
    /// Number of events that actually moved the operating point.
    pub reconfigurations: usize,
    /// Events for which no stored point was feasible.
    pub violations: usize,
    /// Sum of all paid reconfiguration costs.
    pub total_reconfig_cost: f64,
    /// Mean reconfiguration cost per event (the paper's "average
    /// reconfiguration cost").
    pub avg_reconfig_cost: f64,
    /// Largest single reconfiguration cost (`ΔdRC` in Fig. 6).
    pub max_reconfig_cost: f64,
    /// Time-weighted mean energy of the active operating point (the
    /// paper's "average energy consumption" `J_avg`).
    pub avg_energy: f64,
    /// Total run-time DSE work: stored design points scanned across all
    /// adaptation decisions (each event filters and scores the whole
    /// database). This is the run-time DSE latency the paper's conclusion
    /// warns grows with the number of stored points.
    pub decision_work: u64,
    /// Retained per-event records: the **last** `SimConfig::max_trace`
    /// events, in time order. Private so the simulation loop is the single
    /// pathway producing trace data; read via [`SimResult::trace`].
    trace: Vec<TraceRecord>,
}

impl SimResult {
    /// The retained trace: the last `SimConfig::max_trace` adaptation
    /// events, in time order.
    pub fn trace(&self) -> &[TraceRecord] {
        &self.trace
    }
}

/// Runs the discrete-event Monte-Carlo simulation.
///
/// # Panics
///
/// Panics if `initial_point` is out of range for the context's database.
///
/// # Examples
///
/// See the [crate-level example](crate).
pub fn simulate<P: RuntimePolicy + ?Sized>(
    ctx: &RuntimeContext<'_>,
    policy: &mut P,
    qos: &QosVariationModel,
    config: &SimConfig,
) -> SimResult {
    simulate_obs(ctx, policy, qos, config, &Obs::off(), "sim")
}

/// [`simulate`] with the configuration validated up front: a bad
/// `initial_point` comes back as a typed [`RuntimeError`] instead of a
/// panic, so callers holding externally supplied configurations (CLIs,
/// the serve path) can degrade instead of aborting.
///
/// # Errors
///
/// [`RuntimeError::BadInitialPoint`] when `config.initial_point` is out
/// of range for the context's database.
pub fn simulate_checked<P: RuntimePolicy + ?Sized>(
    ctx: &RuntimeContext<'_>,
    policy: &mut P,
    qos: &QosVariationModel,
    config: &SimConfig,
) -> Result<SimResult, RuntimeError> {
    if config.initial_point >= ctx.len() {
        return Err(RuntimeError::BadInitialPoint {
            index: config.initial_point,
            len: ctx.len(),
        });
    }
    Ok(simulate(ctx, policy, qos, config))
}

/// Upper bucket bounds of the `sim.drc` reconfiguration-cost histogram.
const DRC_BUCKET_BOUNDS: [f64; 8] = [0.0, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0];

/// [`simulate`] with journal instrumentation: emits one `sim_start`
/// event, one `decision` record per QoS event (feasible-set size, chosen
/// point, `dRC`, the policy's RET score and `p_RC` when available), a
/// `sim_end` summary, and a simulated-cycle logical-clock span, plus
/// `sim.*` recorder counters and a `sim.drc` cost histogram.
///
/// Everything is emitted from the (serial) event loop, so journals are
/// bit-identical across thread counts. `label` names this simulation in
/// the journal; make it unique per run when simulating several databases.
/// With a disabled handle this is exactly [`simulate`].
///
/// # Panics
///
/// Panics if `initial_point` is out of range for the context's database.
pub fn simulate_obs<P: RuntimePolicy + ?Sized>(
    ctx: &RuntimeContext<'_>,
    policy: &mut P,
    qos: &QosVariationModel,
    config: &SimConfig,
    obs: &Obs,
    label: &str,
) -> SimResult {
    assert!(
        config.initial_point < ctx.len(),
        "initial point {} out of range ({} stored)",
        config.initial_point,
        ctx.len()
    );
    if obs.enabled() {
        obs.emit(Event::SimStart {
            label: label.to_string(),
            points: ctx.len(),
            seed: config.seed,
        });
    }
    let mut events = EventStream::new(*qos, config.mean_event_gap, config.seed);
    let mut current = config.initial_point;
    let mut last_time = 0.0f64;
    let mut next_episode_end = config.episode_cycles;

    let mut result = SimResult {
        events: 0,
        reconfigurations: 0,
        violations: 0,
        total_reconfig_cost: 0.0,
        avg_reconfig_cost: 0.0,
        max_reconfig_cost: 0.0,
        avg_energy: 0.0,
        decision_work: 0,
        trace: Vec::new(),
    };
    // Ring buffer of the most recent `max_trace` records; overflow evicts
    // the oldest, so the retained window is the tail of the run.
    let mut ring: VecDeque<TraceRecord> = VecDeque::new();
    let mut energy_time_integral = 0.0f64;
    // One feasibility query per event, reusing a single buffer for the
    // whole run (`feasible_into` + `decide_scored_from`).
    let mut feas_buf: Vec<usize> = Vec::new();

    loop {
        let event = events.next_event();
        let horizon = event.time.min(config.total_cycles);
        // Accumulate dwell energy of the active point.
        // `current` starts validated (the assert above) and every later
        // value is a feasible index, so the lookup cannot miss.
        let dwell_energy = ctx.db().get(current).map_or(0.0, |p| p.metrics.energy);
        energy_time_integral += dwell_energy * (horizon - last_time);
        last_time = horizon;

        // Episode boundaries passed before this event.
        while next_episode_end <= horizon {
            policy.end_episode();
            next_episode_end += config.episode_cycles;
        }
        if event.time >= config.total_cycles {
            break;
        }

        result.events += 1;
        result.decision_work += ctx.len() as u64;
        ctx.feasible_into(&event.spec, &mut feas_buf);
        let feasible = feas_buf.len();
        let outcome = policy.decide(&DecisionInput {
            ctx,
            current,
            spec: &event.spec,
            feasible: &feas_buf,
        });
        let (decision, score, p_rc) = (outcome.choice, outcome.score, outcome.p_rc);
        let (to, violated) = match decision {
            Some(p) => (p, false),
            None => (current, true),
        };
        let drc = ctx.drc(current, to);
        policy.observe(&Feedback {
            ctx,
            from: current,
            to,
        });

        if violated {
            result.violations += 1;
        }
        if to != current {
            result.reconfigurations += 1;
        }
        result.total_reconfig_cost += drc;
        if drc > result.max_reconfig_cost {
            result.max_reconfig_cost = drc;
        }
        // Single trace pathway: the same decision data feeds the in-memory
        // ring buffer and the journal decision record.
        let record = TraceRecord {
            time: event.time,
            spec: event.spec,
            from: current,
            to,
            drc,
            violated,
        };
        if config.max_trace > 0 {
            if ring.len() == config.max_trace {
                ring.pop_front();
            }
            ring.push_back(record);
        }
        if obs.enabled() {
            obs.emit(Event::Decision {
                event: result.events,
                cycle: event.time,
                feasible,
                from: current,
                to,
                drc,
                score,
                p_rc,
                violated,
            });
            obs.counter_add("sim.events", 1);
            if to != current {
                obs.counter_add("sim.reconfigurations", 1);
            }
            if violated {
                obs.counter_add("sim.violations", 1);
            }
            obs.histogram_record("sim.drc", &DRC_BUCKET_BOUNDS, drc);
        }
        current = to;
    }
    result.trace = ring.into();

    result.avg_reconfig_cost = if result.events > 0 {
        result.total_reconfig_cost / result.events as f64
    } else {
        0.0
    };
    result.avg_energy = if config.total_cycles > 0.0 {
        energy_time_integral / config.total_cycles
    } else {
        0.0
    };
    if obs.enabled() {
        obs.emit(Event::SimEnd {
            label: label.to_string(),
            events: result.events,
            reconfigurations: result.reconfigurations,
            violations: result.violations,
            total_drc: result.total_reconfig_cost,
        });
        obs.emit(Event::Span {
            label: label.to_string(),
            clock: "cycle".to_string(),
            start: 0.0,
            end: config.total_cycles,
        });
    }
    result
}

/// Runs `replications` independent Monte-Carlo replications of the same
/// simulation, fanned out over `threads` workers (`0` = automatic: the
/// `CLR_THREADS` environment variable, falling back to available
/// parallelism).
///
/// Replication `i` simulates with a fresh policy from `make_policy(i)` and
/// an RNG stream derived from `(config.seed, i)`, so results are in
/// replication order and bit-identical for every thread count.
///
/// Replications run **un-instrumented**: their inner [`simulate`] calls
/// execute on worker threads, where journal emission would make event
/// order depend on scheduling. Use [`simulate_obs`] on a single run when
/// per-decision records are needed.
///
/// # Panics
///
/// Panics if `config.initial_point` is out of range for the context's
/// database.
pub fn simulate_replications<P, F>(
    ctx: &RuntimeContext<'_>,
    make_policy: F,
    qos: &QosVariationModel,
    config: &SimConfig,
    replications: usize,
    threads: usize,
) -> Vec<SimResult>
where
    P: RuntimePolicy,
    F: Fn(usize) -> P + Sync,
{
    let indices: Vec<usize> = (0..replications).collect();
    clr_par::par_map(threads, &indices, |_, &r| {
        let mut policy = make_policy(r);
        let replication = SimConfig {
            seed: clr_par::derive_seed(config.seed, r as u64),
            ..*config
        };
        simulate(ctx, &mut policy, qos, &replication)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UraPolicy;
    use clr_dse::{explore_based, DesignPointDb, DseConfig, ExplorationMode};
    use clr_moea::GaParams;
    use clr_platform::Platform;
    use clr_reliability::{ConfigSpace, FaultModel};
    use clr_taskgraph::{TgffConfig, TgffGenerator};

    fn fixture(seed: u64) -> (clr_taskgraph::TaskGraph, Platform, DesignPointDb) {
        let graph = TgffGenerator::new(TgffConfig::with_tasks(10)).generate(seed);
        let platform = Platform::dac19();
        let cfg = DseConfig {
            ga: GaParams::small(),
            mode: ExplorationMode::Full,
            reference: None,
            max_points: None,
        };
        let db = explore_based(
            &graph,
            &platform,
            FaultModel::default(),
            ConfigSpace::fine(),
            &cfg,
            seed,
        );
        (graph, platform, db)
    }

    #[test]
    fn simulation_is_deterministic_per_seed() {
        let (g, p, db) = fixture(31);
        let ctx = RuntimeContext::new(&g, &p, &db);
        let qos = QosVariationModel::calibrated(&db, 0.25, 0.3);
        let mut pol1 = UraPolicy::new(0.5).unwrap();
        let mut pol2 = UraPolicy::new(0.5).unwrap();
        let a = simulate(&ctx, &mut pol1, &qos, &SimConfig::quick(1));
        let b = simulate(&ctx, &mut pol2, &qos, &SimConfig::quick(1));
        assert_eq!(a, b);
    }

    #[test]
    fn serial_and_parallel_replications_are_bit_identical() {
        let (g, p, db) = fixture(37);
        let ctx = RuntimeContext::new(&g, &p, &db);
        let qos = QosVariationModel::calibrated(&db, 0.25, 0.3);
        let cfg = SimConfig::quick(11);
        let run = |threads: usize| {
            simulate_replications(
                &ctx,
                |_| UraPolicy::new(0.5).unwrap(),
                &qos,
                &cfg,
                6,
                threads,
            )
        };
        let serial = run(1);
        let parallel = run(4);
        assert_eq!(serial, parallel);
        // Replications use decorrelated derived streams, not copies.
        assert!(serial.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn event_count_tracks_mean_gap() {
        let (g, p, db) = fixture(32);
        let ctx = RuntimeContext::new(&g, &p, &db);
        let qos = QosVariationModel::calibrated(&db, 0.25, 0.3);
        let mut pol = UraPolicy::new(0.5).unwrap();
        let cfg = SimConfig::quick(2); // 20k cycles, mean gap 100 → ~200 events
        let r = simulate(&ctx, &mut pol, &qos, &cfg);
        assert!((150..=260).contains(&r.events), "events {}", r.events);
        assert!(r.reconfigurations <= r.events);
    }

    #[test]
    fn p_rc_zero_reconfigures_less_than_p_rc_one() {
        let (g, p, db) = fixture(33);
        let ctx = RuntimeContext::new(&g, &p, &db);
        let qos = QosVariationModel::calibrated(&db, 0.25, 0.3);
        let cfg = SimConfig::quick(3);
        let mut lazy = UraPolicy::new(0.0).unwrap();
        let mut eager = UraPolicy::new(1.0).unwrap();
        let r_lazy = simulate(&ctx, &mut lazy, &qos, &cfg);
        let r_eager = simulate(&ctx, &mut eager, &qos, &cfg);
        assert!(
            r_lazy.total_reconfig_cost <= r_eager.total_reconfig_cost,
            "lazy {} vs eager {}",
            r_lazy.total_reconfig_cost,
            r_eager.total_reconfig_cost
        );
        // ... and the eager policy buys at-most-equal energy.
        assert!(r_eager.avg_energy <= r_lazy.avg_energy + 1e-9);
    }

    #[test]
    fn decision_work_scales_with_db_and_events() {
        let (g, p, db) = fixture(36);
        let ctx = RuntimeContext::new(&g, &p, &db);
        let qos = QosVariationModel::calibrated(&db, 0.25, 0.3);
        let mut pol = UraPolicy::new(0.5).unwrap();
        let r = simulate(&ctx, &mut pol, &qos, &SimConfig::quick(7));
        assert_eq!(r.decision_work, r.events as u64 * db.len() as u64);
    }

    #[test]
    fn trace_is_capped() {
        let (g, p, db) = fixture(34);
        let ctx = RuntimeContext::new(&g, &p, &db);
        let qos = QosVariationModel::calibrated(&db, 0.25, 0.3);
        let mut pol = UraPolicy::new(0.5).unwrap();
        let r = simulate(&ctx, &mut pol, &qos, &SimConfig::quick(4).with_trace(50));
        assert!(r.trace().len() <= 50);
        assert!(!r.trace().is_empty());
        // Trace times are increasing.
        for w in r.trace().windows(2) {
            assert!(w[1].time > w[0].time);
        }
    }

    #[test]
    fn trace_ring_buffer_keeps_the_last_records() {
        let (g, p, db) = fixture(38);
        let ctx = RuntimeContext::new(&g, &p, &db);
        let qos = QosVariationModel::calibrated(&db, 0.25, 0.3);
        let full = simulate(
            &ctx,
            &mut UraPolicy::new(0.5).unwrap(),
            &qos,
            &SimConfig::quick(6).with_trace(usize::MAX),
        );
        assert!(full.trace().len() > 10, "need overflow for this test");
        let capped = simulate(
            &ctx,
            &mut UraPolicy::new(0.5).unwrap(),
            &qos,
            &SimConfig::quick(6).with_trace(10),
        );
        // Overflow evicts the oldest records: the capped trace is exactly
        // the tail of the full trace.
        assert_eq!(
            capped.trace(),
            &full.trace()[full.trace().len() - 10..],
            "ring buffer must keep the last N records"
        );
    }

    #[test]
    fn max_trace_zero_keeps_nothing() {
        let (g, p, db) = fixture(39);
        let ctx = RuntimeContext::new(&g, &p, &db);
        let qos = QosVariationModel::calibrated(&db, 0.25, 0.3);
        let r = simulate(
            &ctx,
            &mut UraPolicy::new(0.5).unwrap(),
            &qos,
            &SimConfig::quick(8).with_trace(0),
        );
        assert!(r.events > 0);
        assert!(r.trace().is_empty());
    }

    #[test]
    fn obs_journals_one_decision_per_event_and_sim_bracketing() {
        use clr_obs::{Event, Obs, ObsMode};
        let (g, p, db) = fixture(40);
        let ctx = RuntimeContext::new(&g, &p, &db);
        let qos = QosVariationModel::calibrated(&db, 0.25, 0.3);
        let obs = Obs::new(ObsMode::Json);
        let mut pol = UraPolicy::new(0.5).unwrap();
        let r = simulate_obs(&ctx, &mut pol, &qos, &SimConfig::quick(9), &obs, "unit");
        let events = obs.det_events();
        let decisions: Vec<&Event> = events
            .iter()
            .filter(|e| matches!(e, Event::Decision { .. }))
            .collect();
        assert_eq!(decisions.len(), r.events, "one decision record per event");
        for e in &decisions {
            let Event::Decision {
                to, score, p_rc, ..
            } = e
            else {
                unreachable!()
            };
            assert!(*to < db.len());
            // uRA exposes both its winning score and its p_RC parameter.
            assert!(p_rc == &Some(0.5));
            assert!(score.is_some() || matches!(e, Event::Decision { violated: true, .. }));
        }
        assert!(matches!(events.first(), Some(Event::SimStart { .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e, Event::SimEnd { events, .. } if *events == r.events)));
        // Instrumentation must not perturb the simulation itself.
        let mut pol2 = UraPolicy::new(0.5).unwrap();
        let plain = simulate(&ctx, &mut pol2, &qos, &SimConfig::quick(9));
        assert_eq!(plain, r);
    }

    #[test]
    fn simulate_checked_rejects_bad_initial_points() {
        let (g, p, db) = fixture(41);
        let ctx = RuntimeContext::new(&g, &p, &db);
        let qos = QosVariationModel::calibrated(&db, 0.25, 0.3);
        let mut pol = UraPolicy::new(0.5).unwrap();
        let bad = SimConfig {
            initial_point: db.len(),
            ..SimConfig::quick(1)
        };
        assert_eq!(
            simulate_checked(&ctx, &mut pol, &qos, &bad).unwrap_err(),
            crate::RuntimeError::BadInitialPoint {
                index: db.len(),
                len: db.len()
            }
        );
        let good = simulate_checked(&ctx, &mut pol, &qos, &SimConfig::quick(1)).unwrap();
        assert!(good.events > 0);
    }

    #[test]
    fn avg_energy_is_within_db_range() {
        let (g, p, db) = fixture(35);
        let ctx = RuntimeContext::new(&g, &p, &db);
        let qos = QosVariationModel::calibrated(&db, 0.25, 0.3);
        let mut pol = UraPolicy::new(0.7).unwrap();
        let r = simulate(&ctx, &mut pol, &qos, &SimConfig::quick(5));
        let min = db
            .iter()
            .map(|p| p.metrics.energy)
            .fold(f64::INFINITY, f64::min);
        let max = db.iter().map(|p| p.metrics.energy).fold(0.0f64, f64::max);
        assert!(r.avg_energy >= min - 1e-9 && r.avg_energy <= max + 1e-9);
    }
}
