//! Shared run-time adaptation context: the stored database plus
//! pre-computed reconfiguration distances and normalisers.

use std::borrow::Cow;

use clr_dse::{DesignPointDb, FeasibilityIndex, QosSpec};
use clr_platform::Platform;
use clr_sched::reconfiguration_cost;
use clr_stats::Normalizer;
use clr_taskgraph::TaskGraph;

use crate::RuntimeError;

/// Pre-computed run-time state: the pairwise `dRC` matrix between stored
/// design points, the min–max normalisers Algorithm 1 applies to `R(p)`
/// and `dRC(p)`, and a [`FeasibilityIndex`] answering the `FEAS` filter
/// in O(log n + k) instead of a per-event linear scan.
///
/// The matrix makes each adaptation decision O(|DB|) instead of
/// O(|DB| · |tasks|), which is what lets the Monte-Carlo evaluation run
/// for a million application cycles.
#[derive(Debug, Clone)]
pub struct RuntimeContext<'a> {
    /// Borrowed for the common load-once serve path; owned
    /// (`RuntimeContext<'static>`) when a database is hot-swapped in at
    /// run time and must outlive whatever produced it.
    db: Cow<'a, DesignPointDb>,
    index: FeasibilityIndex,
    /// `drc[from][to]`.
    drc: Vec<Vec<f64>>,
    energy_norm: Normalizer,
    drc_norm: Normalizer,
}

impl<'a> RuntimeContext<'a> {
    /// Builds the context for a stored database on its graph/platform.
    ///
    /// # Panics
    ///
    /// Panics where [`RuntimeContext::try_new`] would error — prefer
    /// `try_new` when the database comes from external input (a loaded
    /// snapshot, a decoded artifact) so the failure can flow into the
    /// serve path's degradation ladder instead of aborting the process.
    pub fn new(graph: &TaskGraph, platform: &Platform, db: &'a DesignPointDb) -> Self {
        Self::try_new(graph, platform, db).unwrap_or_else(|e| panic!("invalid runtime inputs: {e}"))
    }

    /// Builds the context, reporting invalid inputs as a typed
    /// [`RuntimeError`] instead of panicking.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::EmptyDatabase`] for an empty database and
    /// [`RuntimeError::NonFiniteMetric`] when a stored energy or a derived
    /// reconfiguration cost is not finite.
    pub fn try_new(
        graph: &TaskGraph,
        platform: &Platform,
        db: &'a DesignPointDb,
    ) -> Result<Self, RuntimeError> {
        Self::try_from_cow(graph, platform, Cow::Borrowed(db))
    }

    /// Builds a context that **owns** its database — the hot-swap path:
    /// a freshly pulled snapshot has no owner to borrow from, so the
    /// context takes the database by value and the result is
    /// `RuntimeContext<'static>` (it coerces into any shorter lifetime).
    ///
    /// # Errors
    ///
    /// As [`RuntimeContext::try_new`].
    pub fn try_new_owned(
        graph: &TaskGraph,
        platform: &Platform,
        db: DesignPointDb,
    ) -> Result<RuntimeContext<'static>, RuntimeError> {
        RuntimeContext::try_from_cow(graph, platform, Cow::Owned(db))
    }

    fn try_from_cow(
        graph: &TaskGraph,
        platform: &Platform,
        db: Cow<'a, DesignPointDb>,
    ) -> Result<Self, RuntimeError> {
        if db.is_empty() {
            return Err(RuntimeError::EmptyDatabase);
        }
        let points = db.points();
        let n = points.len();
        let mut drc = vec![vec![0.0f64; n]; n];
        let mut max_drc = 0.0f64;
        for (i, row) in drc.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                if i == j {
                    continue;
                }
                let c =
                    reconfiguration_cost(graph, platform, &points[i].mapping, &points[j].mapping)
                        .total();
                if !c.is_finite() {
                    return Err(RuntimeError::NonFiniteMetric {
                        what: format!("dRC({i},{j})"),
                    });
                }
                *cell = c;
                if c > max_drc {
                    max_drc = c;
                }
            }
        }
        let energy_norm = Normalizer::from_values(db.iter().map(|p| p.metrics.energy)).ok_or(
            RuntimeError::NonFiniteMetric {
                what: "energy".to_string(),
            },
        )?;
        // A single-point database (or identical-cost points) gives a
        // degenerate [0, 0] range; `Normalizer` maps it to 0 rather than
        // dividing by zero.
        let drc_norm = Normalizer::new(0.0, max_drc).ok_or(RuntimeError::NonFiniteMetric {
            what: "dRC range".to_string(),
        })?;
        let index = FeasibilityIndex::new(db.as_ref());
        Ok(Self {
            db,
            index,
            drc,
            energy_norm,
            drc_norm,
        })
    }

    /// The stored database.
    pub fn db(&self) -> &DesignPointDb {
        &self.db
    }

    /// Number of stored design points (= RL states).
    pub fn len(&self) -> usize {
        self.db.len()
    }

    /// `true` if the database holds no points (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.db.is_empty()
    }

    /// Reconfiguration cost of moving from point `from` to point `to`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn drc(&self, from: usize, to: usize) -> f64 {
        self.drc[from][to]
    }

    /// Normalised (0–1) reconfiguration cost.
    pub fn norm_drc(&self, from: usize, to: usize) -> f64 {
        self.drc_norm.normalize(self.drc[from][to])
    }

    /// Normalised (0–1) performance `R(p) = −J(p)`: 1 is the *best*
    /// (lowest-energy) stored point.
    ///
    /// When every stored point has the same energy (`max == min`, e.g. a
    /// single-point database) the score is `0.0` for all points — the
    /// candidates are indistinguishable on performance and must not inject
    /// NaN/inf into [`ura_argmax`](crate::UraPolicy).
    pub fn norm_performance(&self, point: usize) -> f64 {
        if self.energy_norm.max() <= self.energy_norm.min() {
            return 0.0;
        }
        let Some(p) = self.db.get(point) else {
            // Out-of-range indices score as worst-performance rather than
            // panicking mid-decision; the caller's feasible sets only
            // contain valid indices, so this is unreachable in practice.
            return 0.0;
        };
        1.0 - self.energy_norm.normalize(p.metrics.energy)
    }

    /// Indices of points satisfying `spec` (Algorithm 1's `FEAS`),
    /// ascending — answered through the [`FeasibilityIndex`], which is
    /// property-tested to return exactly the linear scan's index set.
    pub fn feasible(&self, spec: &QosSpec) -> Vec<usize> {
        self.index.query(spec)
    }

    /// [`feasible`](Self::feasible) into a caller-owned buffer (cleared
    /// first), so per-event hot loops reuse one allocation across the
    /// whole event stream instead of allocating a fresh `Vec` per query.
    pub fn feasible_into(&self, spec: &QosSpec, out: &mut Vec<usize>) {
        self.index.query_into(spec, out);
    }

    /// The feasibility index over the stored database.
    pub fn feasibility_index(&self) -> &FeasibilityIndex {
        &self.index
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clr_dse::{explore_based, DseConfig, ExplorationMode};
    use clr_moea::GaParams;
    use clr_reliability::{ConfigSpace, FaultModel};
    use clr_taskgraph::{TgffConfig, TgffGenerator};

    fn fixture() -> (clr_taskgraph::TaskGraph, Platform, DesignPointDb) {
        let graph = TgffGenerator::new(TgffConfig::with_tasks(8)).generate(17);
        let platform = Platform::dac19();
        let cfg = DseConfig {
            ga: GaParams::small(),
            mode: ExplorationMode::Full,
            reference: None,
            max_points: None,
        };
        let db = explore_based(
            &graph,
            &platform,
            FaultModel::default(),
            ConfigSpace::fine(),
            &cfg,
            17,
        );
        (graph, platform, db)
    }

    #[test]
    fn diagonal_is_free_and_matrix_is_nonnegative() {
        let (g, p, db) = fixture();
        let ctx = RuntimeContext::new(&g, &p, &db);
        for i in 0..ctx.len() {
            assert_eq!(ctx.drc(i, i), 0.0);
            for j in 0..ctx.len() {
                assert!(ctx.drc(i, j) >= 0.0);
                assert!((0.0..=1.0).contains(&ctx.norm_drc(i, j)));
            }
        }
    }

    #[test]
    fn best_energy_point_has_unit_performance() {
        let (g, p, db) = fixture();
        let ctx = RuntimeContext::new(&g, &p, &db);
        let best = (0..db.len())
            .min_by(|&a, &b| {
                db.get(a)
                    .unwrap()
                    .metrics
                    .energy
                    .total_cmp(&db.get(b).unwrap().metrics.energy)
            })
            .unwrap();
        assert!((ctx.norm_performance(best) - 1.0).abs() < 1e-12);
        for i in 0..ctx.len() {
            assert!((0.0..=1.0).contains(&ctx.norm_performance(i)));
        }
    }

    #[test]
    fn single_point_db_has_zero_norms() {
        // Degenerate feasible set: one stored point, so both the energy
        // range and the dRC range collapse to a single value. All
        // normalised scores must be exactly 0, never NaN or inf.
        let (g, p, db) = fixture();
        let mut single = DesignPointDb::new("single");
        single.push(db.get(0).unwrap().clone());
        let ctx = RuntimeContext::new(&g, &p, &single);
        assert_eq!(ctx.norm_performance(0), 0.0);
        assert_eq!(ctx.norm_drc(0, 0), 0.0);
    }

    #[test]
    fn feasible_matches_db_filter() {
        let (g, p, db) = fixture();
        let ctx = RuntimeContext::new(&g, &p, &db);
        let spec = QosSpec::new(f64::INFINITY, 0.0);
        assert_eq!(ctx.feasible(&spec).len(), db.len());
    }

    #[test]
    fn try_new_reports_empty_databases_as_typed_errors() {
        let (g, p, _db) = fixture();
        let empty = DesignPointDb::new("empty");
        assert_eq!(
            RuntimeContext::try_new(&g, &p, &empty).unwrap_err(),
            RuntimeError::EmptyDatabase
        );
    }

    #[test]
    fn indexed_feasible_equals_linear_scan_exactly() {
        let (g, p, db) = fixture();
        let ctx = RuntimeContext::new(&g, &p, &db);
        let mut makespans: Vec<f64> = db.iter().map(|p| p.metrics.makespan).collect();
        makespans.sort_by(f64::total_cmp);
        let mut buf = Vec::new();
        for &s_max in &makespans {
            for f_min in [0.0, 0.5, 0.9, 0.99, 1.0] {
                let spec = QosSpec::new(s_max, f_min);
                assert_eq!(ctx.feasible(&spec), db.feasible_indices(&spec));
                ctx.feasible_into(&spec, &mut buf);
                assert_eq!(buf, db.feasible_indices(&spec));
            }
        }
    }
}
