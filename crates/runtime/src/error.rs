//! Typed construction/validation errors for the run-time layer.

use std::fmt;

/// Why a runtime structure could not be built or a run could not start.
///
/// The serve path routes these into its degradation ladder instead of
/// panicking: a tenant whose context cannot be built is quarantined, not
/// a process abort.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RuntimeError {
    /// The database holds no points — there is nothing to adapt over.
    EmptyDatabase,
    /// A stored metric (or a derived quantity) is non-finite.
    NonFiniteMetric {
        /// Which quantity, e.g. `"energy"` or `"dRC(2,5)"`.
        what: String,
    },
    /// The requested initial operating point is out of range.
    BadInitialPoint {
        /// The requested index.
        index: usize,
        /// Number of stored points.
        len: usize,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyDatabase => write!(f, "runtime context needs a non-empty database"),
            Self::NonFiniteMetric { what } => write!(f, "non-finite {what} in stored database"),
            Self::BadInitialPoint { index, len } => {
                write!(f, "initial point {index} out of range ({len} stored)")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}
