//! The purely performance/hyper-volume-oriented baseline policy.
//!
//! Paper §5.2 attributes BaseD's higher run-time cost to "the search for
//! the best hyper-volume design point for every change in QoS
//! requirements": on each event the baseline moves to the feasible stored
//! point sweeping the largest area w.r.t. the new requirement, regardless
//! of the migration this causes. This is the behaviour of the
//! state-of-the-art hybrid remapping of Rehman et al.\ (ref.\ 11) that Tables 4–6
//! compare against.

use clr_dse::QosSpec;
use clr_moea::signed_hypervolume_fitness;
use serde::{Deserialize, Serialize};

use crate::sim::{DecisionInput, DecisionOutcome, RuntimePolicy};
use crate::RuntimeContext;

/// Baseline policy: reconfigure to the feasible point with the largest
/// hyper-volume w.r.t. the event's QoS requirement (ties broken toward the
/// lower index).
///
/// # Examples
///
/// ```
/// use clr_runtime::HvPolicy;
/// let p = HvPolicy::new();
/// assert_eq!(p, HvPolicy::default());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct HvPolicy;

impl HvPolicy {
    /// Creates the baseline policy.
    pub fn new() -> Self {
        Self
    }

    /// Selects the feasible point with maximum hyper-volume fitness w.r.t.
    /// the requirement `(S_SPEC, max error rate)`, or `None` when nothing
    /// is feasible.
    pub fn select(&self, ctx: &RuntimeContext<'_>, spec: &QosSpec) -> Option<usize> {
        self.select_from(ctx, spec, &ctx.feasible(spec))
    }

    /// [`select`](Self::select) over a feasible set the caller already
    /// computed (exactly `ctx.feasible(spec)`).
    pub fn select_from(
        &self,
        ctx: &RuntimeContext<'_>,
        spec: &QosSpec,
        feasible: &[usize],
    ) -> Option<usize> {
        let reference = [spec.max_makespan, spec.max_error_rate()];
        feasible
            .iter()
            .copied()
            .filter_map(|p| {
                let m = &ctx.db().get(p)?.metrics;
                let fit = signed_hypervolume_fitness(&[m.makespan, m.error_rate()], &reference);
                Some((p, fit))
            })
            .max_by(|a, b| a.1.total_cmp(&b.1).then(b.0.cmp(&a.0)))
            .map(|(p, _)| p)
    }
}

impl RuntimePolicy for HvPolicy {
    fn decide(&mut self, input: &DecisionInput<'_, '_>) -> DecisionOutcome {
        DecisionOutcome::bare(self.select_from(input.ctx, input.spec, input.feasible))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clr_dse::{explore_based, DseConfig, ExplorationMode};
    use clr_moea::GaParams;
    use clr_platform::Platform;
    use clr_reliability::{ConfigSpace, FaultModel};
    use clr_taskgraph::{TgffConfig, TgffGenerator};

    #[test]
    fn baseline_ignores_current_point() {
        let graph = TgffGenerator::new(TgffConfig::with_tasks(10)).generate(51);
        let platform = Platform::dac19();
        let cfg = DseConfig {
            ga: GaParams::small(),
            mode: ExplorationMode::Csp,
            reference: None,
            max_points: None,
        };
        let db = explore_based(
            &graph,
            &platform,
            FaultModel::default(),
            ConfigSpace::fine(),
            &cfg,
            51,
        );
        let ctx = RuntimeContext::new(&graph, &platform, &db);
        let spec = QosSpec::new(f64::INFINITY, 0.0);
        let feasible = ctx.feasible(&spec);
        let mut p = HvPolicy::new();
        let choice0 = p
            .decide(&DecisionInput {
                ctx: &ctx,
                current: 0,
                spec: &spec,
                feasible: &feasible,
            })
            .choice;
        let choice_last = p
            .decide(&DecisionInput {
                ctx: &ctx,
                current: db.len() - 1,
                spec: &spec,
                feasible: &feasible,
            })
            .choice;
        assert_eq!(choice0, choice_last);
        assert!(choice0.is_some());
    }

    #[test]
    fn infeasible_spec_returns_none() {
        let graph = TgffGenerator::new(TgffConfig::with_tasks(8)).generate(52);
        let platform = Platform::dac19();
        let cfg = DseConfig {
            ga: GaParams::small(),
            mode: ExplorationMode::Csp,
            reference: None,
            max_points: None,
        };
        let db = explore_based(
            &graph,
            &platform,
            FaultModel::default(),
            ConfigSpace::fine(),
            &cfg,
            52,
        );
        let ctx = RuntimeContext::new(&graph, &platform, &db);
        assert_eq!(HvPolicy::new().select(&ctx, &QosSpec::new(0.0, 1.0)), None);
    }
}
