//! User-modulated run-time adaptation — uRA (paper Algorithm 1).

use clr_dse::QosSpec;
use serde::{Deserialize, Serialize};

use crate::sim::{DecisionInput, DecisionOutcome, RuntimePolicy};
use crate::RuntimeContext;

/// The uRA policy of Algorithm 1.
///
/// On each discrete event the feasible stored points are scored by
///
/// ```text
/// RET(p) = p_RC · norm(R(p)) − (1 − p_RC) · norm(dRC(current → p))
/// ```
///
/// and the system reconfigures to the arg-max. The user parameter
/// `p_RC ∈ [0, 1]` trades performance improvement (`p_RC = 1`, the
/// baseline behaviour of purely performance-oriented hybrid remapping)
/// against reconfiguration cost (`p_RC = 0`, where staying put — `dRC = 0`
/// — wins whenever the current point still meets the QoS requirement).
///
/// # Examples
///
/// ```
/// use clr_runtime::UraPolicy;
/// assert!(UraPolicy::new(0.5).is_ok());
/// assert!(UraPolicy::new(1.5).is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UraPolicy {
    p_rc: f64,
}

impl UraPolicy {
    /// Creates a uRA policy with the given user modulation parameter.
    ///
    /// # Errors
    ///
    /// Returns the offending value if `p_rc` is outside `[0, 1]`.
    pub fn new(p_rc: f64) -> Result<Self, f64> {
        if (0.0..=1.0).contains(&p_rc) {
            Ok(Self { p_rc })
        } else {
            Err(p_rc)
        }
    }

    /// The user modulation parameter.
    pub fn p_rc(&self) -> f64 {
        self.p_rc
    }

    /// Algorithm 1, lines 3–11: returns the selected design-point index,
    /// or `None` when no stored point satisfies the requirement (the
    /// system then keeps its current configuration).
    pub fn select(
        &self,
        ctx: &RuntimeContext<'_>,
        current: usize,
        spec: &QosSpec,
    ) -> Option<usize> {
        let feas = ctx.feasible(spec);
        ura_argmax(ctx, current, &feas, self.p_rc, |_| 0.0, 0.0).map(|(p, _)| p)
    }
}

/// Shared arg-max of Algorithm 1's scoring loop, parameterised by a state
/// value function so AuRA (`score += γ·V(p)`) reuses it; uRA passes
/// `γ = 0`. Returns the winner and its `RET` score (surfaced in journal
/// decision records).
///
/// Public so external learners (clr-learn's shadow evaluation) score
/// candidates with *exactly* the live tie-breaking: equal-RET candidates
/// resolve toward the better performer, then the lower index.
pub fn ura_argmax(
    ctx: &RuntimeContext<'_>,
    current: usize,
    feasible: &[usize],
    p_rc: f64,
    value: impl Fn(usize) -> f64,
    gamma: f64,
) -> Option<(usize, f64)> {
    feasible
        .iter()
        .copied()
        .map(|p| {
            let ret = p_rc * ctx.norm_performance(p) - (1.0 - p_rc) * ctx.norm_drc(current, p)
                + gamma * value(p);
            (p, ret, ctx.norm_performance(p))
        })
        .max_by(|a, b| {
            // Equal-RET candidates (e.g. several zero-dRC moves at
            // p_RC = 0 — points differing only in CLR configuration
            // are free to switch between) resolve toward the better
            // performer, then the lower index for determinism.
            a.1.total_cmp(&b.1)
                .then(a.2.total_cmp(&b.2))
                .then(b.0.cmp(&a.0))
        })
        .map(|(p, ret, _)| (p, ret))
}

impl RuntimePolicy for UraPolicy {
    fn decide(&mut self, input: &DecisionInput<'_, '_>) -> DecisionOutcome {
        match ura_argmax(
            input.ctx,
            input.current,
            input.feasible,
            self.p_rc,
            |_| 0.0,
            0.0,
        ) {
            Some((p, ret)) => DecisionOutcome {
                choice: Some(p),
                score: Some(ret),
                p_rc: Some(self.p_rc),
            },
            None => DecisionOutcome {
                choice: None,
                score: None,
                p_rc: Some(self.p_rc),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clr_dse::{explore_based, DseConfig, ExplorationMode};
    use clr_moea::GaParams;
    use clr_platform::Platform;
    use clr_reliability::{ConfigSpace, FaultModel};
    use clr_taskgraph::{TgffConfig, TgffGenerator};

    struct Fixture {
        graph: clr_taskgraph::TaskGraph,
        platform: Platform,
        db: clr_dse::DesignPointDb,
    }

    fn fixture(seed: u64) -> Fixture {
        let graph = TgffGenerator::new(TgffConfig::with_tasks(10)).generate(seed);
        let platform = Platform::dac19();
        let cfg = DseConfig {
            ga: GaParams::small(),
            mode: ExplorationMode::Full,
            reference: None,
            max_points: None,
        };
        let db = explore_based(
            &graph,
            &platform,
            FaultModel::default(),
            ConfigSpace::fine(),
            &cfg,
            seed,
        );
        Fixture {
            graph,
            platform,
            db,
        }
    }

    #[test]
    fn p_rc_is_validated() {
        assert_eq!(UraPolicy::new(-0.1).unwrap_err(), -0.1);
        assert_eq!(UraPolicy::new(0.7).unwrap().p_rc(), 0.7);
    }

    #[test]
    fn infeasible_spec_returns_none() {
        let f = fixture(21);
        let ctx = RuntimeContext::new(&f.graph, &f.platform, &f.db);
        let impossible = QosSpec::new(0.0, 1.0);
        assert_eq!(
            UraPolicy::new(0.5).unwrap().select(&ctx, 0, &impossible),
            None
        );
    }

    #[test]
    fn p_rc_one_picks_best_performance() {
        let f = fixture(22);
        let ctx = RuntimeContext::new(&f.graph, &f.platform, &f.db);
        let spec = QosSpec::new(f64::INFINITY, 0.0); // everything feasible
        let chosen = UraPolicy::new(1.0).unwrap().select(&ctx, 0, &spec).unwrap();
        let best = (0..f.db.len())
            .min_by(|&a, &b| {
                f.db.get(a)
                    .unwrap()
                    .metrics
                    .energy
                    .total_cmp(&f.db.get(b).unwrap().metrics.energy)
            })
            .unwrap();
        assert_eq!(
            f.db.get(chosen).unwrap().metrics.energy,
            f.db.get(best).unwrap().metrics.energy
        );
    }

    #[test]
    fn p_rc_zero_stays_when_current_is_feasible() {
        let f = fixture(23);
        let ctx = RuntimeContext::new(&f.graph, &f.platform, &f.db);
        let spec = QosSpec::new(f64::INFINITY, 0.0);
        for current in 0..f.db.len() {
            let chosen = UraPolicy::new(0.0)
                .unwrap()
                .select(&ctx, current, &spec)
                .unwrap();
            // Staying is free (norm_drc = 0) and maximal, so the policy
            // must pick a zero-cost destination — the current point itself
            // unless another point is also zero-dRC away.
            assert_eq!(ctx.drc(current, chosen), 0.0);
        }
    }

    #[test]
    fn single_point_feasible_set_is_well_defined() {
        // Regression: with a one-point database the energy and dRC ranges
        // are degenerate (max == min). The normalisers must yield 0 (not
        // NaN/inf) so the arg-max still selects the lone feasible point,
        // at every p_RC setting.
        let f = fixture(25);
        let mut single = clr_dse::DesignPointDb::new("single");
        single.push(f.db.get(0).unwrap().clone());
        let ctx = RuntimeContext::new(&f.graph, &f.platform, &single);
        let spec = QosSpec::new(f64::INFINITY, 0.0);
        for p_rc in [0.0, 0.5, 1.0] {
            let chosen = UraPolicy::new(p_rc).unwrap().select(&ctx, 0, &spec);
            assert_eq!(chosen, Some(0), "p_rc = {p_rc}");
        }
    }

    #[test]
    fn selection_respects_feasibility_filter() {
        let f = fixture(24);
        let ctx = RuntimeContext::new(&f.graph, &f.platform, &f.db);
        // Tight spec: only some points feasible. Use a spec around the
        // median point.
        let mut makespans: Vec<f64> = f.db.iter().map(|p| p.metrics.makespan).collect();
        makespans.sort_by(f64::total_cmp);
        let spec = QosSpec::new(makespans[makespans.len() / 2], 0.0);
        let feas = ctx.feasible(&spec);
        if feas.is_empty() {
            return;
        }
        let chosen = UraPolicy::new(0.8).unwrap().select(&ctx, 0, &spec).unwrap();
        assert!(feas.contains(&chosen));
        assert!(f.db.get(chosen).unwrap().satisfies(&spec));
    }
}
