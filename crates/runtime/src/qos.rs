//! QoS-requirement variation: the discrete-event workload of the
//! Monte-Carlo evaluation (paper §5.1).
//!
//! "Bivariate Gaussian and exponential distributions, with a rate of 100
//! cycles, were used ... for emulating changes in QoS specification and
//! the time between discrete events respectively."

use clr_dse::{DesignPointDb, QosSpec};
use clr_stats::{BivariateNormal, Exponential, Summary};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// How successive QoS requirements relate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VariationMode {
    /// Each event draws an independent requirement from the bivariate
    /// Gaussian (the distribution *of* the requirement).
    Independent,
    /// Each event adds a zero-mean bivariate-Gaussian *change* to the
    /// previous requirement (the distribution of the *changes*, matching
    /// the paper's "emulating changes in QoS specification"), reflected at
    /// the achievable bounds. Requirements then drift with temporal
    /// structure — the regime in which learned value functions (AuRA)
    /// pay off over myopic adaptation.
    RandomWalk,
}

/// The bivariate-Gaussian model of QoS-requirement variation.
///
/// Axis 0 is the maximum acceptable makespan `S_SPEC`, axis 1 the minimum
/// acceptable reliability `F_SPEC`; samples are clamped into sane bounds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QosVariationModel {
    /// Independent mode: the requirement distribution. Walk mode: the mean
    /// is the walk's starting requirement, the σ/ρ describe the steps.
    dist: BivariateNormal,
    mode: VariationMode,
    /// Reflection bounds of the random walk (makespan axis).
    bounds_s: (f64, f64),
    /// Reflection bounds of the random walk (reliability axis).
    bounds_f: (f64, f64),
}

impl QosVariationModel {
    /// Creates an independent-sampling model from explicit
    /// means/std-devs/correlation.
    ///
    /// # Panics
    ///
    /// Panics if the distribution parameters are invalid (negative σ or
    /// |ρ| > 1) — these are experiment-configuration bugs.
    pub fn new(
        mean_makespan: f64,
        std_makespan: f64,
        mean_reliability: f64,
        std_reliability: f64,
        correlation: f64,
    ) -> Self {
        let dist = BivariateNormal::new(
            [mean_makespan, mean_reliability],
            [std_makespan, std_reliability],
            correlation,
        )
        .expect("qos variation parameters must be valid");
        Self {
            dist,
            mode: VariationMode::Independent,
            bounds_s: (0.0, f64::MAX),
            bounds_f: (0.0, 1.0),
        }
    }

    /// Creates a random-walk model: requirements start at
    /// `(start_makespan, start_reliability)` and change by zero-mean
    /// Gaussian steps, reflected into the given per-axis bounds.
    ///
    /// # Panics
    ///
    /// Panics if the step parameters are invalid or a bound interval is
    /// empty.
    pub fn random_walk(
        start: [f64; 2],
        step_std: [f64; 2],
        correlation: f64,
        bounds_s: (f64, f64),
        bounds_f: (f64, f64),
    ) -> Self {
        assert!(bounds_s.0 < bounds_s.1, "empty makespan bounds");
        assert!(bounds_f.0 < bounds_f.1, "empty reliability bounds");
        let dist = BivariateNormal::new(start, step_std, correlation)
            .expect("qos walk parameters must be valid");
        Self {
            dist,
            mode: VariationMode::RandomWalk,
            bounds_s,
            bounds_f,
        }
    }

    /// Calibrates an independent-sampling model against a stored database
    /// so that sampled requirements land around the achievable QoS region:
    /// the strict (worst-case) requirements live in the ~2σ tail,
    /// mirroring the paper's worst-case provisioning argument.
    ///
    /// # Panics
    ///
    /// Panics if the database is empty.
    pub fn calibrated(db: &DesignPointDb, sigma_frac: f64, correlation: f64) -> Self {
        let (makespans, rels, span_s, span_f) = db_spans(db);
        Self::new(
            makespans.mean + 0.10 * span_s,
            sigma_frac * span_s,
            rels.mean - 0.10 * span_f,
            sigma_frac * span_f,
            correlation,
        )
    }

    /// Calibrates a random-walk model against a stored database: the walk
    /// starts at the centre of the achievable region, steps are
    /// `sigma_frac` of the spans, and the walk reflects at the region's
    /// edges (slightly padded so both very lax and just-unreachable
    /// requirements occur).
    ///
    /// # Panics
    ///
    /// Panics if the database is empty.
    pub fn calibrated_walk(db: &DesignPointDb, sigma_frac: f64, correlation: f64) -> Self {
        let (makespans, rels, span_s, span_f) = db_spans(db);
        Self::random_walk(
            [makespans.mean + 0.10 * span_s, rels.mean - 0.10 * span_f],
            [sigma_frac * span_s, sigma_frac * span_f],
            correlation,
            (makespans.min - 0.10 * span_s, makespans.max + 0.50 * span_s),
            (
                (rels.min - 0.50 * span_f).max(0.0),
                (rels.max + 0.02 * span_f).min(1.0),
            ),
        )
    }

    /// The variation mode.
    pub fn mode(&self) -> VariationMode {
        self.mode
    }

    /// Draws the next QoS requirement, advancing `state` (the previous
    /// requirement pair; pass `None` initially).
    pub fn next(&self, state: &mut Option<[f64; 2]>, rng: &mut StdRng) -> QosSpec {
        match self.mode {
            VariationMode::Independent => {
                let [s, f] = self.dist.sample(rng);
                QosSpec::new(s, f).clamped()
            }
            VariationMode::RandomWalk => {
                let current = state.unwrap_or(self.dist.mean());
                let step = {
                    // Steps are zero-mean: subtract the stored start.
                    let [ds, df] = self.dist.sample(rng);
                    let mean = self.dist.mean();
                    [ds - mean[0], df - mean[1]]
                };
                let s = reflect(current[0] + step[0], self.bounds_s.0, self.bounds_s.1);
                let f = reflect(current[1] + step[1], self.bounds_f.0, self.bounds_f.1);
                *state = Some([s, f]);
                QosSpec::new(s, f).clamped()
            }
        }
    }

    /// Draws one requirement without walk state (independent-mode
    /// convenience; in walk mode this samples one step from the start).
    pub fn sample(&self, rng: &mut StdRng) -> QosSpec {
        let mut state = None;
        self.next(&mut state, rng)
    }

    /// The underlying bivariate distribution.
    pub fn distribution(&self) -> &BivariateNormal {
        &self.dist
    }
}

fn db_spans(db: &DesignPointDb) -> (Summary, Summary, f64, f64) {
    assert!(!db.is_empty(), "cannot calibrate against an empty database");
    let makespans = Summary::from_values(db.iter().map(|p| p.metrics.makespan));
    let rels = Summary::from_values(db.iter().map(|p| p.metrics.reliability));
    let span_s = (makespans.max - makespans.min).max(makespans.mean.abs() * 0.05 + 1e-9);
    let span_f = (rels.max - rels.min).max(1e-6);
    (makespans, rels, span_s, span_f)
}

/// Reflects `x` into `[lo, hi]` (triangle-wave folding, exact for any
/// overshoot).
fn reflect(x: f64, lo: f64, hi: f64) -> f64 {
    let width = hi - lo;
    debug_assert!(width > 0.0);
    let mut t = (x - lo).rem_euclid(2.0 * width);
    if t > width {
        t = 2.0 * width - t;
    }
    lo + t
}

/// One discrete event: a QoS-requirement change at a point in time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QosEvent {
    /// Absolute simulation time (application-cycle units).
    pub time: f64,
    /// The new requirement.
    pub spec: QosSpec,
}

/// Seeded stream of QoS-change events with exponential inter-arrival
/// times (mean 100 cycles by default, per the paper).
///
/// # Examples
///
/// ```
/// use clr_runtime::{EventStream, QosVariationModel};
/// let qos = QosVariationModel::new(100.0, 10.0, 0.95, 0.01, 0.0);
/// let mut events = EventStream::new(qos, 100.0, 7);
/// let e1 = events.next_event();
/// let e2 = events.next_event();
/// assert!(e2.time > e1.time);
/// ```
#[derive(Debug, Clone)]
pub struct EventStream {
    qos: QosVariationModel,
    gaps: Exponential,
    rng: StdRng,
    now: f64,
    state: Option<[f64; 2]>,
}

impl EventStream {
    /// Creates a stream with the given mean inter-event gap.
    ///
    /// # Panics
    ///
    /// Panics if `mean_gap <= 0`.
    pub fn new(qos: QosVariationModel, mean_gap: f64, seed: u64) -> Self {
        let gaps = Exponential::with_mean(mean_gap).expect("mean gap must be positive");
        Self {
            qos,
            gaps,
            rng: StdRng::seed_from_u64(seed ^ 0x0e57_11ea_0000_0001),
            now: 0.0,
            state: None,
        }
    }

    /// Current simulation time (time of the last event).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Advances to and returns the next event.
    pub fn next_event(&mut self) -> QosEvent {
        self.now += self.gaps.sample(&mut self.rng);
        QosEvent {
            time: self.now,
            spec: self.qos.next(&mut self.state, &mut self.rng),
        }
    }
}

impl Iterator for EventStream {
    type Item = QosEvent;

    fn next(&mut self) -> Option<QosEvent> {
        Some(self.next_event())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> QosVariationModel {
        QosVariationModel::new(1000.0, 100.0, 0.95, 0.02, 0.4)
    }

    #[test]
    fn samples_are_clamped_sane() {
        let m = QosVariationModel::new(10.0, 100.0, 0.5, 2.0, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..500 {
            let s = m.sample(&mut rng);
            assert!(s.max_makespan >= 0.0);
            assert!((0.0..=1.0).contains(&s.min_reliability));
        }
    }

    #[test]
    fn stream_time_is_strictly_increasing() {
        let mut es = EventStream::new(model(), 100.0, 5);
        let mut last = 0.0;
        for e in es.by_ref().take(200) {
            assert!(e.time > last);
            last = e.time;
        }
    }

    #[test]
    fn stream_mean_gap_matches() {
        let mut es = EventStream::new(model(), 100.0, 6);
        let n = 20_000;
        for _ in 0..n {
            es.next_event();
        }
        let mean_gap = es.now() / n as f64;
        assert!((mean_gap - 100.0).abs() < 3.0, "mean gap {mean_gap}");
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        let a: Vec<QosEvent> = EventStream::new(model(), 100.0, 9).take(20).collect();
        let b: Vec<QosEvent> = EventStream::new(model(), 100.0, 9).take(20).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn walk_stays_within_bounds() {
        let m = QosVariationModel::random_walk(
            [100.0, 0.9],
            [20.0, 0.05],
            0.0,
            (50.0, 150.0),
            (0.7, 0.99),
        );
        let mut rng = StdRng::seed_from_u64(8);
        let mut state = None;
        for _ in 0..2_000 {
            let s = m.next(&mut state, &mut rng);
            assert!((50.0..=150.0).contains(&s.max_makespan), "{s:?}");
            assert!((0.7..=0.99).contains(&s.min_reliability), "{s:?}");
        }
    }

    #[test]
    fn walk_is_temporally_correlated() {
        // Successive requirements of a walk are much closer than
        // independent draws with the same marginal spread.
        let m = QosVariationModel::random_walk(
            [100.0, 0.9],
            [2.0, 0.002],
            0.0,
            (50.0, 150.0),
            (0.7, 0.99),
        );
        let mut rng = StdRng::seed_from_u64(9);
        let mut state = None;
        let mut prev = m.next(&mut state, &mut rng);
        let mut max_jump = 0.0f64;
        for _ in 0..1_000 {
            let s = m.next(&mut state, &mut rng);
            max_jump = max_jump.max((s.max_makespan - prev.max_makespan).abs());
            prev = s;
        }
        assert!(max_jump < 10.0, "walk jumped {max_jump}");
    }

    #[test]
    fn reflect_handles_all_cases() {
        assert_eq!(reflect(5.0, 0.0, 10.0), 5.0);
        assert_eq!(reflect(-2.0, 0.0, 10.0), 2.0);
        assert_eq!(reflect(12.0, 0.0, 10.0), 8.0);
        // Multi-bounce overshoots fold like a triangle wave.
        assert_eq!(reflect(25.0, 0.0, 10.0), 5.0);
        assert_eq!(reflect(-25.0, 0.0, 10.0), 5.0);
        assert_eq!(reflect(0.0, 0.0, 10.0), 0.0);
        assert_eq!(reflect(10.0, 0.0, 10.0), 10.0);
    }

    #[test]
    fn mode_accessor_reports_variant() {
        assert_eq!(model().mode(), VariationMode::Independent);
        let w = QosVariationModel::random_walk([1.0, 0.5], [0.1, 0.1], 0.0, (0.0, 2.0), (0.0, 1.0));
        assert_eq!(w.mode(), VariationMode::RandomWalk);
    }
}
