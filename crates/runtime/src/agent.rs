//! Agent-based run-time adaptation — AuRA (paper §4.3.2).
//!
//! The reinforcement-learning formulation:
//!
//! - **State space** — each stored design point is one state.
//! - **Policy** — fixed, uRA-shaped: among the feasible states, pick the
//!   arg-max of the immediate uRA reward plus `γ` times the state's value
//!   function. Setting `γ = 0` during policy evaluation subsumes uRA.
//! - **Value optimisation** — every-visit Monte-Carlo: at the end of each
//!   episode (a fixed number of application cycles) the discounted return
//!   `G_t` of each visited state updates `V(s) ← V(s) + α (G_t − V(s))`.
//! - **Prior knowledge** — instead of starting from uniform values, an
//!   offline Monte-Carlo simulation with the fixed policy over the known
//!   QoS-variation distribution bootstraps the initial value functions
//!   ([`AuraAgent::train_prior`]).
//!
//! ## Reproduction note (Table 7)
//!
//! In our discrete-event model the value term rarely *beats* plain uRA:
//! uRA's stay-while-feasible behaviour is already near-optimal, because a
//! value-informed deviation pays a certain reconfiguration cost now
//! against an uncertain future saving, and noisy value estimates bias the
//! arg-max toward over-eager moves (the classic maximisation bias). Our
//! Table-7 reproduction therefore shows AuRA ≈ uRA (±3 %) instead of the
//! paper's mostly-positive improvements; with `γ = 0` the agent
//! reproduces uRA decision-for-decision (unit-tested), and the prior
//! demonstrably reduces cold-start cost (see the `ablations` binary).

use clr_obs::{Event, Obs};
use serde::{Deserialize, Serialize};

use crate::sim::{simulate, DecisionInput, DecisionOutcome, Feedback, RuntimePolicy, SimConfig};
use crate::ura::ura_argmax;
use crate::{QosVariationModel, RuntimeContext};

/// The AuRA reinforcement-learning agent.
///
/// # Examples
///
/// ```
/// use clr_runtime::AuraAgent;
/// let agent = AuraAgent::new(8, 0.5, 0.6, 0.1).unwrap();
/// assert_eq!(agent.values().len(), 8);
/// // γ = 0 degenerates to plain uRA.
/// assert!(AuraAgent::new(8, 0.5, 0.0, 0.1).is_ok());
/// assert!(AuraAgent::new(8, 2.0, 0.5, 0.1).is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuraAgent {
    p_rc: f64,
    gamma: f64,
    alpha: f64,
    values: Vec<f64>,
    /// `(state entered, immediate reward)` sequence of the open episode.
    episode: Vec<(usize, f64)>,
}

impl AuraAgent {
    /// Creates an agent over `num_states` stored design points.
    ///
    /// # Errors
    ///
    /// Returns the offending value if `p_rc ∉ [0, 1]`, `gamma ∉ [0, 1)` or
    /// `alpha ∉ (0, 1]`.
    pub fn new(num_states: usize, p_rc: f64, gamma: f64, alpha: f64) -> Result<Self, f64> {
        if !(0.0..=1.0).contains(&p_rc) {
            return Err(p_rc);
        }
        if !(0.0..1.0).contains(&gamma) {
            return Err(gamma);
        }
        if !(alpha > 0.0 && alpha <= 1.0) {
            return Err(alpha);
        }
        Ok(Self {
            p_rc,
            gamma,
            alpha,
            values: vec![0.0; num_states],
            episode: Vec::new(),
        })
    }

    /// The user modulation parameter.
    pub fn p_rc(&self) -> f64 {
        self.p_rc
    }

    /// The discount factor.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// The learning rate.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The current state-value estimates.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Overwrites the state-value estimates wholesale — the checkpoint
    /// restore and shadow-promotion path. Non-finite entries are rejected
    /// so a corrupt artifact cannot poison the arg-max.
    ///
    /// # Errors
    ///
    /// Returns the replacement length when it does not match the state
    /// count, or the state count when any entry is non-finite.
    pub fn set_values(&mut self, values: &[f64]) -> Result<(), usize> {
        if values.len() != self.values.len() {
            return Err(values.len());
        }
        if values.iter().any(|v| !v.is_finite()) {
            return Err(self.values.len());
        }
        self.values.copy_from_slice(values);
        Ok(())
    }

    /// The immediate uRA-shaped reward of transitioning `from → to`.
    fn reward(&self, ctx: &RuntimeContext<'_>, from: usize, to: usize) -> f64 {
        self.p_rc * ctx.norm_performance(to) - (1.0 - self.p_rc) * ctx.norm_drc(from, to)
    }

    /// Offline Monte-Carlo prior: simulates `episodes` independent episodes
    /// of `cycles_per_episode` cycles against the known QoS-variation
    /// distribution, updating the value functions with the fixed policy.
    /// Call before deployment to inject prior knowledge about the
    /// operating environment.
    ///
    /// Episodes run in batches of [`PRIOR_BATCH`]: within a batch each
    /// episode simulates against a frozen snapshot of the value functions
    /// (its RNG stream derived from `(seed, episode index)`), then the
    /// collected trajectories apply their value updates serially in episode
    /// order. Batches are therefore free to fan out over worker threads —
    /// see [`train_prior_with`](Self::train_prior_with) — and the learned
    /// values are bit-identical for every thread count.
    pub fn train_prior(
        &mut self,
        ctx: &RuntimeContext<'_>,
        qos: &QosVariationModel,
        episodes: usize,
        cycles_per_episode: f64,
        seed: u64,
    ) {
        self.train_prior_with(ctx, qos, episodes, cycles_per_episode, seed, 0);
    }

    /// [`train_prior`](Self::train_prior) with an explicit worker-thread
    /// count (`0` = automatic: the `CLR_THREADS` environment variable,
    /// falling back to available parallelism).
    pub fn train_prior_with(
        &mut self,
        ctx: &RuntimeContext<'_>,
        qos: &QosVariationModel,
        episodes: usize,
        cycles_per_episode: f64,
        seed: u64,
        threads: usize,
    ) {
        self.train_prior_obs(
            ctx,
            qos,
            episodes,
            cycles_per_episode,
            seed,
            threads,
            &Obs::off(),
        );
    }

    /// [`train_prior_with`](Self::train_prior_with) plus journal
    /// instrumentation: one `episode` event per prior episode (step count
    /// and discounted return), emitted from the serial value-update loop
    /// in episode order, an `episode` logical-clock span, and aggregated
    /// pool statistics in the non-deterministic section. The inner probe
    /// simulations stay un-instrumented — they run on worker threads.
    #[allow(clippy::too_many_arguments)]
    pub fn train_prior_obs(
        &mut self,
        ctx: &RuntimeContext<'_>,
        qos: &QosVariationModel,
        episodes: usize,
        cycles_per_episode: f64,
        seed: u64,
        threads: usize,
        obs: &Obs,
    ) {
        let indices: Vec<u64> = (0..episodes as u64).collect();
        let mut pool = clr_par::PoolStats::default();
        for batch in indices.chunks(PRIOR_BATCH) {
            // Frozen policy snapshot: every episode of the batch sees the
            // value functions as of the batch start, which decouples the
            // episodes from each other and from evaluation order.
            let snapshot = self.clone();
            let (trajectories, stats) = clr_par::par_map_stats(threads, batch, |_, &ep| {
                let mut probe = snapshot.clone();
                probe.episode.clear();
                let config = SimConfig {
                    total_cycles: cycles_per_episode,
                    mean_event_gap: 100.0,
                    // One simulate() call is exactly one episode; the
                    // trajectory is harvested below, so the simulation
                    // itself must never fire `end_episode`.
                    episode_cycles: f64::INFINITY,
                    seed: clr_par::derive_seed(seed ^ prior_mask(), ep),
                    initial_point: 0,
                    max_trace: 0,
                };
                let _ = simulate(ctx, &mut probe, qos, &config);
                probe.episode
            });
            pool.merge(&stats);
            // Value updates are sequential in episode order.
            for (offset, trajectory) in trajectories.into_iter().enumerate() {
                if obs.enabled() {
                    // Discounted return of the trajectory, accumulated
                    // backward exactly as `end_episode` does.
                    let mut g = 0.0f64;
                    for &(_, reward) in trajectory.iter().rev() {
                        g = reward + self.gamma * g;
                    }
                    obs.emit(Event::Episode {
                        index: batch[offset],
                        steps: trajectory.len(),
                        ret: g,
                    });
                }
                self.episode = trajectory;
                self.end_episode();
            }
        }
        if obs.enabled() {
            obs.emit(Event::Span {
                label: "aura.prior".to_string(),
                clock: "episode".to_string(),
                start: 0.0,
                end: episodes as f64,
            });
            obs.emit_nondet(Event::Pool {
                site: "aura.prior".to_string(),
                items: pool.items,
                workers: pool.workers,
                per_worker: pool.per_worker,
                queue_hwm: pool.queue_hwm,
            });
        }
    }
}

/// Episodes per frozen-snapshot batch of the offline prior pass.
pub const PRIOR_BATCH: usize = 8;

/// Seed scrambling constant for the offline prior pass.
#[inline]
fn prior_mask() -> u64 {
    0x00_70_72_69_6f_72_00_01 // "prior"
}

impl RuntimePolicy for AuraAgent {
    fn decide(&mut self, input: &DecisionInput<'_, '_>) -> DecisionOutcome {
        match ura_argmax(
            input.ctx,
            input.current,
            input.feasible,
            self.p_rc,
            |s| self.values[s],
            self.gamma,
        ) {
            Some((p, ret)) => DecisionOutcome {
                choice: Some(p),
                score: Some(ret),
                p_rc: Some(self.p_rc),
            },
            None => DecisionOutcome {
                choice: None,
                score: None,
                p_rc: Some(self.p_rc),
            },
        }
    }

    fn observe(&mut self, feedback: &Feedback<'_, '_>) {
        let r = self.reward(feedback.ctx, feedback.from, feedback.to);
        self.episode.push((feedback.to, r));
    }

    fn end_episode(&mut self) {
        // Every-visit Monte-Carlo, backward accumulation. `V(s)` estimates
        // the discounted return of the steps *after* entering `s` — the
        // entering reward itself is excluded, because the decision rule
        // already adds the immediate term (`r(s→p) + γ·V(p)`); including
        // it would double-count the reconfiguration cost of reaching `p`.
        let mut g = 0.0f64;
        for &(state, reward) in self.episode.iter().rev() {
            let v = &mut self.values[state];
            *v += self.alpha * (g - *v);
            g = reward + self.gamma * g;
        }
        self.episode.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UraPolicy;
    use clr_dse::QosSpec;
    use clr_dse::{explore_based, DesignPointDb, DseConfig, ExplorationMode};
    use clr_moea::GaParams;
    use clr_platform::Platform;
    use clr_reliability::{ConfigSpace, FaultModel};
    use clr_taskgraph::{TgffConfig, TgffGenerator};

    fn fixture(seed: u64) -> (clr_taskgraph::TaskGraph, Platform, DesignPointDb) {
        let graph = TgffGenerator::new(TgffConfig::with_tasks(12)).generate(seed);
        let platform = Platform::dac19();
        let cfg = DseConfig {
            ga: GaParams::small(),
            mode: ExplorationMode::Full,
            reference: None,
            max_points: None,
        };
        let db = explore_based(
            &graph,
            &platform,
            FaultModel::default(),
            ConfigSpace::fine(),
            &cfg,
            seed,
        );
        (graph, platform, db)
    }

    #[test]
    fn parameter_validation() {
        assert!(AuraAgent::new(4, 0.5, 1.0, 0.1).is_err()); // γ must be < 1
        assert!(AuraAgent::new(4, 0.5, 0.5, 0.0).is_err()); // α must be > 0
        assert!(AuraAgent::new(4, -0.1, 0.5, 0.1).is_err());
    }

    #[test]
    fn gamma_zero_matches_ura_decisions() {
        let (g, p, db) = fixture(41);
        let ctx = RuntimeContext::new(&g, &p, &db);
        let mut agent = AuraAgent::new(db.len(), 0.6, 0.0, 0.1).unwrap();
        let ura = UraPolicy::new(0.6).unwrap();
        let spec = QosSpec::new(f64::INFINITY, 0.0);
        let feasible = ctx.feasible(&spec);
        for current in 0..db.len() {
            let input = DecisionInput {
                ctx: &ctx,
                current,
                spec: &spec,
                feasible: &feasible,
            };
            assert_eq!(
                agent.decide(&input).choice,
                ura.select(&ctx, current, &spec)
            );
        }
    }

    #[test]
    fn episode_updates_move_values() {
        let (g, p, db) = fixture(42);
        let ctx = RuntimeContext::new(&g, &p, &db);
        if db.len() < 2 {
            return;
        }
        let mut agent = AuraAgent::new(db.len(), 1.0, 0.5, 0.2).unwrap();
        // Two-step episode: enter state 0, then state 1. V(s) estimates the
        // return *after* entering s, so V(0) learns from the second step's
        // reward and V(1) (episode end) learns a zero return.
        agent.observe(&Feedback {
            ctx: &ctx,
            from: 0,
            to: 0,
        });
        agent.observe(&Feedback {
            ctx: &ctx,
            from: 0,
            to: 1,
        });
        agent.end_episode();
        let second_reward = ctx.norm_performance(1); // p_rc = 1
        assert!((agent.values()[0] - 0.2 * second_reward).abs() < 1e-12);
        assert_eq!(agent.values()[1], 0.0);
    }

    #[test]
    fn prior_training_changes_values_and_is_deterministic() {
        let (g, p, db) = fixture(43);
        let ctx = RuntimeContext::new(&g, &p, &db);
        let qos = QosVariationModel::calibrated(&db, 0.25, 0.3);
        let mut a = AuraAgent::new(db.len(), 0.5, 0.6, 0.1).unwrap();
        let mut b = AuraAgent::new(db.len(), 0.5, 0.6, 0.1).unwrap();
        a.train_prior(&ctx, &qos, 20, 1000.0, 7);
        b.train_prior(&ctx, &qos, 20, 1000.0, 7);
        assert_eq!(a.values(), b.values());
        assert!(a.values().iter().any(|&v| v != 0.0));
    }

    #[test]
    fn serial_and_parallel_prior_training_are_bit_identical() {
        let (g, p, db) = fixture(45);
        let ctx = RuntimeContext::new(&g, &p, &db);
        let qos = QosVariationModel::calibrated(&db, 0.25, 0.3);
        let mut serial = AuraAgent::new(db.len(), 0.5, 0.6, 0.1).unwrap();
        let mut parallel = AuraAgent::new(db.len(), 0.5, 0.6, 0.1).unwrap();
        // 20 episodes span multiple PRIOR_BATCH batches.
        serial.train_prior_with(&ctx, &qos, 20, 1000.0, 7, 1);
        parallel.train_prior_with(&ctx, &qos, 20, 1000.0, 7, 4);
        let a: Vec<u64> = serial.values().iter().map(|v| v.to_bits()).collect();
        let b: Vec<u64> = parallel.values().iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b);
        assert!(serial.values().iter().any(|&v| v != 0.0));
    }

    #[test]
    fn trained_agent_still_respects_feasibility() {
        let (g, p, db) = fixture(44);
        let ctx = RuntimeContext::new(&g, &p, &db);
        let qos = QosVariationModel::calibrated(&db, 0.25, 0.3);
        let mut agent = AuraAgent::new(db.len(), 0.5, 0.6, 0.1).unwrap();
        agent.train_prior(&ctx, &qos, 10, 1000.0, 3);
        let impossible = QosSpec::new(0.0, 1.0);
        let feasible = ctx.feasible(&impossible);
        let input = DecisionInput {
            ctx: &ctx,
            current: 0,
            spec: &impossible,
            feasible: &feasible,
        };
        assert_eq!(agent.decide(&input).choice, None);
    }
}
