//! Zero-dependency deterministic fork-join parallelism for the DSE/MOEA
//! hot paths.
//!
//! The build environment has no crates.io access, so instead of `rayon`
//! this crate provides the minimal fork-join surface the workspace needs:
//!
//! - [`par_map`] — an indexed map over a slice, executed by a scoped
//!   worker pool (`std::thread::scope`) whose workers pull indices from a
//!   shared atomic injector queue. Worker panics propagate to the caller.
//! - [`par_map_stats`] — the same map, additionally reporting a
//!   [`PoolStats`] (items per worker, queue high-water mark) for the
//!   observability layer's non-deterministic journal section.
//! - [`splitmix64`] / [`derive_seed`] — the per-index RNG-stream
//!   derivation that keeps parallel Monte-Carlo replication deterministic.
//! - [`available_threads`] / [`resolve_threads`] — thread-count policy:
//!   the `CLR_THREADS` environment variable, falling back to the
//!   machine's available parallelism.
//!
//! # Determinism contract
//!
//! [`par_map`] returns results **in input order** no matter how indices
//! are scheduled across workers, and callers that consume randomness
//! derive one independent RNG stream per index via [`derive_seed`]
//! instead of sharing a single sequential stream. Together these make
//! every parallel site in the workspace produce bit-identical output for
//! any thread count (including 1); the thread count only changes
//! wall-clock time, never results.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// Environment variable overriding the automatic worker-thread count.
pub const THREADS_ENV: &str = "CLR_THREADS";

/// The automatic worker-thread count: `CLR_THREADS` if set to a positive
/// integer, otherwise the machine's available parallelism (1 if unknown).
pub fn available_threads() -> usize {
    if let Ok(value) = std::env::var(THREADS_ENV) {
        if let Ok(n) = value.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Resolves a requested thread count: `0` means "automatic"
/// ([`available_threads`]), any other value is used as-is.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        available_threads()
    } else {
        requested
    }
}

/// SplitMix64 finalizer: a high-quality 64-bit mixing function (Steele,
/// Lea & Flood 2014). Bijective, so distinct inputs give distinct outputs.
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Derives the RNG seed of work item `index` from a campaign-level `seed`.
///
/// Each `(seed, index)` pair maps to a decorrelated 64-bit value, so every
/// item owns an independent RNG stream regardless of which worker thread
/// (or chunk) executes it — the foundation of the workspace's
/// serial≡parallel bit-identity guarantee.
#[must_use]
pub fn derive_seed(seed: u64, index: u64) -> u64 {
    splitmix64(seed ^ splitmix64(index.wrapping_mul(0xA076_1D64_78BD_642F)))
}

/// Maps `f` over `items` on a scoped worker pool, returning the results
/// in input order.
///
/// `threads` is resolved via [`resolve_threads`] (`0` = automatic) and
/// capped at `items.len()`; with one effective worker the map runs inline
/// with no thread overhead. Workers pull indices from a shared atomic
/// injector queue, so uneven per-item costs balance automatically.
///
/// # Panics
///
/// If `f` panics for any item the panic payload is re-raised on the
/// calling thread (after the scope has joined all workers).
///
/// # Examples
///
/// ```
/// let squares = clr_par::par_map(4, &[1u64, 2, 3, 4, 5], |_, x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16, 25]);
/// ```
pub fn par_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_stats(threads, items, f).0
}

/// Scheduling statistics of one [`par_map_stats`] fan-out.
///
/// The per-worker split and the queue high-water mark depend on OS
/// scheduling, so these numbers are **non-deterministic** — observability
/// consumers must keep them out of any byte-compared journal section.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Work items executed.
    pub items: usize,
    /// Worker threads used (1 for the inline serial path).
    pub workers: usize,
    /// Items executed by each worker.
    pub per_worker: Vec<u64>,
    /// Largest queue backlog (items not yet pulled) observed when a worker
    /// pulled an index. The injector queue is pre-filled, so for a batch of
    /// `n` items this is close to `n`; it becomes informative when
    /// comparing batch sizes across sites.
    pub queue_hwm: usize,
}

impl PoolStats {
    /// Folds `other` into `self`, aggregating stats across multiple
    /// fan-outs of the same site (e.g. one per GA generation): items add,
    /// per-worker tallies add element-wise, worker count and queue
    /// high-water mark take the maximum.
    pub fn merge(&mut self, other: &PoolStats) {
        self.items += other.items;
        self.workers = self.workers.max(other.workers);
        if self.per_worker.len() < other.per_worker.len() {
            self.per_worker.resize(other.per_worker.len(), 0);
        }
        for (acc, &w) in self.per_worker.iter_mut().zip(&other.per_worker) {
            *acc += w;
        }
        self.queue_hwm = self.queue_hwm.max(other.queue_hwm);
    }
}

/// [`par_map`] that also reports how the work was scheduled.
///
/// Returns the in-input-order results (identical to [`par_map`] — the
/// stats gathering never influences them) together with a [`PoolStats`]
/// describing the fan-out.
pub fn par_map_stats<T, R, F>(threads: usize, items: &[T], f: F) -> (Vec<R>, PoolStats)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = resolve_threads(threads).min(n);
    if workers <= 1 {
        let out = items
            .iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
        let stats = PoolStats {
            items: n,
            workers: 1.min(n),
            per_worker: if n > 0 { vec![n as u64] } else { Vec::new() },
            queue_hwm: n,
        };
        return (out, stats);
    }

    let injector = AtomicUsize::new(0);
    let queue_hwm = AtomicUsize::new(0);
    let buckets: Vec<Vec<(usize, R)>> = thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let injector = &injector;
                let queue_hwm = &queue_hwm;
                let f = &f;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = injector.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        queue_hwm.fetch_max(n - i, Ordering::Relaxed);
                        local.push((i, f(i, &items[i])));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| match handle.join() {
                Ok(local) => local,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });

    let per_worker: Vec<u64> = buckets.iter().map(|b| b.len() as u64).collect();
    let stats = PoolStats {
        items: n,
        workers,
        per_worker,
        queue_hwm: queue_hwm.load(Ordering::Relaxed),
    };

    // The workspace forbids unsafe code, so instead of writing into raw
    // slots the workers return (index, result) pairs merged here.
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for bucket in buckets {
        for (i, r) in bucket {
            debug_assert!(slots[i].is_none(), "index {i} produced twice");
            slots[i] = Some(r);
        }
    }
    let out = slots
        .into_iter()
        .map(|slot| slot.expect("worker pool visits every index"))
        .collect();
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u64> = par_map(4, &[], |_, x: &u64| *x);
        assert!(out.is_empty());
    }

    #[test]
    fn results_are_in_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for threads in [1, 2, 4, 7] {
            let parallel = par_map(threads, &items, |_, x| x * x + 1);
            assert_eq!(parallel, serial, "threads = {threads}");
        }
    }

    #[test]
    fn closure_receives_matching_index() {
        let items: Vec<usize> = (0..257).collect();
        let out = par_map(4, &items, |i, &x| {
            assert_eq!(i, x);
            i
        });
        assert_eq!(out, items);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let out = par_map(64, &[10u32, 20], |_, x| x + 1);
        assert_eq!(out, vec![11, 21]);
    }

    #[test]
    fn nested_scopes_compose() {
        let rows: Vec<u64> = (0..8).collect();
        let table = par_map(4, &rows, |_, &r| {
            let cols: Vec<u64> = (0..8).collect();
            par_map(2, &cols, move |_, &c| r * 10 + c)
        });
        for (r, row) in table.iter().enumerate() {
            for (c, &cell) in row.iter().enumerate() {
                assert_eq!(cell, r as u64 * 10 + c as u64);
            }
        }
    }

    #[test]
    #[should_panic(expected = "boom at 13")]
    fn worker_panics_propagate() {
        let items: Vec<u64> = (0..64).collect();
        let _ = par_map(4, &items, |i, _| {
            assert!(i != 13, "boom at 13");
            i
        });
    }

    #[test]
    fn derive_seed_decorrelates_indices() {
        let mut seen = std::collections::HashSet::new();
        for index in 0..10_000u64 {
            assert!(seen.insert(derive_seed(42, index)), "collision at {index}");
        }
        // Different campaign seeds give different streams for the same index.
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
    }

    #[test]
    fn splitmix_matches_reference_vector() {
        // First output of the published SplitMix64 sequence for state 0.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn resolve_threads_passes_explicit_values() {
        assert_eq!(resolve_threads(3), 3);
        assert!(resolve_threads(0) >= 1);
        assert!(available_threads() >= 1);
    }

    #[test]
    fn stats_account_for_every_item() {
        let items: Vec<u64> = (0..100).collect();
        for threads in [1, 4] {
            let (out, stats) = par_map_stats(threads, &items, |_, x| x + 1);
            assert_eq!(out, par_map(threads, &items, |_, x| x + 1));
            assert_eq!(stats.items, 100);
            assert_eq!(stats.workers, threads);
            assert_eq!(stats.per_worker.len(), threads);
            assert_eq!(stats.per_worker.iter().sum::<u64>(), 100);
            assert!(stats.queue_hwm <= 100);
            assert!(stats.queue_hwm >= 1);
        }
    }

    #[test]
    fn stats_on_empty_input_are_empty() {
        let (out, stats) = par_map_stats(4, &[], |_, x: &u64| *x);
        assert!(out.is_empty());
        assert_eq!(stats, PoolStats::default());
    }

    #[test]
    fn merge_aggregates_across_fanouts() {
        let mut acc = PoolStats::default();
        acc.merge(&PoolStats {
            items: 10,
            workers: 2,
            per_worker: vec![6, 4],
            queue_hwm: 10,
        });
        acc.merge(&PoolStats {
            items: 8,
            workers: 4,
            per_worker: vec![2, 2, 2, 2],
            queue_hwm: 8,
        });
        assert_eq!(
            acc,
            PoolStats {
                items: 18,
                workers: 4,
                per_worker: vec![8, 6, 2, 2],
                queue_hwm: 10,
            }
        );
    }
}
