//! Exact hypervolume computation and the signed single-point fitness of
//! paper Fig. 4a.
//!
//! The design-time objective (Eq. 5) maximises the summed hyper-volume of
//! the non-dominated collection w.r.t. a reference point `R` encoding the
//! QoS constraints. Feasible points earn the area/volume they sweep
//! relative to `R`; infeasible points are charged the (negative) box
//! between `R` and their violating coordinates.

use std::fmt;

use crate::dominance::dominates;

/// Rejected input to [`hypervolume`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HypervolumeError {
    /// Point `index` has a different dimensionality than the reference.
    DimensionMismatch {
        /// Index of the offending point in the input slice.
        index: usize,
        /// The reference point's dimensionality.
        expected: usize,
        /// The offending point's dimensionality.
        found: usize,
    },
    /// Point `index` contains a NaN or infinite coordinate.
    NonFinitePoint {
        /// Index of the offending point in the input slice.
        index: usize,
    },
    /// The reference point contains a NaN or infinite coordinate.
    NonFiniteReference,
}

impl fmt::Display for HypervolumeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DimensionMismatch {
                index,
                expected,
                found,
            } => write!(
                f,
                "point {index} has {found} objectives, reference has {expected}"
            ),
            Self::NonFinitePoint { index } => {
                write!(f, "point {index} has a NaN or infinite coordinate")
            }
            Self::NonFiniteReference => {
                write!(f, "reference point has a NaN or infinite coordinate")
            }
        }
    }
}

impl std::error::Error for HypervolumeError {}

/// Exact hypervolume (minimisation) of `points` w.r.t. `reference`:
/// the Lebesgue measure of `⋃_p [p, reference]` for points dominating the
/// reference. Points not strictly below the reference in every coordinate
/// contribute nothing.
///
/// Implemented with the HSO (hypervolume-by-slicing-objectives) recursion:
/// exact in any dimension, efficient for the front sizes the DSE handles
/// (tens to a few hundred points).
///
/// # Errors
///
/// Returns a [`HypervolumeError`] if a point's dimensionality disagrees
/// with the reference or any coordinate is NaN/infinite — instead of
/// panicking (or silently mis-sorting) deep inside the recursion.
///
/// # Examples
///
/// ```
/// use clr_moea::hypervolume;
/// // A single point (1, 1) vs reference (3, 3) sweeps a 2×2 square.
/// assert_eq!(hypervolume(&[vec![1.0, 1.0]], &[3.0, 3.0]).unwrap(), 4.0);
/// // A dominated point adds nothing.
/// let hv = hypervolume(&[vec![1.0, 1.0], vec![2.0, 2.0]], &[3.0, 3.0]).unwrap();
/// assert_eq!(hv, 4.0);
/// // Non-finite coordinates are rejected with a clear error.
/// assert!(hypervolume(&[vec![f64::NAN, 1.0]], &[3.0, 3.0]).is_err());
/// ```
pub fn hypervolume(points: &[Vec<f64>], reference: &[f64]) -> Result<f64, HypervolumeError> {
    let d = reference.len();
    if !reference.iter().all(|r| r.is_finite()) {
        return Err(HypervolumeError::NonFiniteReference);
    }
    for (index, p) in points.iter().enumerate() {
        if p.len() != d {
            return Err(HypervolumeError::DimensionMismatch {
                index,
                expected: d,
                found: p.len(),
            });
        }
        if !p.iter().all(|x| x.is_finite()) {
            return Err(HypervolumeError::NonFinitePoint { index });
        }
    }
    let mut inside: Vec<Vec<f64>> = points
        .iter()
        .filter(|p| p.iter().zip(reference).all(|(x, r)| x < r))
        .cloned()
        .collect();
    if inside.is_empty() {
        return Ok(0.0);
    }
    // Keep only the non-dominated subset (dominated points add nothing).
    inside = non_dominated(inside);
    Ok(hv_recursive(&mut inside, reference))
}

fn non_dominated(points: Vec<Vec<f64>>) -> Vec<Vec<f64>> {
    let mut keep = Vec::with_capacity(points.len());
    'outer: for (i, p) in points.iter().enumerate() {
        for (j, q) in points.iter().enumerate() {
            if i != j && (dominates(q, p) || (q == p && j < i)) {
                continue 'outer;
            }
        }
        keep.push(p.clone());
    }
    keep
}

/// HSO recursion: slice along the first objective.
fn hv_recursive(points: &mut [Vec<f64>], reference: &[f64]) -> f64 {
    let d = reference.len();
    if d == 1 {
        let best = points.iter().map(|p| p[0]).fold(f64::INFINITY, f64::min);
        return (reference[0] - best).max(0.0);
    }
    // Sort by first objective ascending (coordinates are validated finite
    // at the entry point; total_cmp keeps the sort a total order anyway).
    points.sort_by(|a, b| a[0].total_cmp(&b[0]));
    let mut volume = 0.0;
    let n = points.len();
    for i in 0..n {
        let width = if i + 1 < n {
            points[i + 1][0] - points[i][0]
        } else {
            reference[0] - points[i][0]
        };
        if width <= 0.0 {
            continue;
        }
        // Points 0..=i are active in this slab; project to d−1 dims.
        let mut projected: Vec<Vec<f64>> = points[..=i].iter().map(|p| p[1..].to_vec()).collect();
        projected = non_dominated(projected);
        volume += width * hv_recursive(&mut projected, &reference[1..]);
    }
    volume
}

/// The signed single-point hyper-volume fitness of Fig. 4a.
///
/// - A *feasible* point (every coordinate ≤ the reference) earns the
///   positive volume it sweeps w.r.t. `R`: `Π (r_i − p_i)`.
/// - An *infeasible* point is charged the negative box spanned by its
///   violating coordinates: `−Π_{i: p_i > r_i} (p_i − r_i)`.
///
/// # Examples
///
/// ```
/// use clr_moea::signed_hypervolume_fitness;
/// assert_eq!(signed_hypervolume_fitness(&[1.0, 1.0], &[3.0, 3.0]), 4.0);
/// assert_eq!(signed_hypervolume_fitness(&[4.0, 1.0], &[3.0, 3.0]), -1.0);
/// assert_eq!(signed_hypervolume_fitness(&[5.0, 5.0], &[3.0, 3.0]), -4.0);
/// ```
pub fn signed_hypervolume_fitness(point: &[f64], reference: &[f64]) -> f64 {
    assert_eq!(point.len(), reference.len(), "dimension mismatch");
    let feasible = point.iter().zip(reference).all(|(p, r)| p <= r);
    if feasible {
        point
            .iter()
            .zip(reference)
            .map(|(p, r)| (r - p).max(0.0))
            .product()
    } else {
        -point
            .iter()
            .zip(reference)
            .filter(|(p, r)| p > r)
            .map(|(p, r)| p - r)
            .product::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn two_point_staircase() {
        // (1,2) and (2,1) vs (3,3): union area = 2*1 + 1*2 + 1*1 = wait —
        // compute directly: boxes [1,3]x[2,3] (area 2) ∪ [2,3]x[1,3]
        // (area 2), overlap [2,3]x[2,3] (area 1) → 3.
        let hv = hypervolume(&[vec![1.0, 2.0], vec![2.0, 1.0]], &[3.0, 3.0]).unwrap();
        assert!((hv - 3.0).abs() < 1e-12, "hv {hv}");
    }

    #[test]
    fn three_dimensional_box() {
        let hv = hypervolume(&[vec![0.0, 0.0, 0.0]], &[2.0, 3.0, 4.0]).unwrap();
        assert!((hv - 24.0).abs() < 1e-12);
    }

    #[test]
    fn three_dimensional_union() {
        // Two boxes: (0,0,1) and (1,1,0) vs ref (2,2,2).
        // Box A: [0,2]x[0,2]x[1,2] vol 4; Box B: [1,2]x[1,2]x[0,2] vol 2;
        // overlap [1,2]x[1,2]x[1,2] vol 1 → 5.
        let hv = hypervolume(
            &[vec![0.0, 0.0, 1.0], vec![1.0, 1.0, 0.0]],
            &[2.0, 2.0, 2.0],
        )
        .unwrap();
        assert!((hv - 5.0).abs() < 1e-12, "hv {hv}");
    }

    #[test]
    fn points_outside_reference_contribute_nothing() {
        let hv = hypervolume(&[vec![4.0, 1.0]], &[3.0, 3.0]).unwrap();
        assert_eq!(hv, 0.0);
        assert_eq!(hypervolume(&[], &[1.0, 1.0]).unwrap(), 0.0);
    }

    #[test]
    fn duplicates_do_not_double_count() {
        let hv = hypervolume(&[vec![1.0, 1.0], vec![1.0, 1.0]], &[2.0, 2.0]).unwrap();
        assert!((hv - 1.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_inputs_are_rejected_not_panicked() {
        assert_eq!(
            hypervolume(&[vec![1.0], vec![1.0, 2.0]], &[3.0]),
            Err(HypervolumeError::DimensionMismatch {
                index: 1,
                expected: 1,
                found: 2
            })
        );
        assert_eq!(
            hypervolume(&[vec![1.0, f64::NAN]], &[3.0, 3.0]),
            Err(HypervolumeError::NonFinitePoint { index: 0 })
        );
        assert_eq!(
            hypervolume(&[vec![1.0, f64::INFINITY]], &[3.0, 3.0]),
            Err(HypervolumeError::NonFinitePoint { index: 0 })
        );
        assert_eq!(
            hypervolume(&[vec![1.0, 1.0]], &[3.0, f64::NAN]),
            Err(HypervolumeError::NonFiniteReference)
        );
        // The errors render human-readable diagnostics.
        let msg = hypervolume(&[vec![f64::NAN]], &[1.0])
            .unwrap_err()
            .to_string();
        assert!(msg.contains("point 0"), "{msg}");
    }

    #[test]
    fn signed_fitness_matches_fig_4a_semantics() {
        let r = [10.0, 1.0];
        // Feasible: area swept.
        assert!(signed_hypervolume_fitness(&[5.0, 0.5], &r) > 0.0);
        // Infeasible in one dim: negative of 1-D violation distance... times
        // nothing else (product over violated dims only).
        let f = signed_hypervolume_fitness(&[12.0, 0.5], &r);
        assert!((f + 2.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn hv_is_monotone_under_adding_points(
            pts in proptest::collection::vec(proptest::collection::vec(0.0f64..5.0, 2), 1..12),
            extra in proptest::collection::vec(0.0f64..5.0, 2),
        ) {
            let reference = vec![6.0, 6.0];
            let base = hypervolume(&pts, &reference).unwrap();
            let mut more = pts.clone();
            more.push(extra);
            let bigger = hypervolume(&more, &reference).unwrap();
            prop_assert!(bigger >= base - 1e-9);
        }

        #[test]
        fn hv_bounded_by_total_box(
            pts in proptest::collection::vec(proptest::collection::vec(0.0f64..5.0, 3), 1..8),
        ) {
            let reference = vec![5.0, 5.0, 5.0];
            let hv = hypervolume(&pts, &reference).unwrap();
            prop_assert!(hv <= 125.0 + 1e-9);
            prop_assert!(hv >= 0.0);
        }

        #[test]
        fn hv_2d_matches_sweep_formula(
            pts in proptest::collection::vec(proptest::collection::vec(0.0f64..5.0, 2), 1..15),
        ) {
            // Independent 2-D implementation: sort the non-dominated set by
            // x and accumulate staircase slabs.
            let reference = [6.0f64, 6.0];
            let hv = hypervolume(&pts, reference.as_ref()).unwrap();
            let mut nd: Vec<Vec<f64>> = Vec::new();
            'outer: for p in &pts {
                for q in &pts {
                    if q != p && crate::dominates(q, p) { continue 'outer; }
                }
                if !nd.contains(p) { nd.push(p.clone()); }
            }
            nd.sort_by(|a, b| a[0].total_cmp(&b[0]));
            let mut area = 0.0;
            let mut prev_y = reference[1];
            for p in &nd {
                if p[0] >= reference[0] || p[1] >= reference[1] { continue; }
                let y = p[1].min(prev_y);
                area += (reference[0] - p[0]) * (prev_y - y);
                prev_y = y;
            }
            prop_assert!((hv - area).abs() < 1e-9, "hv {hv} vs sweep {area}");
        }
    }
}
