//! Exact hypervolume computation and the signed single-point fitness of
//! paper Fig. 4a.
//!
//! The design-time objective (Eq. 5) maximises the summed hyper-volume of
//! the non-dominated collection w.r.t. a reference point `R` encoding the
//! QoS constraints. Feasible points earn the area/volume they sweep
//! relative to `R`; infeasible points are charged the (negative) box
//! between `R` and their violating coordinates.

use crate::dominance::dominates;

/// Exact hypervolume (minimisation) of `points` w.r.t. `reference`:
/// the Lebesgue measure of `⋃_p [p, reference]` for points dominating the
/// reference. Points not strictly below the reference in every coordinate
/// contribute nothing.
///
/// Implemented with the HSO (hypervolume-by-slicing-objectives) recursion:
/// exact in any dimension, efficient for the front sizes the DSE handles
/// (tens to a few hundred points).
///
/// # Panics
///
/// Panics if point dimensionalities disagree with the reference.
///
/// # Examples
///
/// ```
/// use clr_moea::hypervolume;
/// // A single point (1, 1) vs reference (3, 3) sweeps a 2×2 square.
/// assert_eq!(hypervolume(&[vec![1.0, 1.0]], &[3.0, 3.0]), 4.0);
/// // A dominated point adds nothing.
/// let hv = hypervolume(&[vec![1.0, 1.0], vec![2.0, 2.0]], &[3.0, 3.0]);
/// assert_eq!(hv, 4.0);
/// ```
pub fn hypervolume(points: &[Vec<f64>], reference: &[f64]) -> f64 {
    let d = reference.len();
    let mut inside: Vec<Vec<f64>> = points
        .iter()
        .inspect(|p| assert_eq!(p.len(), d, "point dimension mismatch"))
        .filter(|p| p.iter().zip(reference).all(|(x, r)| x < r))
        .cloned()
        .collect();
    if inside.is_empty() {
        return 0.0;
    }
    // Keep only the non-dominated subset (dominated points add nothing).
    inside = non_dominated(inside);
    hv_recursive(&mut inside, reference)
}

fn non_dominated(points: Vec<Vec<f64>>) -> Vec<Vec<f64>> {
    let mut keep = Vec::with_capacity(points.len());
    'outer: for (i, p) in points.iter().enumerate() {
        for (j, q) in points.iter().enumerate() {
            if i != j && (dominates(q, p) || (q == p && j < i)) {
                continue 'outer;
            }
        }
        keep.push(p.clone());
    }
    keep
}

/// HSO recursion: slice along the first objective.
fn hv_recursive(points: &mut [Vec<f64>], reference: &[f64]) -> f64 {
    let d = reference.len();
    if d == 1 {
        let best = points.iter().map(|p| p[0]).fold(f64::INFINITY, f64::min);
        return (reference[0] - best).max(0.0);
    }
    // Sort by first objective ascending.
    points.sort_by(|a, b| a[0].partial_cmp(&b[0]).expect("objectives must not be NaN"));
    let mut volume = 0.0;
    let n = points.len();
    for i in 0..n {
        let width = if i + 1 < n {
            points[i + 1][0] - points[i][0]
        } else {
            reference[0] - points[i][0]
        };
        if width <= 0.0 {
            continue;
        }
        // Points 0..=i are active in this slab; project to d−1 dims.
        let mut projected: Vec<Vec<f64>> = points[..=i].iter().map(|p| p[1..].to_vec()).collect();
        projected = non_dominated(projected);
        volume += width * hv_recursive(&mut projected, &reference[1..]);
    }
    volume
}

/// The signed single-point hyper-volume fitness of Fig. 4a.
///
/// - A *feasible* point (every coordinate ≤ the reference) earns the
///   positive volume it sweeps w.r.t. `R`: `Π (r_i − p_i)`.
/// - An *infeasible* point is charged the negative box spanned by its
///   violating coordinates: `−Π_{i: p_i > r_i} (p_i − r_i)`.
///
/// # Examples
///
/// ```
/// use clr_moea::signed_hypervolume_fitness;
/// assert_eq!(signed_hypervolume_fitness(&[1.0, 1.0], &[3.0, 3.0]), 4.0);
/// assert_eq!(signed_hypervolume_fitness(&[4.0, 1.0], &[3.0, 3.0]), -1.0);
/// assert_eq!(signed_hypervolume_fitness(&[5.0, 5.0], &[3.0, 3.0]), -4.0);
/// ```
pub fn signed_hypervolume_fitness(point: &[f64], reference: &[f64]) -> f64 {
    assert_eq!(point.len(), reference.len(), "dimension mismatch");
    let feasible = point.iter().zip(reference).all(|(p, r)| p <= r);
    if feasible {
        point
            .iter()
            .zip(reference)
            .map(|(p, r)| (r - p).max(0.0))
            .product()
    } else {
        -point
            .iter()
            .zip(reference)
            .filter(|(p, r)| p > r)
            .map(|(p, r)| p - r)
            .product::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn two_point_staircase() {
        // (1,2) and (2,1) vs (3,3): union area = 2*1 + 1*2 + 1*1 = wait —
        // compute directly: boxes [1,3]x[2,3] (area 2) ∪ [2,3]x[1,3]
        // (area 2), overlap [2,3]x[2,3] (area 1) → 3.
        let hv = hypervolume(&[vec![1.0, 2.0], vec![2.0, 1.0]], &[3.0, 3.0]);
        assert!((hv - 3.0).abs() < 1e-12, "hv {hv}");
    }

    #[test]
    fn three_dimensional_box() {
        let hv = hypervolume(&[vec![0.0, 0.0, 0.0]], &[2.0, 3.0, 4.0]);
        assert!((hv - 24.0).abs() < 1e-12);
    }

    #[test]
    fn three_dimensional_union() {
        // Two boxes: (0,0,1) and (1,1,0) vs ref (2,2,2).
        // Box A: [0,2]x[0,2]x[1,2] vol 4; Box B: [1,2]x[1,2]x[0,2] vol 2;
        // overlap [1,2]x[1,2]x[1,2] vol 1 → 5.
        let hv = hypervolume(
            &[vec![0.0, 0.0, 1.0], vec![1.0, 1.0, 0.0]],
            &[2.0, 2.0, 2.0],
        );
        assert!((hv - 5.0).abs() < 1e-12, "hv {hv}");
    }

    #[test]
    fn points_outside_reference_contribute_nothing() {
        let hv = hypervolume(&[vec![4.0, 1.0]], &[3.0, 3.0]);
        assert_eq!(hv, 0.0);
        assert_eq!(hypervolume(&[], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn duplicates_do_not_double_count() {
        let hv = hypervolume(&[vec![1.0, 1.0], vec![1.0, 1.0]], &[2.0, 2.0]);
        assert!((hv - 1.0).abs() < 1e-12);
    }

    #[test]
    fn signed_fitness_matches_fig_4a_semantics() {
        let r = [10.0, 1.0];
        // Feasible: area swept.
        assert!(signed_hypervolume_fitness(&[5.0, 0.5], &r) > 0.0);
        // Infeasible in one dim: negative of 1-D violation distance... times
        // nothing else (product over violated dims only).
        let f = signed_hypervolume_fitness(&[12.0, 0.5], &r);
        assert!((f + 2.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn hv_is_monotone_under_adding_points(
            pts in proptest::collection::vec(proptest::collection::vec(0.0f64..5.0, 2), 1..12),
            extra in proptest::collection::vec(0.0f64..5.0, 2),
        ) {
            let reference = vec![6.0, 6.0];
            let base = hypervolume(&pts, &reference);
            let mut more = pts.clone();
            more.push(extra);
            let bigger = hypervolume(&more, &reference);
            prop_assert!(bigger >= base - 1e-9);
        }

        #[test]
        fn hv_bounded_by_total_box(
            pts in proptest::collection::vec(proptest::collection::vec(0.0f64..5.0, 3), 1..8),
        ) {
            let reference = vec![5.0, 5.0, 5.0];
            let hv = hypervolume(&pts, &reference);
            prop_assert!(hv <= 125.0 + 1e-9);
            prop_assert!(hv >= 0.0);
        }

        #[test]
        fn hv_2d_matches_sweep_formula(
            pts in proptest::collection::vec(proptest::collection::vec(0.0f64..5.0, 2), 1..15),
        ) {
            // Independent 2-D implementation: sort the non-dominated set by
            // x and accumulate staircase slabs.
            let reference = [6.0f64, 6.0];
            let hv = hypervolume(&pts, reference.as_ref());
            let mut nd: Vec<Vec<f64>> = Vec::new();
            'outer: for p in &pts {
                for q in &pts {
                    if q != p && crate::dominates(q, p) { continue 'outer; }
                }
                if !nd.contains(p) { nd.push(p.clone()); }
            }
            nd.sort_by(|a, b| a[0].partial_cmp(&b[0]).unwrap());
            let mut area = 0.0;
            let mut prev_y = reference[1];
            for p in &nd {
                if p[0] >= reference[0] || p[1] >= reference[1] { continue; }
                let y = p[1].min(prev_y);
                area += (reference[0] - p[0]) * (prev_y - y);
                prev_y = y;
            }
            prop_assert!((hv - area).abs() < 1e-9, "hv {hv} vs sweep {area}");
        }
    }
}
