//! Mutation hill-climbing on the signed hyper-volume fitness.
//!
//! A cheap *memetic* polish pass: starting from a seed solution, repeatedly
//! apply the problem's mutation operator and keep strict improvements of
//! the Fig.-4a signed fitness. Useful for refining individual design
//! points after the population-based search, and as a degenerate baseline
//! engine in ablations.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::hypervolume::signed_hypervolume_fitness;
use crate::Problem;

/// Hill-climbing refinement of a single solution.
///
/// # Examples
///
/// ```
/// use clr_moea::{Evaluation, LocalSearch, Problem};
///
/// struct Quad;
/// impl Problem for Quad {
///     type Solution = f64;
///     fn random_solution(&self, _rng: &mut dyn rand::RngCore) -> f64 { 5.0 }
///     fn evaluate(&self, x: &f64) -> Evaluation {
///         Evaluation::feasible(vec![x * x])
///     }
///     fn crossover(&self, a: &f64, _b: &f64, _r: &mut dyn rand::RngCore) -> f64 { *a }
///     fn mutate(&self, x: &mut f64, rng: &mut dyn rand::RngCore) {
///         use rand::Rng;
///         *x += rng.gen_range(-1.0..1.0);
///     }
/// }
///
/// let ls = LocalSearch::new(Quad, vec![100.0]);
/// let (best, fitness) = ls.refine(5.0, 200, 1);
/// assert!(best.abs() < 5.0);          // moved toward the optimum
/// assert!(fitness >= 100.0 - 25.0);   // at least the seed's fitness
/// ```
#[derive(Debug)]
pub struct LocalSearch<P: Problem> {
    problem: P,
    reference: Vec<f64>,
}

impl<P: Problem> LocalSearch<P> {
    /// Creates a refiner with the hyper-volume reference point (one bound
    /// per objective).
    pub fn new(problem: P, reference: Vec<f64>) -> Self {
        Self { problem, reference }
    }

    /// The wrapped problem.
    pub fn problem(&self) -> &P {
        &self.problem
    }

    /// Scores a solution: signed hyper-volume fitness, with problem-level
    /// constraint violations pushing it further negative.
    pub fn score(&self, solution: &P::Solution) -> f64 {
        let eval = self.problem.evaluate(solution);
        assert_eq!(
            eval.objectives.len(),
            self.reference.len(),
            "objective/reference dimension mismatch"
        );
        let mut fitness = signed_hypervolume_fitness(&eval.objectives, &self.reference);
        if !eval.is_feasible() {
            fitness -= eval.violation * (1.0 + fitness.abs());
        }
        fitness
    }

    /// Runs `steps` mutation trials from `seed_solution`, keeping strict
    /// improvements; returns the best solution found and its fitness.
    pub fn refine(
        &self,
        seed_solution: P::Solution,
        steps: usize,
        seed: u64,
    ) -> (P::Solution, f64) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x10ca_15ea_2c40_0001);
        let mut best = seed_solution;
        let mut best_score = self.score(&best);
        for _ in 0..steps {
            let mut candidate = best.clone();
            self.problem.mutate(&mut candidate, &mut rng);
            let s = self.score(&candidate);
            if s > best_score {
                best = candidate;
                best_score = s;
            }
        }
        (best, best_score)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Evaluation;
    use rand::RngCore;

    struct Sphere2;
    impl Problem for Sphere2 {
        type Solution = (f64, f64);
        fn random_solution(&self, _rng: &mut dyn RngCore) -> (f64, f64) {
            (3.0, 3.0)
        }
        fn evaluate(&self, s: &(f64, f64)) -> Evaluation {
            Evaluation::feasible(vec![s.0.abs(), s.1.abs()])
        }
        fn crossover(&self, a: &(f64, f64), _b: &(f64, f64), _r: &mut dyn RngCore) -> (f64, f64) {
            *a
        }
        fn mutate(&self, s: &mut (f64, f64), rng: &mut dyn RngCore) {
            let u = |r: &mut dyn RngCore| r.next_u32() as f64 / u32::MAX as f64 - 0.5;
            s.0 += u(rng);
            s.1 += u(rng);
        }
    }

    #[test]
    fn refinement_never_regresses() {
        let ls = LocalSearch::new(Sphere2, vec![10.0, 10.0]);
        let seed_score = ls.score(&(3.0, 3.0));
        let (_, refined) = ls.refine((3.0, 3.0), 100, 2);
        assert!(refined >= seed_score);
    }

    #[test]
    fn refinement_makes_progress_on_easy_landscapes() {
        let ls = LocalSearch::new(Sphere2, vec![10.0, 10.0]);
        let (best, score) = ls.refine((3.0, 3.0), 2_000, 3);
        assert!(best.0.abs() < 1.5 && best.1.abs() < 1.5, "{best:?}");
        assert!(score > ls.score(&(3.0, 3.0)));
    }

    #[test]
    fn deterministic_per_seed() {
        let ls = LocalSearch::new(Sphere2, vec![10.0, 10.0]);
        assert_eq!(ls.refine((3.0, 3.0), 50, 9), ls.refine((3.0, 3.0), 50, 9));
    }
}
