//! SPEA2 (Zitzler, Laumanns & Thiele, 2001): strength-Pareto evolutionary
//! algorithm with nearest-neighbour density estimation and archive
//! truncation.
//!
//! The paper's original implementation drew its GAs from DEAP/PYGMO, which
//! ship SPEA2 alongside NSGA-II; providing both lets the ablation benches
//! compare engine choices on the CLR mapping problem.

use clr_obs::{Event, Obs};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dominance::dominates;
use crate::nsga2::Individual;
use crate::{Evaluation, GaParams, Problem};

/// The SPEA2 optimiser.
///
/// Constraint handling mirrors the crate's NSGA-II: a feasible individual
/// constraint-dominates any infeasible one; infeasibles compare by
/// violation.
///
/// # Examples
///
/// ```
/// use clr_moea::{Evaluation, GaParams, Problem, Spea2};
/// use rand::Rng;
///
/// struct Schaffer;
/// impl Problem for Schaffer {
///     type Solution = f64;
///     fn random_solution(&self, rng: &mut dyn rand::RngCore) -> f64 {
///         rng.gen_range(-10.0..10.0)
///     }
///     fn evaluate(&self, x: &f64) -> Evaluation {
///         Evaluation::feasible(vec![x * x, (x - 2.0) * (x - 2.0)])
///     }
///     fn crossover(&self, a: &f64, b: &f64, _r: &mut dyn rand::RngCore) -> f64 {
///         (a + b) / 2.0
///     }
///     fn mutate(&self, x: &mut f64, rng: &mut dyn rand::RngCore) {
///         *x += rng.gen_range(-0.5..0.5);
///     }
/// }
///
/// let front = Spea2::new(Schaffer, GaParams::small()).run(3);
/// assert!(!front.is_empty());
/// ```
#[derive(Debug)]
pub struct Spea2<P: Problem> {
    problem: P,
    params: GaParams,
    obs: Obs,
    label: String,
}

impl<P: Problem> Spea2<P> {
    /// Creates an optimiser (the archive size equals the population size).
    pub fn new(problem: P, params: GaParams) -> Self {
        Self {
            problem,
            params,
            obs: Obs::off(),
            label: "spea2".to_string(),
        }
    }

    /// Attaches an observability handle and a run label; per-generation
    /// `ga_gen` events, a `gen` logical-clock span, and aggregated pool
    /// statistics are recorded under that label.
    #[must_use]
    pub fn with_obs(mut self, obs: Obs, label: impl Into<String>) -> Self {
        self.obs = obs;
        self.label = label.into();
        self
    }

    /// The wrapped problem.
    pub fn problem(&self) -> &P {
        &self.problem
    }

    /// Runs SPEA2 from `seed` and returns the final archive's feasible
    /// non-dominated individuals (the whole archive if none is feasible).
    ///
    /// Population evaluation fans out over `params.threads` workers
    /// (`0` = automatic); all RNG-driven variation stays on the master
    /// thread, so the result is bit-identical for every thread count.
    pub fn run(&self, seed: u64) -> Vec<Individual<P::Solution>> {
        let p = &self.params;
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5bea_2000_dead_beef);
        let initial: Vec<P::Solution> = (0..p.population)
            .map(|_| self.problem.random_solution(&mut rng))
            .collect();
        let mut pool = clr_par::PoolStats::default();
        let mut population = self.evaluate_all(initial, &mut pool);
        let mut archive: Vec<Entry<P::Solution>> = Vec::new();

        for gen in 0..=p.generations {
            // --- Fitness over the union. --------------------------------
            let mut union: Vec<Entry<P::Solution>> = Vec::new();
            union.append(&mut population);
            union.append(&mut archive);
            let fitness = spea2_fitness(&union);

            // --- Environmental selection into the next archive. ---------
            let mut idx: Vec<usize> = (0..union.len()).collect();
            idx.sort_by(|&a, &b| fitness[a].total_cmp(&fitness[b]));
            let cap = p.population;
            let non_dominated: Vec<usize> =
                idx.iter().copied().filter(|&i| fitness[i] < 1.0).collect();
            let chosen: Vec<usize> = if non_dominated.len() > cap {
                truncate_by_density(&union, non_dominated, cap)
            } else {
                idx.into_iter().take(cap).collect()
            };
            let front = chosen.iter().filter(|&&i| fitness[i] < 1.0).count();
            let mut keep = vec![false; union.len()];
            for &i in &chosen {
                keep[i] = true;
            }
            let mut next_archive = Vec::with_capacity(cap);
            for (i, e) in union.into_iter().enumerate() {
                if keep[i] {
                    next_archive.push(e);
                }
            }
            archive = next_archive;
            if self.obs.enabled() {
                // Serial master-loop emission: one `ga_gen` per generation
                // (no reference point, so no hyper-volume series).
                self.obs.emit(Event::GaGen {
                    algo: "spea2".to_string(),
                    label: self.label.clone(),
                    gen,
                    evals: p.population,
                    feasible: archive.iter().filter(|e| e.eval.is_feasible()).count(),
                    front,
                    archive: archive.len(),
                    hv: None,
                });
            }

            // --- Mating from the archive. --------------------------------
            let arch_fitness = spea2_fitness(&archive);
            let children: Vec<P::Solution> = (0..cap)
                .map(|_| {
                    let a = tournament(&arch_fitness, p.tournament, &mut rng);
                    let b = tournament(&arch_fitness, p.tournament, &mut rng);
                    let mut child = if rng.gen_bool(p.crossover_prob) {
                        self.problem
                            .crossover(&archive[a].solution, &archive[b].solution, &mut rng)
                    } else {
                        archive[a].solution.clone()
                    };
                    if rng.gen_bool(p.mutation_prob.clamp(0.0, 1.0)) {
                        self.problem.mutate(&mut child, &mut rng);
                    }
                    child
                })
                .collect();
            population = self.evaluate_all(children, &mut pool);
        }
        if self.obs.enabled() {
            self.obs.emit(Event::Span {
                label: self.label.clone(),
                clock: "gen".to_string(),
                start: 0.0,
                end: p.generations as f64,
            });
            self.obs.emit_nondet(Event::Pool {
                site: format!("moea.spea2.{}", self.label),
                items: pool.items,
                workers: pool.workers,
                per_worker: pool.per_worker.clone(),
                queue_hwm: pool.queue_hwm,
            });
        }

        // --- Extract the feasible non-dominated archive members. ---------
        let feasible: Vec<&Entry<P::Solution>> =
            archive.iter().filter(|e| e.eval.is_feasible()).collect();
        let pool: Vec<&Entry<P::Solution>> = if feasible.is_empty() {
            archive.iter().collect()
        } else {
            feasible
        };
        let mut out = Vec::new();
        'outer: for (i, e) in pool.iter().enumerate() {
            for (j, other) in pool.iter().enumerate() {
                if i != j && constrained_dominates(other, e) {
                    continue 'outer;
                }
            }
            out.push(Individual {
                solution: e.solution.clone(),
                objectives: e.eval.objectives.clone(),
                violation: e.eval.violation,
                rank: 0,
                crowding: 0.0,
            });
        }
        out
    }

    /// Evaluates a batch of genotypes on the worker pool, preserving input
    /// order.
    fn evaluate_all(
        &self,
        solutions: Vec<P::Solution>,
        pool: &mut clr_par::PoolStats,
    ) -> Vec<Entry<P::Solution>> {
        let (evals, stats) = clr_par::par_map_stats(self.params.threads, &solutions, |_, s| {
            self.problem.evaluate(s)
        });
        pool.merge(&stats);
        solutions
            .into_iter()
            .zip(evals)
            .map(|(solution, eval)| Entry { solution, eval })
            .collect()
    }
}

struct Entry<S> {
    solution: S,
    eval: Evaluation,
}

fn constrained_dominates<S>(a: &Entry<S>, b: &Entry<S>) -> bool {
    match (a.eval.is_feasible(), b.eval.is_feasible()) {
        (true, false) => true,
        (false, true) => false,
        (false, false) => a.eval.violation < b.eval.violation,
        (true, true) => dominates(&a.eval.objectives, &b.eval.objectives),
    }
}

/// SPEA2 fitness: raw strength-based fitness + density (lower is better;
/// `< 1` ⇔ non-dominated).
fn spea2_fitness<S>(entries: &[Entry<S>]) -> Vec<f64> {
    let n = entries.len();
    if n == 0 {
        return Vec::new();
    }
    // Strengths.
    let mut strength = vec![0usize; n];
    for i in 0..n {
        for j in 0..n {
            if i != j && constrained_dominates(&entries[i], &entries[j]) {
                strength[i] += 1;
            }
        }
    }
    // Raw fitness.
    let mut raw = vec![0.0f64; n];
    for i in 0..n {
        for j in 0..n {
            if i != j && constrained_dominates(&entries[j], &entries[i]) {
                raw[i] += strength[j] as f64;
            }
        }
    }
    // Density: k-th nearest neighbour in objective space.
    let k = (n as f64).sqrt() as usize;
    let mut fitness = Vec::with_capacity(n);
    for i in 0..n {
        let mut dists: Vec<f64> = (0..n)
            .filter(|&j| j != i)
            .map(|j| euclid(&entries[i].eval.objectives, &entries[j].eval.objectives))
            .collect();
        dists.sort_by(f64::total_cmp);
        let sigma_k = dists.get(k.saturating_sub(1)).copied().unwrap_or(0.0);
        fitness.push(raw[i] + 1.0 / (sigma_k + 2.0));
    }
    fitness
}

fn euclid(a: &[f64], b: &[f64]) -> f64 {
    if a.len() != b.len() {
        // Mixed dimensionalities only occur transiently for bogus init
        // entries; treat them as infinitely far.
        return f64::MAX;
    }
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Iterative truncation: repeatedly drop the entry with the smallest
/// nearest-neighbour distance until `cap` remain.
fn truncate_by_density<S>(entries: &[Entry<S>], mut chosen: Vec<usize>, cap: usize) -> Vec<usize> {
    while chosen.len() > cap {
        let mut victim = 0usize;
        let mut best = f64::MAX;
        for (pos, &i) in chosen.iter().enumerate() {
            let nn = chosen
                .iter()
                .filter(|&&j| j != i)
                .map(|&j| euclid(&entries[i].eval.objectives, &entries[j].eval.objectives))
                .fold(f64::MAX, f64::min);
            if nn < best {
                best = nn;
                victim = pos;
            }
        }
        chosen.swap_remove(victim);
    }
    chosen
}

fn tournament(fitness: &[f64], k: usize, rng: &mut StdRng) -> usize {
    let mut best = rng.gen_range(0..fitness.len());
    for _ in 1..k.max(1) {
        let c = rng.gen_range(0..fitness.len());
        if fitness[c] < fitness[best] {
            best = c;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    struct Schaffer;
    impl Problem for Schaffer {
        type Solution = f64;
        fn random_solution(&self, rng: &mut dyn RngCore) -> f64 {
            (rng.next_u32() as f64 / u32::MAX as f64) * 20.0 - 10.0
        }
        fn evaluate(&self, x: &f64) -> Evaluation {
            Evaluation::feasible(vec![x * x, (x - 2.0) * (x - 2.0)])
        }
        fn crossover(&self, a: &f64, b: &f64, _r: &mut dyn RngCore) -> f64 {
            (a + b) / 2.0
        }
        fn mutate(&self, x: &mut f64, rng: &mut dyn RngCore) {
            *x += (rng.next_u32() as f64 / u32::MAX as f64) - 0.5;
        }
    }

    struct ConstrainedSchaffer;
    impl Problem for ConstrainedSchaffer {
        type Solution = f64;
        fn random_solution(&self, rng: &mut dyn RngCore) -> f64 {
            (rng.next_u32() as f64 / u32::MAX as f64) * 20.0 - 10.0
        }
        fn evaluate(&self, x: &f64) -> Evaluation {
            Evaluation::with_violation(vec![x * x, (x - 2.0) * (x - 2.0)], (1.0 - x).max(0.0))
        }
        fn crossover(&self, a: &f64, b: &f64, _r: &mut dyn RngCore) -> f64 {
            (a + b) / 2.0
        }
        fn mutate(&self, x: &mut f64, rng: &mut dyn RngCore) {
            *x += (rng.next_u32() as f64 / u32::MAX as f64) - 0.5;
        }
    }

    #[test]
    fn schaffer_front_converges() {
        let params = GaParams {
            population: 60,
            generations: 30,
            ..GaParams::default()
        };
        let front = Spea2::new(Schaffer, params).run(1);
        assert!(front.len() >= 5, "front size {}", front.len());
        for ind in &front {
            assert!((-0.5..=2.5).contains(&ind.solution), "x = {}", ind.solution);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<f64> = Spea2::new(Schaffer, GaParams::small())
            .run(4)
            .into_iter()
            .map(|i| i.solution)
            .collect();
        let b: Vec<f64> = Spea2::new(Schaffer, GaParams::small())
            .run(4)
            .into_iter()
            .map(|i| i.solution)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn serial_and_parallel_runs_are_bit_identical() {
        for seed in [0u64, 4, 31] {
            let serial = Spea2::new(
                ConstrainedSchaffer,
                GaParams {
                    threads: 1,
                    ..GaParams::small()
                },
            )
            .run(seed);
            let parallel = Spea2::new(
                ConstrainedSchaffer,
                GaParams {
                    threads: 4,
                    ..GaParams::small()
                },
            )
            .run(seed);
            let a: Vec<u64> = serial.iter().map(|i| i.solution.to_bits()).collect();
            let b: Vec<u64> = parallel.iter().map(|i| i.solution.to_bits()).collect();
            assert_eq!(a, b, "seed {seed}");
        }
    }

    #[test]
    fn output_is_mutually_non_dominated() {
        let front = Spea2::new(Schaffer, GaParams::small()).run(5);
        for a in &front {
            for b in &front {
                assert!(!dominates(&a.objectives, &b.objectives));
            }
        }
    }

    #[test]
    fn constraints_are_respected() {
        let params = GaParams {
            population: 60,
            generations: 30,
            ..GaParams::default()
        };
        let front = Spea2::new(ConstrainedSchaffer, params).run(6);
        for ind in &front {
            assert!(ind.is_feasible(), "x = {}", ind.solution);
        }
    }
}
