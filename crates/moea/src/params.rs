//! GA hyper-parameters.

use serde::{Deserialize, Serialize};

/// Hyper-parameters of the evolutionary loops.
///
/// Defaults match the paper's experimental setup (§5.1): crossover
/// probability 0.7, mutation probability 0.03, tournament selection with
/// 5 individuals.
///
/// # Examples
///
/// ```
/// use clr_moea::GaParams;
/// let p = GaParams::default();
/// assert_eq!(p.crossover_prob, 0.7);
/// assert_eq!(p.mutation_prob, 0.03);
/// assert_eq!(p.tournament, 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GaParams {
    /// Population size.
    pub population: usize,
    /// Number of generations to evolve.
    pub generations: usize,
    /// Probability of applying crossover to a mating pair.
    pub crossover_prob: f64,
    /// Per-offspring probability of mutation (the problem's `mutate`
    /// decides the per-gene behaviour).
    pub mutation_prob: f64,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Worker threads for population evaluation (`0` = automatic: the
    /// `CLR_THREADS` environment variable, falling back to the machine's
    /// available parallelism). Results are bit-identical for every value;
    /// the thread count only changes wall-clock time.
    #[serde(default)]
    pub threads: usize,
}

impl Default for GaParams {
    fn default() -> Self {
        Self {
            population: 100,
            generations: 60,
            crossover_prob: 0.7,
            mutation_prob: 0.03,
            tournament: 5,
            threads: 0,
        }
    }
}

impl GaParams {
    /// A small, fast configuration for tests and smoke benches.
    pub fn small() -> Self {
        Self {
            population: 24,
            generations: 12,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_is_smaller() {
        assert!(GaParams::small().population < GaParams::default().population);
        assert_eq!(GaParams::small().crossover_prob, 0.7);
    }
}
