//! Front-quality indicators beyond the hyper-volume: inverted
//! generational distance (IGD) against a reference front, and Schott's
//! spacing metric. Used by the ablation studies to compare GA engines.

use crate::dominance::dominates;

fn euclid(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Inverted generational distance: the mean distance from each point of
/// the `reference` front to its nearest neighbour in `front` (lower is
/// better; 0 means the front covers the reference).
///
/// Returns `None` when either set is empty.
///
/// # Examples
///
/// ```
/// use clr_moea::igd;
/// let reference = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
/// let exact = igd(&reference, &reference).unwrap();
/// assert_eq!(exact, 0.0);
/// let off = igd(&[vec![0.5, 1.5]], &reference).unwrap();
/// assert!(off > 0.0);
/// ```
pub fn igd(front: &[Vec<f64>], reference: &[Vec<f64>]) -> Option<f64> {
    if front.is_empty() || reference.is_empty() {
        return None;
    }
    let total: f64 = reference
        .iter()
        .map(|r| {
            front
                .iter()
                .map(|p| euclid(p, r))
                .fold(f64::INFINITY, f64::min)
        })
        .sum();
    Some(total / reference.len() as f64)
}

/// Schott's spacing metric: the standard deviation of nearest-neighbour
/// distances within a front (lower = more evenly spread). Returns `None`
/// for fronts with fewer than two points.
///
/// # Examples
///
/// ```
/// use clr_moea::spacing;
/// // Perfectly even staircase → spacing 0.
/// let even = vec![vec![0.0, 2.0], vec![1.0, 1.0], vec![2.0, 0.0]];
/// assert!(spacing(&even).unwrap() < 1e-12);
/// ```
pub fn spacing(front: &[Vec<f64>]) -> Option<f64> {
    if front.len() < 2 {
        return None;
    }
    let nn: Vec<f64> = front
        .iter()
        .enumerate()
        .map(|(i, p)| {
            front
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, q)| euclid(p, q))
                .fold(f64::INFINITY, f64::min)
        })
        .collect();
    let mean = nn.iter().sum::<f64>() / nn.len() as f64;
    let var = nn.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / (nn.len() - 1) as f64;
    Some(var.sqrt())
}

/// The coverage indicator `C(a, b)`: the fraction of `b` weakly dominated
/// by some point of `a` (1 = `a` completely covers `b`). Returns `None`
/// when `b` is empty.
///
/// # Examples
///
/// ```
/// use clr_moea::coverage;
/// let a = vec![vec![0.0, 0.0]];
/// let b = vec![vec![1.0, 1.0], vec![-1.0, 2.0]];
/// assert_eq!(coverage(&a, &b), Some(0.5));
/// ```
pub fn coverage(a: &[Vec<f64>], b: &[Vec<f64>]) -> Option<f64> {
    if b.is_empty() {
        return None;
    }
    let covered = b
        .iter()
        .filter(|q| a.iter().any(|p| p == *q || dominates(p, q)))
        .count();
    Some(covered as f64 / b.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn igd_empty_inputs() {
        assert_eq!(igd(&[], &[vec![0.0]]), None);
        assert_eq!(igd(&[vec![0.0]], &[]), None);
    }

    #[test]
    fn igd_improves_with_closer_fronts() {
        let reference = vec![vec![0.0, 1.0], vec![0.5, 0.5], vec![1.0, 0.0]];
        let near = vec![vec![0.1, 1.0], vec![0.5, 0.6], vec![1.0, 0.1]];
        let far = vec![vec![2.0, 2.0]];
        assert!(igd(&near, &reference).unwrap() < igd(&far, &reference).unwrap());
    }

    #[test]
    fn spacing_requires_two_points() {
        assert_eq!(spacing(&[vec![1.0, 1.0]]), None);
    }

    #[test]
    fn uneven_fronts_have_higher_spacing() {
        let even = vec![
            vec![0.0, 3.0],
            vec![1.0, 2.0],
            vec![2.0, 1.0],
            vec![3.0, 0.0],
        ];
        let clumped = vec![
            vec![0.0, 3.0],
            vec![0.1, 2.9],
            vec![0.2, 2.8],
            vec![3.0, 0.0],
        ];
        assert!(spacing(&clumped).unwrap() > spacing(&even).unwrap());
    }

    #[test]
    fn coverage_of_self_is_total() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 1.0]];
        assert_eq!(coverage(&a, &a), Some(1.0));
        assert_eq!(coverage(&a, &[]), None);
    }

    proptest! {
        #[test]
        fn igd_is_nonnegative_and_zero_on_self(
            pts in proptest::collection::vec(proptest::collection::vec(0.0f64..10.0, 2), 1..20)
        ) {
            let v = igd(&pts, &pts).unwrap();
            prop_assert!(v.abs() < 1e-12);
        }

        #[test]
        fn coverage_is_a_fraction(
            a in proptest::collection::vec(proptest::collection::vec(0.0f64..10.0, 2), 1..10),
            b in proptest::collection::vec(proptest::collection::vec(0.0f64..10.0, 2), 1..10),
        ) {
            let c = coverage(&a, &b).unwrap();
            prop_assert!((0.0..=1.0).contains(&c));
        }
    }
}
