//! Hyper-volume-fitness GA: the solution technique of paper Eq. (5) /
//! Fig. 4a.
//!
//! Each individual's scalar fitness is its *signed* hyper-volume w.r.t.
//! the reference point `R` that encodes the QoS constraints (maximum
//! `S_SPEC`, minimum `F_SPEC` expressed as maximum error rate, and an
//! energy ceiling): feasible points earn the volume they sweep, infeasible
//! points are charged the violation box. Tournament selection (size 5 by
//! default) maximises this fitness, and every feasible evaluation is offered
//! to a non-dominated archive — the optimiser's result is the archive, i.e.
//! the collection `p_i` whose summed hyper-volume Eq. (5) maximises.

use clr_obs::{Event, Obs};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::hypervolume::{hypervolume, signed_hypervolume_fitness};
use crate::{GaParams, ParetoArchive, Problem};

/// The hyper-volume-maximisation GA.
///
/// # Examples
///
/// ```
/// use clr_moea::{Evaluation, GaParams, HvGa, Problem};
/// use rand::Rng;
///
/// struct Sphere;
/// impl Problem for Sphere {
///     type Solution = (f64, f64);
///     fn random_solution(&self, rng: &mut dyn rand::RngCore) -> (f64, f64) {
///         (rng.gen_range(0.0..4.0), rng.gen_range(0.0..4.0))
///     }
///     fn evaluate(&self, s: &(f64, f64)) -> Evaluation {
///         Evaluation::feasible(vec![s.0, s.1])
///     }
///     fn crossover(&self, a: &(f64, f64), b: &(f64, f64), _r: &mut dyn rand::RngCore) -> (f64, f64) {
///         (a.0, b.1)
///     }
///     fn mutate(&self, s: &mut (f64, f64), rng: &mut dyn rand::RngCore) {
///         s.0 = (s.0 + rng.gen_range(-0.2..0.2)).max(0.0);
///         s.1 = (s.1 + rng.gen_range(-0.2..0.2)).max(0.0);
///     }
/// }
///
/// let hv = HvGa::new(Sphere, GaParams::small(), vec![2.0, 2.0]);
/// let archive = hv.run(1);
/// // Only points inside the reference box survive.
/// assert!(archive.iter().all(|(_, o)| o[0] <= 2.0 && o[1] <= 2.0));
/// ```
#[derive(Debug)]
pub struct HvGa<P: Problem> {
    problem: P,
    params: GaParams,
    reference: Vec<f64>,
    obs: Obs,
    label: String,
}

impl<P: Problem> HvGa<P> {
    /// Creates an optimiser with the given QoS reference point (one bound
    /// per objective, same order as the problem's objective vector).
    pub fn new(problem: P, params: GaParams, reference: Vec<f64>) -> Self {
        Self {
            problem,
            params,
            reference,
            obs: Obs::off(),
            label: "hvga".to_string(),
        }
    }

    /// Attaches an observability handle and a run label; per-generation
    /// `ga_gen` events (including the Eq. 5 hyper-volume series), a `gen`
    /// logical-clock span, and aggregated pool statistics are recorded
    /// under that label.
    #[must_use]
    pub fn with_obs(mut self, obs: Obs, label: impl Into<String>) -> Self {
        self.obs = obs;
        self.label = label.into();
        self
    }

    /// The wrapped problem.
    pub fn problem(&self) -> &P {
        &self.problem
    }

    /// The QoS reference point.
    pub fn reference(&self) -> &[f64] {
        &self.reference
    }

    /// Runs the GA and returns the non-dominated archive of *feasible*
    /// design points discovered across all generations.
    ///
    /// Population evaluation fans out over `params.threads` workers
    /// (`0` = automatic); all RNG-driven variation stays on the master
    /// thread, so the result is bit-identical for every thread count.
    ///
    /// # Panics
    ///
    /// Panics if the problem emits objective vectors whose length differs
    /// from the reference point's.
    pub fn run(&self, seed: u64) -> ParetoArchive<P::Solution> {
        let p = &self.params;
        let mut rng = StdRng::seed_from_u64(seed ^ 0x4856_4741_8d5a_11c3);
        let mut archive = ParetoArchive::unbounded();
        let mut pool = clr_par::PoolStats::default();

        let initial: Vec<P::Solution> = (0..p.population)
            .map(|_| self.problem.random_solution(&mut rng))
            .collect();
        // (solution, fitness, feasible?)
        let mut pop = self.score_all(initial, &mut archive, &mut pool);
        self.emit_generation(0, &pop, &archive);

        for gen in 0..p.generations {
            let mut children = Vec::with_capacity(p.population);
            while children.len() < p.population {
                let a = self.tournament(&pop, &mut rng);
                let b = self.tournament(&pop, &mut rng);
                let mut child = if rng.gen_bool(p.crossover_prob) {
                    self.problem.crossover(&pop[a].0, &pop[b].0, &mut rng)
                } else {
                    pop[a].0.clone()
                };
                if rng.gen_bool(p.mutation_prob.clamp(0.0, 1.0)) {
                    self.problem.mutate(&mut child, &mut rng);
                }
                children.push(child);
            }
            let mut next = self.score_all(children, &mut archive, &mut pool);
            // Elitism: keep the single best of the old generation. The old
            // population is about to be dropped, so swapping the elite into
            // slot 0 is allocation-free (the displaced child was already
            // scored and offered to the archive above).
            if let Some(best) = pop
                .iter()
                .enumerate()
                .max_by(|(_, a), (_, b)| a.1.total_cmp(&b.1))
                .map(|(i, _)| i)
            {
                std::mem::swap(&mut next[0], &mut pop[best]);
            }
            pop = next;
            self.emit_generation(gen + 1, &pop, &archive);
        }
        if self.obs.enabled() {
            self.obs.emit(Event::Span {
                label: self.label.clone(),
                clock: "gen".to_string(),
                start: 0.0,
                end: p.generations as f64,
            });
            self.obs.emit_nondet(Event::Pool {
                site: format!("moea.hvga.{}", self.label),
                items: pool.items,
                workers: pool.workers,
                per_worker: pool.per_worker,
                queue_hwm: pool.queue_hwm,
            });
        }
        archive
    }

    /// Emits one `ga_gen` journal event (serially, from the master loop)
    /// with the current population and archive statistics, including the
    /// Eq. 5 hyper-volume of the archive w.r.t. the reference point. The
    /// hyper-volume is only computed when observability is enabled, so the
    /// disabled path stays overhead-free.
    fn emit_generation(
        &self,
        gen: usize,
        pop: &[(P::Solution, f64, bool)],
        archive: &ParetoArchive<P::Solution>,
    ) {
        if !self.obs.enabled() {
            return;
        }
        let hv = hypervolume(&archive.objectives(), &self.reference).ok();
        self.obs.emit(Event::GaGen {
            algo: "hvga".to_string(),
            label: self.label.clone(),
            gen,
            evals: pop.len(),
            feasible: pop.iter().filter(|(_, _, ok)| *ok).count(),
            front: archive.len(),
            archive: archive.len(),
            hv,
        });
    }

    /// Evaluates a batch of solutions on the worker pool, then — serially,
    /// in index order — offers feasible points to the archive and attaches
    /// each solution's signed hyper-volume fitness.
    fn score_all(
        &self,
        solutions: Vec<P::Solution>,
        archive: &mut ParetoArchive<P::Solution>,
        pool: &mut clr_par::PoolStats,
    ) -> Vec<(P::Solution, f64, bool)> {
        let (evals, stats) = clr_par::par_map_stats(self.params.threads, &solutions, |_, s| {
            self.problem.evaluate(s)
        });
        pool.merge(&stats);
        solutions
            .into_iter()
            .zip(evals)
            .map(|(s, eval)| {
                let (fitness, feasible) = self.score(&eval);
                if feasible {
                    archive.offer(&s, eval.objectives);
                }
                (s, fitness, feasible)
            })
            .collect()
    }

    /// Signed hyper-volume fitness of one evaluation. Non-finite objective
    /// vectors are treated as hard-infeasible (`-inf` fitness) so they can
    /// never reach the archive or poison comparisons with NaN.
    fn score(&self, eval: &crate::Evaluation) -> (f64, bool) {
        assert_eq!(
            eval.objectives.len(),
            self.reference.len(),
            "objective/reference dimension mismatch"
        );
        if eval.objectives.iter().any(|o| !o.is_finite()) {
            return (f64::NEG_INFINITY, false);
        }
        let mut fitness = signed_hypervolume_fitness(&eval.objectives, &self.reference);
        if !eval.is_feasible() {
            // Problem-level constraint violations (beyond the reference
            // box) push fitness further negative.
            fitness -= eval.violation.max(0.0) * (1.0 + fitness.abs());
        }
        let feasible = eval.is_feasible() && fitness >= 0.0;
        (fitness, feasible)
    }

    fn tournament(&self, pop: &[(P::Solution, f64, bool)], rng: &mut StdRng) -> usize {
        let mut best = rng.gen_range(0..pop.len());
        for _ in 1..self.params.tournament.max(1) {
            let c = rng.gen_range(0..pop.len());
            if pop[c].1 > pop[best].1 {
                best = c;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Evaluation;
    use rand::RngCore;

    fn unit(rng: &mut dyn RngCore) -> f64 {
        rng.next_u32() as f64 / u32::MAX as f64
    }

    /// min (x, 1−x) — the front is the whole diagonal segment.
    struct Diagonal;
    impl Problem for Diagonal {
        type Solution = f64;
        fn random_solution(&self, rng: &mut dyn RngCore) -> f64 {
            unit(rng) * 2.0
        }
        fn evaluate(&self, x: &f64) -> Evaluation {
            Evaluation::feasible(vec![*x, (1.0 - x).abs()])
        }
        fn crossover(&self, a: &f64, b: &f64, _r: &mut dyn RngCore) -> f64 {
            (a + b) / 2.0
        }
        fn mutate(&self, x: &mut f64, rng: &mut dyn RngCore) {
            *x = (*x + unit(rng) * 0.4 - 0.2).clamp(0.0, 2.0);
        }
    }

    #[test]
    fn archive_respects_reference_box() {
        let hv = HvGa::new(Diagonal, GaParams::small(), vec![0.8, 0.8]);
        let archive = hv.run(2);
        assert!(!archive.is_empty());
        for (_, o) in &archive {
            assert!(o[0] <= 0.8 && o[1] <= 0.8, "{o:?} outside box");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = HvGa::new(Diagonal, GaParams::small(), vec![1.0, 1.0]).run(5);
        let b = HvGa::new(Diagonal, GaParams::small(), vec![1.0, 1.0]).run(5);
        assert_eq!(a.objectives(), b.objectives());
    }

    #[test]
    fn serial_and_parallel_runs_are_bit_identical() {
        for seed in [0u64, 7, 42] {
            let serial = HvGa::new(
                Diagonal,
                GaParams {
                    threads: 1,
                    ..GaParams::small()
                },
                vec![1.0, 1.0],
            )
            .run(seed);
            let parallel = HvGa::new(
                Diagonal,
                GaParams {
                    threads: 4,
                    ..GaParams::small()
                },
                vec![1.0, 1.0],
            )
            .run(seed);
            let a: Vec<Vec<u64>> = serial
                .objectives()
                .iter()
                .map(|o| o.iter().map(|x| x.to_bits()).collect())
                .collect();
            let b: Vec<Vec<u64>> = parallel
                .objectives()
                .iter()
                .map(|o| o.iter().map(|x| x.to_bits()).collect())
                .collect();
            assert_eq!(a, b, "seed {seed}");
        }
    }

    /// Emits a NaN objective for part of the search space; the GA must
    /// treat those candidates as hard-infeasible instead of panicking.
    struct PartiallyNaN;
    impl Problem for PartiallyNaN {
        type Solution = f64;
        fn random_solution(&self, rng: &mut dyn RngCore) -> f64 {
            unit(rng) * 2.0
        }
        fn evaluate(&self, x: &f64) -> Evaluation {
            if *x > 1.0 {
                Evaluation::feasible(vec![f64::NAN, *x])
            } else {
                Evaluation::feasible(vec![*x, 1.0 - x])
            }
        }
        fn crossover(&self, a: &f64, b: &f64, _r: &mut dyn RngCore) -> f64 {
            (a + b) / 2.0
        }
        fn mutate(&self, x: &mut f64, rng: &mut dyn RngCore) {
            *x = (*x + unit(rng) * 0.8 - 0.4).clamp(0.0, 2.0);
        }
    }

    #[test]
    fn nan_objectives_never_reach_the_archive() {
        let archive = HvGa::new(PartiallyNaN, GaParams::small(), vec![1.0, 1.0]).run(11);
        for (_, o) in &archive {
            assert!(o.iter().all(|x| x.is_finite()), "{o:?} archived");
        }
    }

    #[test]
    fn obs_records_one_ga_gen_per_generation_with_hv_series() {
        use clr_obs::{Event, Obs, ObsMode};
        let obs = Obs::new(ObsMode::Json);
        let params = GaParams::small();
        HvGa::new(Diagonal, params, vec![1.0, 1.0])
            .with_obs(obs.clone(), "unit-hv")
            .run(5);
        let events = obs.det_events();
        let gens: Vec<&Event> = events
            .iter()
            .filter(|e| matches!(e, Event::GaGen { .. }))
            .collect();
        // Initial population + one per generation.
        assert_eq!(gens.len(), params.generations + 1);
        for (i, e) in gens.iter().enumerate() {
            let Event::GaGen {
                algo,
                label,
                gen,
                evals,
                hv,
                ..
            } = e
            else {
                unreachable!()
            };
            assert_eq!(algo, "hvga");
            assert_eq!(label, "unit-hv");
            assert_eq!(*gen, i);
            assert_eq!(*evals, params.population);
            assert!(hv.is_some(), "hyper-volume series must be populated");
        }
        assert!(events
            .iter()
            .any(|e| matches!(e, Event::Span { clock, .. } if clock == "gen")));
    }

    #[test]
    fn obs_instrumentation_does_not_change_results() {
        let plain = HvGa::new(Diagonal, GaParams::small(), vec![1.0, 1.0]).run(5);
        let observed = HvGa::new(Diagonal, GaParams::small(), vec![1.0, 1.0])
            .with_obs(clr_obs::Obs::new(clr_obs::ObsMode::Json), "x")
            .run(5);
        assert_eq!(plain.objectives(), observed.objectives());
    }

    #[test]
    fn infeasible_reference_yields_empty_archive() {
        // Objectives are x and |1−x|, both can't be below 0.2 at once
        // (their sum is ≥ 1 for x ≤ 1... but x can exceed 1: then o0 > 1 >
        // 0.2). With ref (0.2, 0.2) nothing is feasible.
        let hv = HvGa::new(Diagonal, GaParams::small(), vec![0.2, 0.2]);
        let archive = hv.run(3);
        assert!(archive.is_empty());
    }
}
