//! Bounded non-dominated archive.

use serde::{Deserialize, Serialize};

use crate::dominance::{crowding_distances, dominates};

/// An archive keeping mutually non-dominated `(solution, objectives)`
/// pairs, optionally bounded by crowding-based pruning.
///
/// # Examples
///
/// ```
/// use clr_moea::ParetoArchive;
/// let mut a = ParetoArchive::unbounded();
/// assert!(a.insert("x", vec![1.0, 2.0]));
/// assert!(!a.insert("y", vec![2.0, 3.0])); // dominated
/// assert!(a.insert("z", vec![0.5, 2.5])); // trade-off
/// assert_eq!(a.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParetoArchive<S> {
    entries: Vec<(S, Vec<f64>)>,
    capacity: Option<usize>,
}

impl<S: Clone> ParetoArchive<S> {
    /// An archive with no size bound.
    pub fn unbounded() -> Self {
        Self {
            entries: Vec::new(),
            capacity: None,
        }
    }

    /// An archive pruned to `capacity` entries by crowding distance
    /// (most-crowded entries are dropped first).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn bounded(capacity: usize) -> Self {
        assert!(capacity > 0, "archive capacity must be positive");
        Self {
            entries: Vec::new(),
            capacity: Some(capacity),
        }
    }

    /// Attempts to insert a candidate. Returns `true` if the candidate was
    /// admitted (it is not dominated by, nor identical in objectives to,
    /// any current entry); dominated incumbents are evicted.
    pub fn insert(&mut self, solution: S, objectives: Vec<f64>) -> bool {
        if !self.admissible(&objectives) {
            return false;
        }
        self.commit(solution, objectives);
        true
    }

    /// Like [`insert`](Self::insert), but takes the solution by reference
    /// and clones it **only if it is admitted** — the right call in scoring
    /// loops where most candidates are rejected.
    pub fn offer(&mut self, solution: &S, objectives: Vec<f64>) -> bool {
        if !self.admissible(&objectives) {
            return false;
        }
        self.commit(solution.clone(), objectives);
        true
    }

    /// `true` if the candidate objectives are neither dominated by nor
    /// identical to any current entry.
    fn admissible(&self, objectives: &[f64]) -> bool {
        !self.entries.iter().any(|(_, existing)| {
            dominates(existing, objectives) || existing.as_slice() == objectives
        })
    }

    /// Inserts an admissible candidate: evicts dominated incumbents, then
    /// enforces the capacity bound.
    fn commit(&mut self, solution: S, objectives: Vec<f64>) {
        self.entries
            .retain(|(_, existing)| !dominates(&objectives, existing));
        self.entries.push((solution, objectives));
        if let Some(cap) = self.capacity {
            while self.entries.len() > cap {
                self.prune_most_crowded();
            }
        }
    }

    fn prune_most_crowded(&mut self) {
        let objs: Vec<Vec<f64>> = self.entries.iter().map(|(_, o)| o.clone()).collect();
        let dist = crowding_distances(&objs);
        let (victim, _) = dist
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.total_cmp(b))
            .expect("archive is non-empty when pruning");
        self.entries.swap_remove(victim);
    }

    /// The archived entries.
    pub fn entries(&self) -> &[(S, Vec<f64>)] {
        &self.entries
    }

    /// The archived objective vectors.
    pub fn objectives(&self) -> Vec<Vec<f64>> {
        self.entries.iter().map(|(_, o)| o.clone()).collect()
    }

    /// Number of archived entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the archive holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over the archived entries.
    pub fn iter(&self) -> std::slice::Iter<'_, (S, Vec<f64>)> {
        self.entries.iter()
    }

    /// Consumes the archive into its entries.
    pub fn into_entries(self) -> Vec<(S, Vec<f64>)> {
        self.entries
    }
}

impl<'a, S: Clone> IntoIterator for &'a ParetoArchive<S> {
    type Item = &'a (S, Vec<f64>);
    type IntoIter = std::slice::Iter<'a, (S, Vec<f64>)>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dominating_insert_evicts_incumbents() {
        let mut a = ParetoArchive::unbounded();
        a.insert(1, vec![3.0, 3.0]);
        a.insert(2, vec![4.0, 2.0]);
        assert!(a.insert(3, vec![1.0, 1.0]));
        assert_eq!(a.len(), 1);
        assert_eq!(a.entries()[0].0, 3);
    }

    #[test]
    fn duplicate_objectives_are_rejected() {
        let mut a = ParetoArchive::unbounded();
        assert!(a.insert(1, vec![1.0, 2.0]));
        assert!(!a.insert(2, vec![1.0, 2.0]));
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn offer_matches_insert_semantics() {
        let mut by_value = ParetoArchive::unbounded();
        let mut by_ref = ParetoArchive::unbounded();
        let points = [
            vec![3.0, 3.0],
            vec![4.0, 2.0],
            vec![1.0, 1.0],
            vec![1.0, 1.0],
            vec![0.5, 2.0],
        ];
        for (i, p) in points.iter().enumerate() {
            let a = by_value.insert(i, p.clone());
            let b = by_ref.offer(&i, p.clone());
            assert_eq!(a, b, "divergence at point {i}");
        }
        assert_eq!(by_value.entries(), by_ref.entries());
    }

    #[test]
    fn bounded_archive_respects_capacity() {
        let mut a = ParetoArchive::bounded(3);
        // Insert 6 mutually non-dominated points.
        for i in 0..6 {
            let x = i as f64;
            a.insert(i, vec![x, 5.0 - x]);
        }
        assert_eq!(a.len(), 3);
        // The extremes survive crowding pruning.
        let objs = a.objectives();
        assert!(objs.iter().any(|o| o[0] == 0.0));
        assert!(objs.iter().any(|o| o[0] == 5.0));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _: ParetoArchive<u8> = ParetoArchive::bounded(0);
    }

    proptest! {
        #[test]
        fn archive_is_always_mutually_non_dominated(
            pts in proptest::collection::vec(proptest::collection::vec(0.0f64..10.0, 2), 1..40)
        ) {
            let mut a = ParetoArchive::unbounded();
            for (i, p) in pts.iter().enumerate() {
                a.insert(i, p.clone());
            }
            let objs = a.objectives();
            for (i, x) in objs.iter().enumerate() {
                for (j, y) in objs.iter().enumerate() {
                    if i != j {
                        prop_assert!(!dominates(x, y), "{x:?} dominates {y:?}");
                    }
                }
            }
            // Every input point is dominated-or-equal by some archive entry.
            for p in &pts {
                prop_assert!(objs.iter().any(|o| o == p || dominates(o, p)));
            }
        }
    }
}
