//! Constraint-dominated NSGA-II (Deb et al. 2002).

use clr_obs::{Event, Obs};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dominance::{crowding_distances, non_dominated_sort};
use crate::{Evaluation, GaParams, Problem};

/// One evaluated population member.
#[derive(Debug, Clone)]
pub struct Individual<S> {
    /// The genotype.
    pub solution: S,
    /// Objective values (all minimised).
    pub objectives: Vec<f64>,
    /// Aggregate constraint violation (`0` = feasible).
    pub violation: f64,
    /// Non-domination rank (0 = best front) within the final population.
    pub rank: usize,
    /// Crowding distance within its front.
    pub crowding: f64,
}

impl<S> Individual<S> {
    fn new(solution: S, eval: Evaluation) -> Self {
        Self {
            solution,
            objectives: eval.objectives,
            violation: eval.violation,
            rank: usize::MAX,
            crowding: 0.0,
        }
    }

    /// `true` if no constraint is violated.
    pub fn is_feasible(&self) -> bool {
        self.violation <= 0.0
    }
}

/// The NSGA-II optimiser.
///
/// Constraint handling follows Deb's constrained-domination: feasible
/// beats infeasible, two infeasibles compare by violation, two feasibles
/// by `(rank, crowding)`.
///
/// # Examples
///
/// See the [crate-level example](crate).
#[derive(Debug)]
pub struct Nsga2<P: Problem> {
    problem: P,
    params: GaParams,
    obs: Obs,
    label: String,
}

impl<P: Problem> Nsga2<P> {
    /// Creates an optimiser.
    pub fn new(problem: P, params: GaParams) -> Self {
        Self {
            problem,
            params,
            obs: Obs::off(),
            label: "nsga2".to_string(),
        }
    }

    /// Attaches an observability handle and a run label; per-generation
    /// `ga_gen` events, a `gen` logical-clock span, and aggregated pool
    /// statistics are recorded under that label.
    #[must_use]
    pub fn with_obs(mut self, obs: Obs, label: impl Into<String>) -> Self {
        self.obs = obs;
        self.label = label.into();
        self
    }

    /// The wrapped problem.
    pub fn problem(&self) -> &P {
        &self.problem
    }

    /// Runs the evolutionary loop from `seed` and returns the feasible
    /// first front of the final population (the whole first front if
    /// nothing is feasible).
    pub fn run(&self, seed: u64) -> Vec<Individual<P::Solution>> {
        let final_pop = self.run_population(seed);
        let feasible_front: Vec<Individual<P::Solution>> = final_pop
            .iter()
            .filter(|i| i.rank == 0 && i.is_feasible())
            .cloned()
            .collect();
        if feasible_front.is_empty() {
            final_pop.into_iter().filter(|i| i.rank == 0).collect()
        } else {
            feasible_front
        }
    }

    /// Runs the evolutionary loop and returns the entire final population
    /// with ranks and crowding assigned.
    ///
    /// Population evaluation fans out over `params.threads` workers
    /// (`0` = automatic); all RNG-driven variation stays on the master
    /// thread, so the result is bit-identical for every thread count.
    pub fn run_population(&self, seed: u64) -> Vec<Individual<P::Solution>> {
        let p = &self.params;
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_5eed_0bad_f00d);
        let initial: Vec<P::Solution> = (0..p.population)
            .map(|_| self.problem.random_solution(&mut rng))
            .collect();
        let mut pool = clr_par::PoolStats::default();
        let mut pop = self.evaluate_all(initial, &mut pool);
        assign_rank_and_crowding(&mut pop);
        self.emit_generation(0, p.population, &pop);

        for gen in 0..p.generations {
            let mut children = Vec::with_capacity(p.population);
            while children.len() < p.population {
                let a = tournament(&pop, p.tournament, &mut rng);
                let b = tournament(&pop, p.tournament, &mut rng);
                let mut child = if rng.gen_bool(p.crossover_prob) {
                    self.problem
                        .crossover(&pop[a].solution, &pop[b].solution, &mut rng)
                } else {
                    pop[a].solution.clone()
                };
                if rng.gen_bool(p.mutation_prob.clamp(0.0, 1.0)) {
                    self.problem.mutate(&mut child, &mut rng);
                }
                children.push(child);
            }
            pop.extend(self.evaluate_all(children, &mut pool));
            assign_rank_and_crowding(&mut pop);
            pop = environmental_selection(pop, p.population);
            self.emit_generation(gen + 1, p.population, &pop);
        }
        assign_rank_and_crowding(&mut pop);
        if self.obs.enabled() {
            self.obs.emit(Event::Span {
                label: self.label.clone(),
                clock: "gen".to_string(),
                start: 0.0,
                end: p.generations as f64,
            });
            self.obs.emit_nondet(Event::Pool {
                site: format!("moea.nsga2.{}", self.label),
                items: pool.items,
                workers: pool.workers,
                per_worker: pool.per_worker,
                queue_hwm: pool.queue_hwm,
            });
        }
        pop
    }

    /// Emits one `ga_gen` journal event (serially, from the master loop).
    /// NSGA-II has no reference point, so the hyper-volume field is absent.
    fn emit_generation(&self, gen: usize, evals: usize, pop: &[Individual<P::Solution>]) {
        if !self.obs.enabled() {
            return;
        }
        self.obs.emit(Event::GaGen {
            algo: "nsga2".to_string(),
            label: self.label.clone(),
            gen,
            evals,
            feasible: pop.iter().filter(|i| i.is_feasible()).count(),
            front: pop.iter().filter(|i| i.rank == 0).count(),
            archive: pop.len(),
            hv: None,
        });
    }

    /// Evaluates a batch of genotypes on the worker pool, preserving input
    /// order.
    fn evaluate_all(
        &self,
        solutions: Vec<P::Solution>,
        pool: &mut clr_par::PoolStats,
    ) -> Vec<Individual<P::Solution>> {
        let (evals, stats) = clr_par::par_map_stats(self.params.threads, &solutions, |_, s| {
            self.problem.evaluate(s)
        });
        pool.merge(&stats);
        solutions
            .into_iter()
            .zip(evals)
            .map(|(s, e)| Individual::new(s, e))
            .collect()
    }
}

/// Binary/k-ary tournament on constrained-domination order; returns the
/// winner's index.
fn tournament<S>(pop: &[Individual<S>], k: usize, rng: &mut StdRng) -> usize {
    let mut best = rng.gen_range(0..pop.len());
    for _ in 1..k.max(1) {
        let challenger = rng.gen_range(0..pop.len());
        if better(&pop[challenger], &pop[best]) {
            best = challenger;
        }
    }
    best
}

/// Constrained-domination comparison used by selection.
fn better<S>(a: &Individual<S>, b: &Individual<S>) -> bool {
    match (a.is_feasible(), b.is_feasible()) {
        (true, false) => true,
        (false, true) => false,
        (false, false) => a.violation < b.violation,
        (true, true) => a.rank < b.rank || (a.rank == b.rank && a.crowding > b.crowding),
    }
}

/// Assigns ranks (feasible individuals sorted into fronts; infeasible ones
/// ranked after all feasible fronts by violation) and crowding distances.
fn assign_rank_and_crowding<S>(pop: &mut [Individual<S>]) {
    let feasible: Vec<usize> = (0..pop.len()).filter(|&i| pop[i].is_feasible()).collect();
    let infeasible: Vec<usize> = (0..pop.len()).filter(|&i| !pop[i].is_feasible()).collect();

    let objs: Vec<Vec<f64>> = feasible
        .iter()
        .map(|&i| pop[i].objectives.clone())
        .collect();
    let fronts = non_dominated_sort(&objs);
    let mut num_fronts = 0;
    for (rank, front) in fronts.iter().enumerate() {
        num_fronts = rank + 1;
        let front_objs: Vec<Vec<f64>> = front.iter().map(|&fi| objs[fi].clone()).collect();
        let crowd = crowding_distances(&front_objs);
        for (pos, &fi) in front.iter().enumerate() {
            let idx = feasible[fi];
            pop[idx].rank = rank;
            pop[idx].crowding = crowd[pos];
        }
    }
    // Infeasible: ranked past every feasible front, ordered by violation.
    let mut by_violation = infeasible;
    by_violation.sort_by(|&a, &b| pop[a].violation.total_cmp(&pop[b].violation));
    for (pos, idx) in by_violation.into_iter().enumerate() {
        pop[idx].rank = num_fronts + pos;
        pop[idx].crowding = 0.0;
    }
}

/// Keeps the best `n` individuals by `(rank, crowding)`.
fn environmental_selection<S>(mut pop: Vec<Individual<S>>, n: usize) -> Vec<Individual<S>> {
    pop.sort_by(|a, b| a.rank.cmp(&b.rank).then(b.crowding.total_cmp(&a.crowding)));
    pop.truncate(n);
    pop
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    /// min (x², (x−2)²) over x ∈ [−10, 10].
    struct Schaffer;
    impl Problem for Schaffer {
        type Solution = f64;
        fn random_solution(&self, rng: &mut dyn RngCore) -> f64 {
            (rng.next_u32() as f64 / u32::MAX as f64) * 20.0 - 10.0
        }
        fn evaluate(&self, x: &f64) -> Evaluation {
            Evaluation::feasible(vec![x * x, (x - 2.0) * (x - 2.0)])
        }
        fn crossover(&self, a: &f64, b: &f64, _r: &mut dyn RngCore) -> f64 {
            (a + b) / 2.0
        }
        fn mutate(&self, x: &mut f64, rng: &mut dyn RngCore) {
            *x += (rng.next_u32() as f64 / u32::MAX as f64) - 0.5;
        }
    }

    /// Same, but constrained to x ≥ 1 (violation = 1 − x when x < 1).
    struct ConstrainedSchaffer;
    impl Problem for ConstrainedSchaffer {
        type Solution = f64;
        fn random_solution(&self, rng: &mut dyn RngCore) -> f64 {
            (rng.next_u32() as f64 / u32::MAX as f64) * 20.0 - 10.0
        }
        fn evaluate(&self, x: &f64) -> Evaluation {
            Evaluation::with_violation(vec![x * x, (x - 2.0) * (x - 2.0)], (1.0 - x).max(0.0))
        }
        fn crossover(&self, a: &f64, b: &f64, _r: &mut dyn RngCore) -> f64 {
            (a + b) / 2.0
        }
        fn mutate(&self, x: &mut f64, rng: &mut dyn RngCore) {
            *x += (rng.next_u32() as f64 / u32::MAX as f64) - 0.5;
        }
    }

    #[test]
    fn schaffer_front_converges_to_pareto_set() {
        let front = Nsga2::new(Schaffer, GaParams::default()).run(3);
        assert!(front.len() > 5, "front size {}", front.len());
        for ind in &front {
            assert!(
                (-0.3..=2.3).contains(&ind.solution),
                "x = {} outside Pareto set",
                ind.solution
            );
        }
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let a = Nsga2::new(Schaffer, GaParams::small()).run(9);
        let b = Nsga2::new(Schaffer, GaParams::small()).run(9);
        let ax: Vec<f64> = a.iter().map(|i| i.solution).collect();
        let bx: Vec<f64> = b.iter().map(|i| i.solution).collect();
        assert_eq!(ax, bx);
    }

    #[test]
    fn serial_and_parallel_runs_are_bit_identical() {
        for seed in [0u64, 9, 77] {
            let serial = Nsga2::new(
                ConstrainedSchaffer,
                GaParams {
                    threads: 1,
                    ..GaParams::small()
                },
            )
            .run_population(seed);
            let parallel = Nsga2::new(
                ConstrainedSchaffer,
                GaParams {
                    threads: 4,
                    ..GaParams::small()
                },
            )
            .run_population(seed);
            let a: Vec<(u64, Vec<u64>)> = serial
                .iter()
                .map(|i| {
                    (
                        i.solution.to_bits(),
                        i.objectives.iter().map(|o| o.to_bits()).collect(),
                    )
                })
                .collect();
            let b: Vec<(u64, Vec<u64>)> = parallel
                .iter()
                .map(|i| {
                    (
                        i.solution.to_bits(),
                        i.objectives.iter().map(|o| o.to_bits()).collect(),
                    )
                })
                .collect();
            assert_eq!(a, b, "seed {seed}");
        }
    }

    #[test]
    fn constraints_are_honoured() {
        let front = Nsga2::new(ConstrainedSchaffer, GaParams::default()).run(4);
        for ind in &front {
            assert!(ind.is_feasible(), "x = {} infeasible", ind.solution);
            assert!(ind.solution >= 0.99, "x = {}", ind.solution);
        }
    }

    #[test]
    fn final_front_is_mutually_non_dominated() {
        let front = Nsga2::new(Schaffer, GaParams::small()).run(5);
        for a in &front {
            for b in &front {
                assert!(!crate::dominates(&a.objectives, &b.objectives));
            }
        }
    }

    #[test]
    fn population_run_exposes_all_ranks() {
        let pop = Nsga2::new(Schaffer, GaParams::small()).run_population(6);
        assert_eq!(pop.len(), GaParams::small().population);
        assert!(pop.iter().any(|i| i.rank == 0));
    }
}
