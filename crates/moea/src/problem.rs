//! The optimisation-problem abstraction.

use rand::RngCore;
use serde::{Deserialize, Serialize};

/// The result of evaluating one candidate solution: objective values (all
/// minimised) and an aggregate constraint violation (`0` = feasible).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// Objective values, all to be minimised.
    pub objectives: Vec<f64>,
    /// Aggregate constraint violation; `0.0` means feasible, larger is
    /// worse. Constraint-dominated comparisons use this before objectives.
    pub violation: f64,
}

impl Evaluation {
    /// A feasible evaluation.
    pub fn feasible(objectives: Vec<f64>) -> Self {
        Self {
            objectives,
            violation: 0.0,
        }
    }

    /// An evaluation with the given violation.
    pub fn with_violation(objectives: Vec<f64>, violation: f64) -> Self {
        Self {
            objectives,
            violation: violation.max(0.0),
        }
    }

    /// `true` if no constraint is violated.
    pub fn is_feasible(&self) -> bool {
        self.violation <= 0.0
    }
}

/// A multi-objective optimisation problem over solutions of type
/// [`Problem::Solution`].
///
/// The engine owns the evolutionary loop; the problem supplies the
/// domain-specific pieces — random initialisation, evaluation and the
/// variation operators. Operators take `dyn RngCore` so problems stay
/// object-safe and the engine controls seeding.
///
/// Problems and their solutions must be [`Sync`]/[`Send`]: `evaluate`
/// takes `&self` and is free of shared mutable state, so the engines
/// fan population evaluation out across a worker pool (`clr-par`) while
/// all RNG-driven variation stays on the master thread — results are
/// bit-identical for every thread count.
pub trait Problem: Sync {
    /// The genotype being evolved.
    type Solution: Clone + Send + Sync;

    /// Samples a random valid solution.
    fn random_solution(&self, rng: &mut dyn RngCore) -> Self::Solution;

    /// Evaluates a solution into objectives + constraint violation.
    fn evaluate(&self, solution: &Self::Solution) -> Evaluation;

    /// Recombines two parents into an offspring.
    fn crossover(
        &self,
        a: &Self::Solution,
        b: &Self::Solution,
        rng: &mut dyn RngCore,
    ) -> Self::Solution;

    /// Mutates a solution in place.
    fn mutate(&self, solution: &mut Self::Solution, rng: &mut dyn RngCore);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feasibility_flags() {
        assert!(Evaluation::feasible(vec![1.0]).is_feasible());
        assert!(!Evaluation::with_violation(vec![1.0], 0.5).is_feasible());
        // Negative violations are clamped to zero.
        assert!(Evaluation::with_violation(vec![1.0], -3.0).is_feasible());
    }
}
