//! Generic multi-objective evolutionary optimisation engine.
//!
//! The paper's design-time exploration (§4.2) runs genetic algorithms from
//! the DEAP and PYGMO packages; this crate is a from-scratch replacement
//! providing exactly what the methodology needs:
//!
//! - Pareto [`dominance`](dominates) and fast non-dominated sorting with
//!   crowding distances ([`non_dominated_sort`], [`crowding_distances`]),
//! - exact [`hypervolume`] in any dimension plus the *signed*
//!   single-point hyper-volume fitness of Fig. 4a
//!   ([`signed_hypervolume_fitness`]): feasible points earn the volume they
//!   dominate w.r.t. the reference point, infeasible points are penalised
//!   by the violation box,
//! - [`Nsga2`] — the standard constraint-dominated NSGA-II,
//! - [`HvGa`] — a hyper-volume-fitness GA maximising `V(p_i)` of Eq. (5),
//! - a non-dominated [`ParetoArchive`].
//!
//! All objectives are **minimised**; callers negate maximisation goals.
//! GA parameters default to the paper's setup: crossover 0.7, mutation
//! 0.03, tournament selection with 5 individuals.
//!
//! # Examples
//!
//! ```
//! use clr_moea::{GaParams, Nsga2, Problem, Evaluation};
//! use rand::Rng;
//!
//! /// Schaffer's bi-objective problem: min (x², (x−2)²).
//! struct Schaffer;
//! impl Problem for Schaffer {
//!     type Solution = f64;
//!     fn random_solution(&self, rng: &mut dyn rand::RngCore) -> f64 {
//!         rng.gen_range(-10.0..10.0)
//!     }
//!     fn evaluate(&self, x: &f64) -> Evaluation {
//!         Evaluation::feasible(vec![x * x, (x - 2.0) * (x - 2.0)])
//!     }
//!     fn crossover(&self, a: &f64, b: &f64, _rng: &mut dyn rand::RngCore) -> f64 {
//!         (a + b) / 2.0
//!     }
//!     fn mutate(&self, x: &mut f64, rng: &mut dyn rand::RngCore) {
//!         *x += rng.gen_range(-0.5..0.5);
//!     }
//! }
//!
//! let params = GaParams { population: 40, generations: 30, ..GaParams::default() };
//! let front = Nsga2::new(Schaffer, params).run(7);
//! assert!(!front.is_empty());
//! // The Pareto set is x ∈ [0, 2].
//! assert!(front.iter().all(|ind| (-0.5..2.5).contains(&ind.solution)));
//! ```

mod archive;
mod dominance;
mod hvga;
mod hypervolume;
mod indicators;
mod local_search;
mod nsga2;
mod params;
mod problem;
mod spea2;

pub use archive::ParetoArchive;
pub use dominance::{crowding_distances, dominates, non_dominated_sort};
pub use hvga::HvGa;
pub use hypervolume::{hypervolume, signed_hypervolume_fitness, HypervolumeError};
pub use indicators::{coverage, igd, spacing};
pub use local_search::LocalSearch;
pub use nsga2::{Individual, Nsga2};
pub use params::GaParams;
pub use problem::{Evaluation, Problem};
pub use spea2::Spea2;
