//! Pareto dominance, fast non-dominated sorting and crowding distance
//! (Deb et al., NSGA-II).

/// `true` if `a` Pareto-dominates `b` under minimisation: `a` is no worse
/// in every objective and strictly better in at least one.
///
/// # Panics
///
/// Panics if the objective vectors have different lengths.
///
/// # Examples
///
/// ```
/// use clr_moea::dominates;
/// assert!(dominates(&[1.0, 2.0], &[2.0, 2.0]));
/// assert!(!dominates(&[1.0, 3.0], &[2.0, 2.0])); // incomparable
/// assert!(!dominates(&[1.0, 2.0], &[1.0, 2.0])); // equal
/// ```
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    assert_eq!(a.len(), b.len(), "objective vectors must have equal length");
    let mut strictly_better = false;
    for (x, y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        if x < y {
            strictly_better = true;
        }
    }
    strictly_better
}

/// Fast non-dominated sort: partitions indices `0..points.len()` into
/// Pareto fronts; `result[0]` is the non-dominated front.
///
/// # Examples
///
/// ```
/// use clr_moea::non_dominated_sort;
/// let pts = vec![vec![1.0, 1.0], vec![2.0, 2.0], vec![0.5, 3.0]];
/// let fronts = non_dominated_sort(&pts);
/// assert_eq!(fronts[0], vec![0, 2]); // point 1 is dominated by point 0
/// ```
pub fn non_dominated_sort(points: &[Vec<f64>]) -> Vec<Vec<usize>> {
    let n = points.len();
    if n == 0 {
        return Vec::new();
    }
    let mut dominated_by: Vec<Vec<usize>> = vec![Vec::new(); n]; // i dominates these
    let mut dom_count = vec![0usize; n]; // how many dominate i
    for i in 0..n {
        for j in (i + 1)..n {
            if dominates(&points[i], &points[j]) {
                dominated_by[i].push(j);
                dom_count[j] += 1;
            } else if dominates(&points[j], &points[i]) {
                dominated_by[j].push(i);
                dom_count[i] += 1;
            }
        }
    }
    let mut fronts: Vec<Vec<usize>> = Vec::new();
    let mut current: Vec<usize> = (0..n).filter(|&i| dom_count[i] == 0).collect();
    while !current.is_empty() {
        let mut next = Vec::new();
        for &i in &current {
            for &j in &dominated_by[i] {
                dom_count[j] -= 1;
                if dom_count[j] == 0 {
                    next.push(j);
                }
            }
        }
        fronts.push(std::mem::replace(&mut current, next));
    }
    fronts
}

/// Crowding distances of the given points (larger = more isolated;
/// boundary points get `f64::INFINITY`). Used to preserve diversity when
/// truncating a front.
///
/// # Examples
///
/// ```
/// use clr_moea::crowding_distances;
/// let pts = vec![vec![0.0, 3.0], vec![1.0, 2.0], vec![3.0, 0.0]];
/// let d = crowding_distances(&pts);
/// assert!(d[0].is_infinite() && d[2].is_infinite());
/// assert!(d[1].is_finite());
/// ```
pub fn crowding_distances(points: &[Vec<f64>]) -> Vec<f64> {
    let n = points.len();
    if n == 0 {
        return Vec::new();
    }
    let m = points[0].len();
    let mut dist = vec![0.0f64; n];
    if n <= 2 {
        return vec![f64::INFINITY; n];
    }
    // Index-based: `obj` selects a column across rows, and `idx` is a sort
    // permutation over rows — iterator forms would obscure both.
    #[allow(clippy::needless_range_loop)]
    for obj in 0..m {
        let mut idx: Vec<usize> = (0..n).collect();
        idx.sort_by(|&a, &b| points[a][obj].total_cmp(&points[b][obj]));
        let lo = points[idx[0]][obj];
        let hi = points[idx[n - 1]][obj];
        dist[idx[0]] = f64::INFINITY;
        dist[idx[n - 1]] = f64::INFINITY;
        let range = hi - lo;
        if range <= 0.0 {
            continue;
        }
        for w in 1..n - 1 {
            let spread = points[idx[w + 1]][obj] - points[idx[w - 1]][obj];
            dist[idx[w]] += spread / range;
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dominance_is_irreflexive() {
        let p = vec![1.0, 2.0, 3.0];
        assert!(!dominates(&p, &p));
    }

    #[test]
    fn dominance_is_asymmetric() {
        let a = [1.0, 1.0];
        let b = [2.0, 2.0];
        assert!(dominates(&a, &b));
        assert!(!dominates(&b, &a));
    }

    #[test]
    fn fronts_partition_all_points() {
        let pts = vec![
            vec![1.0, 5.0],
            vec![2.0, 4.0],
            vec![3.0, 3.0],
            vec![4.0, 4.0],
            vec![5.0, 5.0],
        ];
        let fronts = non_dominated_sort(&pts);
        let total: usize = fronts.iter().map(Vec::len).sum();
        assert_eq!(total, pts.len());
        assert_eq!(fronts[0], vec![0, 1, 2]);
    }

    #[test]
    fn empty_input_yields_no_fronts() {
        assert!(non_dominated_sort(&[]).is_empty());
        assert!(crowding_distances(&[]).is_empty());
    }

    #[test]
    fn duplicate_points_share_a_front() {
        let pts = vec![vec![1.0, 1.0], vec![1.0, 1.0]];
        let fronts = non_dominated_sort(&pts);
        assert_eq!(fronts.len(), 1);
        assert_eq!(fronts[0].len(), 2);
    }

    #[test]
    fn crowding_handles_degenerate_axis() {
        // All points share objective 1; no NaNs may appear.
        let pts = vec![
            vec![0.0, 1.0],
            vec![1.0, 1.0],
            vec![2.0, 1.0],
            vec![3.0, 1.0],
        ];
        let d = crowding_distances(&pts);
        assert!(d.iter().all(|x| !x.is_nan()));
    }

    proptest! {
        #[test]
        fn dominance_is_transitive(
            a in proptest::collection::vec(0.0f64..10.0, 3),
            delta1 in proptest::collection::vec(0.0f64..5.0, 3),
            delta2 in proptest::collection::vec(0.0f64..5.0, 3),
        ) {
            let b: Vec<f64> = a.iter().zip(&delta1).map(|(x, d)| x + d + 0.01).collect();
            let c: Vec<f64> = b.iter().zip(&delta2).map(|(x, d)| x + d + 0.01).collect();
            prop_assert!(dominates(&a, &b));
            prop_assert!(dominates(&b, &c));
            prop_assert!(dominates(&a, &c));
        }

        #[test]
        fn first_front_is_mutually_non_dominated(
            pts in proptest::collection::vec(proptest::collection::vec(0.0f64..10.0, 2), 1..30)
        ) {
            let fronts = non_dominated_sort(&pts);
            let f0 = &fronts[0];
            for &i in f0 {
                for &j in f0 {
                    prop_assert!(!dominates(&pts[i], &pts[j]) || i == j || pts[i] == pts[j]);
                }
            }
            // Every non-first-front point is dominated by someone.
            for front in fronts.iter().skip(1) {
                for &i in front {
                    prop_assert!(pts.iter().any(|p| dominates(p, &pts[i])));
                }
            }
        }
    }
}
