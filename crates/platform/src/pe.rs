//! Processing elements and their types.
//!
//! Paper §3.1: each PE is characterised by `(ID_p, PEType_p)` where the type
//! captures (1) the kind of processor (general-purpose core vs. accelerator
//! on reconfigurable logic), (2) the aging-related fault profile (`β_p`) and
//! (3) the soft-error masking factor (AVF-style, Mukherjee et al.\ 2003).

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::PlatformError;

/// Index of a processing element within a [`crate::Platform`].
///
/// # Examples
///
/// ```
/// use clr_platform::PeId;
/// let id = PeId::new(2);
/// assert_eq!(id.index(), 2);
/// assert_eq!(id.to_string(), "PE2");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct PeId(usize);

impl PeId {
    /// Creates a PE index.
    pub fn new(index: usize) -> Self {
        Self(index)
    }

    /// The underlying index.
    pub fn index(&self) -> usize {
        self.0
    }
}

impl fmt::Display for PeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PE{}", self.0)
    }
}

impl From<usize> for PeId {
    fn from(index: usize) -> Self {
        Self(index)
    }
}

/// Index of a PE *type* within a [`crate::Platform`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct PeTypeId(usize);

impl PeTypeId {
    /// Creates a PE-type index.
    pub fn new(index: usize) -> Self {
        Self(index)
    }

    /// The underlying index.
    pub fn index(&self) -> usize {
        self.0
    }
}

impl fmt::Display for PeTypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl From<usize> for PeTypeId {
    fn from(index: usize) -> Self {
        Self(index)
    }
}

/// The broad kind of a processing element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PeKind {
    /// A general-purpose embedded processor core.
    GeneralPurpose,
    /// An accelerator slot realised on reconfigurable logic; tasks mapped
    /// here occupy a partially reconfigurable region and changing the hosted
    /// accelerator requires a bit-stream reload.
    ReconfigurableFabric,
}

impl fmt::Display for PeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PeKind::GeneralPurpose => write!(f, "gpp"),
            PeKind::ReconfigurableFabric => write!(f, "fabric"),
        }
    }
}

/// A PE type: the heterogeneity descriptor shared by all PEs of that type.
///
/// # Examples
///
/// ```
/// use clr_platform::{PeKind, PeType};
///
/// let t = PeType::new("big-core", PeKind::GeneralPurpose)
///     .with_masking_factor(0.4).unwrap()
///     .with_aging_beta(2.0).unwrap()
///     .with_speed_factor(1.5).unwrap()
///     .with_power(120.0, 20.0).unwrap();
/// assert_eq!(t.name(), "big-core");
/// assert!(t.speed_factor() > 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeType {
    name: String,
    kind: PeKind,
    /// Soft-error masking factor in `(0, 1]`: the fraction of raw SEUs that
    /// become architecturally visible on this PE (an AVF-style derating).
    /// Lower is more robust.
    masking_factor: f64,
    /// Weibull shape parameter `β` of the aging-related fault profile.
    aging_beta: f64,
    /// Relative execution speed: a task's nominal execution time is divided
    /// by this factor when run on this type.
    speed_factor: f64,
    /// Active (dynamic) power draw in milliwatts while executing a task.
    active_power_mw: f64,
    /// Idle (static) power draw in milliwatts.
    idle_power_mw: f64,
}

impl PeType {
    /// Creates a PE type with neutral defaults (masking 1.0, β 1.0, speed
    /// 1.0, 100 mW active / 10 mW idle). Adjust via the `with_*` builders.
    pub fn new(name: impl Into<String>, kind: PeKind) -> Self {
        Self {
            name: name.into(),
            kind,
            masking_factor: 1.0,
            aging_beta: 1.0,
            speed_factor: 1.0,
            active_power_mw: 100.0,
            idle_power_mw: 10.0,
        }
    }

    /// Sets the soft-error masking factor.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidParameter`] unless `0 < m <= 1`.
    pub fn with_masking_factor(mut self, m: f64) -> Result<Self, PlatformError> {
        if !(m > 0.0 && m <= 1.0) {
            return Err(PlatformError::InvalidParameter {
                name: "masking_factor",
                constraint: "0 < masking_factor <= 1",
            });
        }
        self.masking_factor = m;
        Ok(self)
    }

    /// Sets the Weibull aging shape parameter `β`.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidParameter`] unless `β > 0`.
    pub fn with_aging_beta(mut self, beta: f64) -> Result<Self, PlatformError> {
        if !(beta > 0.0 && beta.is_finite()) {
            return Err(PlatformError::InvalidParameter {
                name: "aging_beta",
                constraint: "aging_beta > 0",
            });
        }
        self.aging_beta = beta;
        Ok(self)
    }

    /// Sets the relative speed factor.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidParameter`] unless `s > 0`.
    pub fn with_speed_factor(mut self, s: f64) -> Result<Self, PlatformError> {
        if !(s > 0.0 && s.is_finite()) {
            return Err(PlatformError::InvalidParameter {
                name: "speed_factor",
                constraint: "speed_factor > 0",
            });
        }
        self.speed_factor = s;
        Ok(self)
    }

    /// Sets the active and idle power draws in milliwatts.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidParameter`] unless
    /// `active >= idle >= 0`.
    pub fn with_power(mut self, active_mw: f64, idle_mw: f64) -> Result<Self, PlatformError> {
        if !(idle_mw >= 0.0 && active_mw >= idle_mw && active_mw.is_finite()) {
            return Err(PlatformError::InvalidParameter {
                name: "power",
                constraint: "active_mw >= idle_mw >= 0",
            });
        }
        self.active_power_mw = active_mw;
        self.idle_power_mw = idle_mw;
        Ok(self)
    }

    /// Type name (informational).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The broad processor kind.
    pub fn kind(&self) -> PeKind {
        self.kind
    }

    /// Soft-error masking factor in `(0, 1]` (lower masks more faults).
    pub fn masking_factor(&self) -> f64 {
        self.masking_factor
    }

    /// Weibull shape parameter `β` of the aging fault profile.
    pub fn aging_beta(&self) -> f64 {
        self.aging_beta
    }

    /// Relative execution speed factor.
    pub fn speed_factor(&self) -> f64 {
        self.speed_factor
    }

    /// Active power draw in milliwatts.
    pub fn active_power_mw(&self) -> f64 {
        self.active_power_mw
    }

    /// Idle power draw in milliwatts.
    pub fn idle_power_mw(&self) -> f64 {
        self.idle_power_mw
    }
}

/// One processing element instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Pe {
    id: PeId,
    type_id: PeTypeId,
    /// Local memory capacity in KiB available for resident task binaries.
    local_memory_kib: u32,
}

impl Pe {
    /// Creates a PE of the given type with the given local-memory capacity.
    pub fn new(id: PeId, type_id: PeTypeId, local_memory_kib: u32) -> Self {
        Self {
            id,
            type_id,
            local_memory_kib,
        }
    }

    /// This PE's index.
    pub fn id(&self) -> PeId {
        self.id
    }

    /// Index of this PE's type descriptor.
    pub fn type_id(&self) -> PeTypeId {
        self.type_id
    }

    /// Local memory capacity in KiB.
    pub fn local_memory_kib(&self) -> u32 {
        self.local_memory_kib
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pe_id_roundtrip_and_display() {
        let id: PeId = 7.into();
        assert_eq!(id.index(), 7);
        assert_eq!(format!("{id}"), "PE7");
        assert_eq!(PeTypeId::new(1).to_string(), "T1");
    }

    #[test]
    fn pe_type_builder_validates() {
        let base = PeType::new("t", PeKind::GeneralPurpose);
        assert!(base.clone().with_masking_factor(0.0).is_err());
        assert!(base.clone().with_masking_factor(1.1).is_err());
        assert!(base.clone().with_aging_beta(-1.0).is_err());
        assert!(base.clone().with_speed_factor(0.0).is_err());
        assert!(base.clone().with_power(5.0, 10.0).is_err());
        assert!(base.with_power(10.0, 5.0).is_ok());
    }

    #[test]
    fn pe_type_defaults_are_neutral() {
        let t = PeType::new("x", PeKind::ReconfigurableFabric);
        assert_eq!(t.masking_factor(), 1.0);
        assert_eq!(t.speed_factor(), 1.0);
        assert_eq!(t.kind(), PeKind::ReconfigurableFabric);
    }

    #[test]
    fn pe_accessors() {
        let pe = Pe::new(PeId::new(1), PeTypeId::new(2), 256);
        assert_eq!(pe.id().index(), 1);
        assert_eq!(pe.type_id().index(), 2);
        assert_eq!(pe.local_memory_kib(), 256);
    }
}
