//! Error type for platform construction and lookup.

use std::fmt;

/// Error produced while building or querying a [`crate::Platform`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlatformError {
    /// A PE references a type index that was never registered.
    UnknownPeType {
        /// Index of the offending PE.
        pe: usize,
        /// The dangling type index.
        type_id: usize,
    },
    /// The platform has no processing elements.
    NoPes,
    /// The platform has no PE types registered.
    NoPeTypes,
    /// A numeric parameter was out of its valid domain.
    InvalidParameter {
        /// Name of the parameter.
        name: &'static str,
        /// Human-readable constraint that was violated.
        constraint: &'static str,
    },
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::UnknownPeType { pe, type_id } => {
                write!(f, "pe {pe} references unknown pe type {type_id}")
            }
            PlatformError::NoPes => write!(f, "platform must contain at least one pe"),
            PlatformError::NoPeTypes => write!(f, "platform must register at least one pe type"),
            PlatformError::InvalidParameter { name, constraint } => {
                write!(f, "invalid parameter {name}: must satisfy {constraint}")
            }
        }
    }
}

impl std::error::Error for PlatformError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_concise() {
        let e = PlatformError::UnknownPeType { pe: 3, type_id: 9 };
        assert_eq!(e.to_string(), "pe 3 references unknown pe type 9");
        assert!(PlatformError::NoPes.to_string().starts_with("platform"));
    }
}
