//! Heterogeneous MPSoC architecture model (paper §3.1, Fig. 2a).
//!
//! The DAC'19 evaluation platform is an HMPSoC with a distributed shared
//! memory architecture and centralised control of task-remapping: `P`
//! processing elements (PEs) of a small number of *types* — where a type
//! bundles the processor kind, the aging-related fault profile (Weibull
//! shape `β`) and the soft-error masking factor (an AVF-style factor,
//! paper ref.\ 9) — plus a reconfigurable-logic region divided into
//! partially reconfigurable regions (PRRs) that can host task accelerators,
//! all connected by an on-chip interconnect.
//!
//! The concrete evaluation platform (5 PEs of 3 types + 3 PRRs) is available
//! as [`Platform::dac19`].
//!
//! # Examples
//!
//! ```
//! use clr_platform::Platform;
//!
//! let platform = Platform::dac19();
//! assert_eq!(platform.num_pes(), 5);
//! assert_eq!(platform.num_prrs(), 3);
//! for pe in platform.pes() {
//!     let ty = platform.pe_type(pe.type_id());
//!     assert!(ty.masking_factor() > 0.0 && ty.masking_factor() <= 1.0);
//! }
//! ```

mod error;
mod interconnect;
mod pe;
mod platform;
mod presets;
mod prr;

pub use error::PlatformError;
pub use interconnect::Interconnect;
pub use pe::{Pe, PeId, PeKind, PeType, PeTypeId};
pub use platform::{Platform, PlatformBuilder};
pub use prr::{Prr, PrrId};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dac19_preset_matches_paper_setup() {
        let p = Platform::dac19();
        assert_eq!(p.num_pes(), 5);
        assert_eq!(p.num_prrs(), 3);
        // "3 different types that vary in masking factor"
        let mut maskings: Vec<f64> = p
            .pe_types()
            .iter()
            .map(super::pe::PeType::masking_factor)
            .collect();
        maskings.sort_by(f64::total_cmp);
        maskings.dedup();
        assert_eq!(maskings.len(), 3);
    }
}
