//! Partially reconfigurable regions (PRRs).
//!
//! Paper §3.5: mapping a different accelerator onto a PRR requires loading a
//! new partial bit-stream through the ICAP, which contributes to the
//! reconfiguration cost `dRC` of a run-time adaptation.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a partially reconfigurable region within a [`crate::Platform`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct PrrId(usize);

impl PrrId {
    /// Creates a PRR index.
    pub fn new(index: usize) -> Self {
        Self(index)
    }

    /// The underlying index.
    pub fn index(&self) -> usize {
        self.0
    }
}

impl fmt::Display for PrrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PRR{}", self.0)
    }
}

impl From<usize> for PrrId {
    fn from(index: usize) -> Self {
        Self(index)
    }
}

/// One partially reconfigurable region.
///
/// # Examples
///
/// ```
/// use clr_platform::{Prr, PrrId};
/// let prr = Prr::new(PrrId::new(0), 512, 0.05);
/// // Reloading the full bit-stream costs size × per-KiB time.
/// assert!((prr.reload_cost() - 25.6).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Prr {
    id: PrrId,
    /// Partial bit-stream size for this region in KiB.
    bitstream_kib: u32,
    /// ICAP reconfiguration time per KiB of bit-stream (abstract time units,
    /// same scale as task execution times).
    reload_time_per_kib: f64,
}

impl Prr {
    /// Creates a PRR with the given bit-stream size and per-KiB reload time.
    pub fn new(id: PrrId, bitstream_kib: u32, reload_time_per_kib: f64) -> Self {
        Self {
            id,
            bitstream_kib,
            reload_time_per_kib,
        }
    }

    /// This PRR's index.
    pub fn id(&self) -> PrrId {
        self.id
    }

    /// Partial bit-stream size in KiB.
    pub fn bitstream_kib(&self) -> u32 {
        self.bitstream_kib
    }

    /// ICAP reload time per KiB.
    pub fn reload_time_per_kib(&self) -> f64 {
        self.reload_time_per_kib
    }

    /// Total cost (abstract time units) of swapping the accelerator hosted
    /// by this region.
    pub fn reload_cost(&self) -> f64 {
        self.bitstream_kib as f64 * self.reload_time_per_kib
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prr_display_and_accessors() {
        let prr = Prr::new(PrrId::new(2), 128, 0.1);
        assert_eq!(prr.id().to_string(), "PRR2");
        assert_eq!(prr.bitstream_kib(), 128);
        assert!((prr.reload_cost() - 12.8).abs() < 1e-12);
    }

    #[test]
    fn zero_bitstream_costs_nothing() {
        let prr = Prr::new(PrrId::new(0), 0, 1.0);
        assert_eq!(prr.reload_cost(), 0.0);
    }
}
