//! Ready-made platforms, including the paper's evaluation setup.

use crate::{Interconnect, PeKind, PeType, PeTypeId, Platform};

impl Platform {
    /// The DAC'19 evaluation platform: an HMPSoC with **5 PEs of 3 types
    /// that vary in masking factor**, plus **3 partially reconfigurable
    /// regions** hosting task accelerators (paper §5.1).
    ///
    /// The three types model, in decreasing vulnerability:
    ///
    /// | type | kind | masking (AVF) | β | speed | power (act/idle mW) |
    /// |------|------|---------------|-----|-------|---------------------|
    /// | `lp-core`  | GPP    | 0.85 | 1.5 | 0.8 | 60 / 6   |
    /// | `hp-core`  | GPP    | 0.55 | 2.0 | 1.4 | 140 / 14 |
    /// | `hard-core`| GPP    | 0.30 | 2.5 | 1.0 | 110 / 11 |
    ///
    /// PE layout: 2 × `lp-core`, 2 × `hp-core`, 1 × `hard-core`; 2 MiB of
    /// local binary memory each. The 3 PRRs carry 384/512/768 KiB partial
    /// bit-streams at 0.02 time-units per KiB.
    ///
    /// # Examples
    ///
    /// ```
    /// let p = clr_platform::Platform::dac19();
    /// assert_eq!(p.num_pes(), 5);
    /// assert_eq!(p.num_prrs(), 3);
    /// ```
    ///
    /// # Panics
    ///
    /// Never panics — the preset parameters are statically valid (covered by
    /// unit tests).
    pub fn dac19() -> Platform {
        let lp = PeType::new("lp-core", PeKind::GeneralPurpose)
            .with_masking_factor(0.85)
            .and_then(|t| t.with_aging_beta(1.5))
            .and_then(|t| t.with_speed_factor(0.8))
            .and_then(|t| t.with_power(60.0, 6.0))
            .expect("lp-core preset is valid");
        let hp = PeType::new("hp-core", PeKind::GeneralPurpose)
            .with_masking_factor(0.55)
            .and_then(|t| t.with_aging_beta(2.0))
            .and_then(|t| t.with_speed_factor(1.4))
            .and_then(|t| t.with_power(140.0, 14.0))
            .expect("hp-core preset is valid");
        let hard = PeType::new("hard-core", PeKind::GeneralPurpose)
            .with_masking_factor(0.30)
            .and_then(|t| t.with_aging_beta(2.5))
            .and_then(|t| t.with_speed_factor(1.0))
            .and_then(|t| t.with_power(110.0, 11.0))
            .expect("hard-core preset is valid");

        Platform::builder()
            .pe_type(lp)
            .pe_type(hp)
            .pe_type(hard)
            .pes(2, PeTypeId::new(0), 2048)
            .pes(2, PeTypeId::new(1), 2048)
            .pes(1, PeTypeId::new(2), 2048)
            .prr(384, 0.02)
            .prr(512, 0.02)
            .prr(768, 0.02)
            .interconnect(Interconnect::default())
            .build()
            .expect("dac19 preset is valid")
    }

    /// A minimal two-PE homogeneous platform, handy for unit tests and the
    /// quickstart example.
    pub fn tiny() -> Platform {
        let core = PeType::new("core", PeKind::GeneralPurpose)
            .with_masking_factor(0.5)
            .expect("preset masking valid");
        Platform::builder()
            .pe_type(core)
            .pes(2, PeTypeId::new(0), 128)
            .build()
            .expect("tiny preset is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PeId;

    #[test]
    fn dac19_has_expected_shape() {
        let p = Platform::dac19();
        assert_eq!(p.num_pes(), 5);
        assert_eq!(p.pe_types().len(), 3);
        assert_eq!(p.num_prrs(), 3);
        // Exactly one hardened core.
        let hardened = p
            .pe_ids()
            .filter(|&id| p.type_of(id).name() == "hard-core")
            .count();
        assert_eq!(hardened, 1);
    }

    #[test]
    fn dac19_masking_orders_by_robustness() {
        let p = Platform::dac19();
        let lp = p.pe_types()[0].masking_factor();
        let hp = p.pe_types()[1].masking_factor();
        let hard = p.pe_types()[2].masking_factor();
        assert!(lp > hp && hp > hard, "{lp} {hp} {hard}");
    }

    #[test]
    fn tiny_is_usable() {
        let p = Platform::tiny();
        assert_eq!(p.num_pes(), 2);
        assert_eq!(p.type_of(PeId::new(0)).name(), "core");
    }
}
