//! On-chip interconnect cost model.
//!
//! Reconfiguration (copying task binaries between PEs' local memories, §3.5)
//! and inter-task communication both traverse the interconnect; this model
//! prices a transfer in time and energy as an affine function of its size.

use serde::{Deserialize, Serialize};

use crate::PlatformError;

/// Affine time/energy model of the on-chip interconnect.
///
/// A transfer of `s` KiB costs `base_latency + s / bandwidth` time units and
/// `s × energy_per_kib` millijoule-scale energy units.
///
/// # Examples
///
/// ```
/// use clr_platform::Interconnect;
/// let ic = Interconnect::new(4.0, 2.0, 0.01).unwrap();
/// assert!((ic.transfer_time(8.0) - (2.0 + 8.0 / 4.0)).abs() < 1e-12);
/// assert!((ic.transfer_energy(8.0) - 0.08).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interconnect {
    /// Bandwidth in KiB per abstract time unit.
    bandwidth_kib: f64,
    /// Fixed per-transfer latency in abstract time units.
    base_latency: f64,
    /// Energy per KiB transferred.
    energy_per_kib: f64,
}

impl Interconnect {
    /// Creates an interconnect model.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidParameter`] unless `bandwidth > 0`
    /// and the latency / energy coefficients are non-negative and finite.
    pub fn new(
        bandwidth_kib: f64,
        base_latency: f64,
        energy_per_kib: f64,
    ) -> Result<Self, PlatformError> {
        if !(bandwidth_kib > 0.0 && bandwidth_kib.is_finite()) {
            return Err(PlatformError::InvalidParameter {
                name: "bandwidth_kib",
                constraint: "bandwidth_kib > 0",
            });
        }
        if !(base_latency >= 0.0 && base_latency.is_finite()) {
            return Err(PlatformError::InvalidParameter {
                name: "base_latency",
                constraint: "base_latency >= 0",
            });
        }
        if !(energy_per_kib >= 0.0 && energy_per_kib.is_finite()) {
            return Err(PlatformError::InvalidParameter {
                name: "energy_per_kib",
                constraint: "energy_per_kib >= 0",
            });
        }
        Ok(Self {
            bandwidth_kib,
            base_latency,
            energy_per_kib,
        })
    }

    /// Bandwidth in KiB per time unit.
    pub fn bandwidth_kib(&self) -> f64 {
        self.bandwidth_kib
    }

    /// Fixed per-transfer latency.
    pub fn base_latency(&self) -> f64 {
        self.base_latency
    }

    /// Energy per KiB transferred.
    pub fn energy_per_kib(&self) -> f64 {
        self.energy_per_kib
    }

    /// Time to move `size_kib` KiB across the interconnect.
    pub fn transfer_time(&self, size_kib: f64) -> f64 {
        if size_kib <= 0.0 {
            return 0.0;
        }
        self.base_latency + size_kib / self.bandwidth_kib
    }

    /// Energy to move `size_kib` KiB across the interconnect.
    pub fn transfer_energy(&self, size_kib: f64) -> f64 {
        if size_kib <= 0.0 {
            return 0.0;
        }
        size_kib * self.energy_per_kib
    }
}

impl Default for Interconnect {
    /// A neutral interconnect: 8 KiB / time-unit bandwidth, 1 time-unit
    /// setup latency, 0.02 energy units per KiB.
    fn default() -> Self {
        Self {
            bandwidth_kib: 8.0,
            base_latency: 1.0,
            energy_per_kib: 0.02,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rejects_invalid_parameters() {
        assert!(Interconnect::new(0.0, 0.0, 0.0).is_err());
        assert!(Interconnect::new(1.0, -1.0, 0.0).is_err());
        assert!(Interconnect::new(1.0, 0.0, -0.5).is_err());
        assert!(Interconnect::new(1.0, 0.0, 0.0).is_ok());
    }

    #[test]
    fn zero_size_transfers_are_free() {
        let ic = Interconnect::default();
        assert_eq!(ic.transfer_time(0.0), 0.0);
        assert_eq!(ic.transfer_energy(0.0), 0.0);
        assert_eq!(ic.transfer_time(-3.0), 0.0);
    }

    proptest! {
        #[test]
        fn transfer_costs_are_monotone_in_size(
            bw in 0.1f64..100.0,
            lat in 0.0f64..10.0,
            e in 0.0f64..1.0,
            s1 in 0.001f64..1e4,
            s2 in 0.001f64..1e4,
        ) {
            let ic = Interconnect::new(bw, lat, e).unwrap();
            let (lo, hi) = if s1 < s2 { (s1, s2) } else { (s2, s1) };
            prop_assert!(ic.transfer_time(lo) <= ic.transfer_time(hi));
            prop_assert!(ic.transfer_energy(lo) <= ic.transfer_energy(hi));
        }
    }
}
