//! The HMPSoC platform aggregate and its builder.

use serde::{Deserialize, Serialize};

use crate::{Interconnect, Pe, PeId, PeType, PeTypeId, PlatformError, Prr, PrrId};

/// A heterogeneous MPSoC platform: PE types, PE instances, PRRs and the
/// interconnect (paper Fig. 2a).
///
/// Construct via [`PlatformBuilder`] or the [`Platform::dac19`] preset.
///
/// # Examples
///
/// ```
/// use clr_platform::{Interconnect, PeKind, PeType, Platform};
///
/// let platform = Platform::builder()
///     .pe_type(PeType::new("core", PeKind::GeneralPurpose))
///     .pe(0.into(), 256)
///     .pe(0.into(), 256)
///     .interconnect(Interconnect::default())
///     .build()?;
/// assert_eq!(platform.num_pes(), 2);
/// # Ok::<(), clr_platform::PlatformError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    pe_types: Vec<PeType>,
    pes: Vec<Pe>,
    prrs: Vec<Prr>,
    interconnect: Interconnect,
}

impl Platform {
    /// Starts building a platform.
    pub fn builder() -> PlatformBuilder {
        PlatformBuilder::default()
    }

    /// All registered PE types.
    pub fn pe_types(&self) -> &[PeType] {
        &self.pe_types
    }

    /// All PE instances, ordered by [`PeId`].
    pub fn pes(&self) -> &[Pe] {
        &self.pes
    }

    /// All partially reconfigurable regions.
    pub fn prrs(&self) -> &[Prr] {
        &self.prrs
    }

    /// The interconnect cost model.
    pub fn interconnect(&self) -> &Interconnect {
        &self.interconnect
    }

    /// Number of processing elements.
    pub fn num_pes(&self) -> usize {
        self.pes.len()
    }

    /// Number of PRRs.
    pub fn num_prrs(&self) -> usize {
        self.prrs.len()
    }

    /// Looks up a PE instance.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range (a mapping referencing a foreign
    /// platform is a logic error, not a recoverable condition).
    pub fn pe(&self, id: PeId) -> &Pe {
        &self.pes[id.index()]
    }

    /// Looks up a PE type descriptor.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn pe_type(&self, id: PeTypeId) -> &PeType {
        &self.pe_types[id.index()]
    }

    /// Looks up a PRR.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn prr(&self, id: PrrId) -> &Prr {
        &self.prrs[id.index()]
    }

    /// The type descriptor of PE `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn type_of(&self, id: PeId) -> &PeType {
        self.pe_type(self.pe(id).type_id())
    }

    /// Iterator over all PE ids.
    pub fn pe_ids(&self) -> impl Iterator<Item = PeId> + '_ {
        (0..self.pes.len()).map(PeId::new)
    }

    /// Returns a copy of this platform with PE `failed` removed and the
    /// remaining PEs re-indexed — the *reduced resource availability*
    /// instance of the paper's §4 (a permanent fault takes a PE offline;
    /// the methodology re-runs its design-time exploration against the
    /// degraded platform).
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::NoPes`] if removing `failed` would leave
    /// no PEs, or [`PlatformError::UnknownPeType`] (with the failed index)
    /// if `failed` does not exist.
    ///
    /// # Examples
    ///
    /// ```
    /// use clr_platform::{PeId, Platform};
    /// let full = Platform::dac19();
    /// let degraded = full.without_pe(PeId::new(2))?;
    /// assert_eq!(degraded.num_pes(), full.num_pes() - 1);
    /// # Ok::<(), clr_platform::PlatformError>(())
    /// ```
    pub fn without_pe(&self, failed: PeId) -> Result<Platform, PlatformError> {
        if failed.index() >= self.pes.len() {
            return Err(PlatformError::UnknownPeType {
                pe: failed.index(),
                type_id: usize::MAX,
            });
        }
        if self.pes.len() == 1 {
            return Err(PlatformError::NoPes);
        }
        let pes = self
            .pes
            .iter()
            .filter(|pe| pe.id() != failed)
            .enumerate()
            .map(|(i, pe)| Pe::new(PeId::new(i), pe.type_id(), pe.local_memory_kib()))
            .collect();
        Ok(Platform {
            pe_types: self.pe_types.clone(),
            pes,
            prrs: self.prrs.clone(),
            interconnect: self.interconnect,
        })
    }
}

/// Builder for [`Platform`].
#[derive(Debug, Clone, Default)]
pub struct PlatformBuilder {
    pe_types: Vec<PeType>,
    pes: Vec<(PeTypeId, u32)>,
    prrs: Vec<Prr>,
    interconnect: Option<Interconnect>,
}

impl PlatformBuilder {
    /// Registers a PE type and returns the builder (the type gets the next
    /// sequential [`PeTypeId`]).
    pub fn pe_type(mut self, ty: PeType) -> Self {
        self.pe_types.push(ty);
        self
    }

    /// Adds a PE instance of the given type with `local_memory_kib` KiB of
    /// local binary storage.
    pub fn pe(mut self, type_id: PeTypeId, local_memory_kib: u32) -> Self {
        self.pes.push((type_id, local_memory_kib));
        self
    }

    /// Adds `n` identical PE instances of the given type.
    pub fn pes(mut self, n: usize, type_id: PeTypeId, local_memory_kib: u32) -> Self {
        for _ in 0..n {
            self.pes.push((type_id, local_memory_kib));
        }
        self
    }

    /// Adds a PRR with the given bit-stream size and per-KiB reload time
    /// (the PRR gets the next sequential [`PrrId`]).
    pub fn prr(mut self, bitstream_kib: u32, reload_time_per_kib: f64) -> Self {
        let id = PrrId::new(self.prrs.len());
        self.prrs
            .push(Prr::new(id, bitstream_kib, reload_time_per_kib));
        self
    }

    /// Sets the interconnect model (defaults to [`Interconnect::default`]).
    pub fn interconnect(mut self, ic: Interconnect) -> Self {
        self.interconnect = Some(ic);
        self
    }

    /// Finalises the platform.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError`] if no PE types / PEs were registered or a
    /// PE references an unknown type.
    pub fn build(self) -> Result<Platform, PlatformError> {
        if self.pe_types.is_empty() {
            return Err(PlatformError::NoPeTypes);
        }
        if self.pes.is_empty() {
            return Err(PlatformError::NoPes);
        }
        let mut pes = Vec::with_capacity(self.pes.len());
        for (i, (type_id, mem)) in self.pes.into_iter().enumerate() {
            if type_id.index() >= self.pe_types.len() {
                return Err(PlatformError::UnknownPeType {
                    pe: i,
                    type_id: type_id.index(),
                });
            }
            pes.push(Pe::new(PeId::new(i), type_id, mem));
        }
        Ok(Platform {
            pe_types: self.pe_types,
            pes,
            prrs: self.prrs,
            interconnect: self.interconnect.unwrap_or_default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PeKind;

    fn simple_type() -> PeType {
        PeType::new("t", PeKind::GeneralPurpose)
    }

    #[test]
    fn builder_requires_types_and_pes() {
        assert_eq!(
            Platform::builder().build().unwrap_err(),
            PlatformError::NoPeTypes
        );
        assert_eq!(
            Platform::builder()
                .pe_type(simple_type())
                .build()
                .unwrap_err(),
            PlatformError::NoPes
        );
    }

    #[test]
    fn builder_detects_dangling_type() {
        let err = Platform::builder()
            .pe_type(simple_type())
            .pe(PeTypeId::new(3), 64)
            .build()
            .unwrap_err();
        assert_eq!(err, PlatformError::UnknownPeType { pe: 0, type_id: 3 });
    }

    #[test]
    fn pes_get_sequential_ids() {
        let p = Platform::builder()
            .pe_type(simple_type())
            .pes(4, PeTypeId::new(0), 128)
            .build()
            .unwrap();
        for (i, pe) in p.pes().iter().enumerate() {
            assert_eq!(pe.id().index(), i);
        }
        assert_eq!(p.pe_ids().count(), 4);
    }

    #[test]
    fn type_of_resolves_through_instance() {
        let p = Platform::builder()
            .pe_type(simple_type())
            .pe_type(PeType::new("u", PeKind::ReconfigurableFabric))
            .pe(PeTypeId::new(1), 64)
            .build()
            .unwrap();
        assert_eq!(p.type_of(PeId::new(0)).name(), "u");
    }

    #[test]
    fn prrs_get_sequential_ids() {
        let p = Platform::builder()
            .pe_type(simple_type())
            .pe(PeTypeId::new(0), 64)
            .prr(100, 0.1)
            .prr(200, 0.1)
            .build()
            .unwrap();
        assert_eq!(p.prr(PrrId::new(1)).bitstream_kib(), 200);
        assert_eq!(p.num_prrs(), 2);
    }

    #[test]
    #[should_panic]
    fn pe_lookup_out_of_range_panics() {
        let p = Platform::builder()
            .pe_type(simple_type())
            .pe(PeTypeId::new(0), 64)
            .build()
            .unwrap();
        let _ = p.pe(PeId::new(9));
    }
}
