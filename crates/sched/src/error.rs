//! Error type for mapping construction and validation.

use std::fmt;

/// Error produced while constructing or validating a [`crate::Mapping`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MappingError {
    /// The gene vector length does not match the task count.
    LengthMismatch {
        /// Number of genes supplied.
        genes: usize,
        /// Number of tasks in the graph.
        tasks: usize,
    },
    /// A gene binds a task to a PE index outside the platform.
    UnknownPe {
        /// The offending task index.
        task: usize,
        /// The dangling PE index.
        pe: usize,
    },
    /// A gene selects an implementation index outside the task's set.
    UnknownImpl {
        /// The offending task index.
        task: usize,
        /// The dangling implementation index.
        impl_id: usize,
    },
    /// The selected implementation targets a different PE type than the
    /// bound PE.
    IncompatiblePeType {
        /// The offending task index.
        task: usize,
    },
    /// No implementation of this task is compatible with any PE of the
    /// platform (the task cannot be mapped at all).
    Unmappable {
        /// The offending task index.
        task: usize,
    },
}

impl fmt::Display for MappingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MappingError::LengthMismatch { genes, tasks } => {
                write!(f, "mapping has {genes} genes for {tasks} tasks")
            }
            MappingError::UnknownPe { task, pe } => {
                write!(f, "task {task} bound to nonexistent pe {pe}")
            }
            MappingError::UnknownImpl { task, impl_id } => {
                write!(
                    f,
                    "task {task} selects nonexistent implementation {impl_id}"
                )
            }
            MappingError::IncompatiblePeType { task } => {
                write!(f, "task {task}: implementation targets a different pe type")
            }
            MappingError::Unmappable { task } => {
                write!(
                    f,
                    "task {task} has no implementation compatible with the platform"
                )
            }
        }
    }
}

impl std::error::Error for MappingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_identifies_task() {
        assert!(MappingError::IncompatiblePeType { task: 4 }
            .to_string()
            .contains("task 4"));
    }
}
