//! CLR-integrated task mapping, scheduling and system-level metrics
//! (paper §3.4, Table 3) plus the reconfiguration model (§3.5).
//!
//! A [`Mapping`] assigns every task a PE binding, an implementation choice,
//! a CLR configuration and a schedule priority — one point `X_i` of the
//! design space `X_app = Π_t (M_t × C_t)` of Eq. (4). The [`Evaluator`]
//! list-schedules a mapping on a platform and derives the Table-3
//! system-level metrics:
//!
//! - average makespan `S_app = max_t SET_t` (Eq. 1),
//! - functional reliability `F_app = Σ_t ζ_t · F_t` with normalised task
//!   criticalities (Eq. 2),
//! - peak power `W_app` and average energy `J_app = Σ_t AvgExT_t · W_t`
//!   (Eq. 3).
//!
//! [`reconfiguration_cost`] implements the `dRC` distance between two
//! mappings: re-ordering and CLR-configuration changes are free (binaries
//! stay resident), implementation/PE-binding changes pay the binary copy
//! over the interconnect, and accelerator changes add the PRR bit-stream
//! reload (§3.5).
//!
//! # Examples
//!
//! ```
//! use clr_platform::Platform;
//! use clr_reliability::FaultModel;
//! use clr_sched::{Evaluator, Mapping};
//! use clr_taskgraph::jpeg_encoder;
//!
//! let platform = Platform::dac19();
//! let graph = jpeg_encoder();
//! let eval = Evaluator::new(&graph, &platform, FaultModel::default());
//! let mapping = Mapping::first_fit(&graph, &platform).expect("jpeg maps onto dac19");
//! let metrics = eval.evaluate(&mapping);
//! assert!(metrics.makespan > 0.0);
//! assert!(metrics.reliability > 0.0 && metrics.reliability <= 1.0);
//! ```

mod error;
mod evaluate;
mod gantt;
mod heft;
mod mapping;
mod reconfig;
mod scheduler;
mod utilization;

pub use error::MappingError;
pub use evaluate::{Evaluator, SystemMetrics};
pub use gantt::{gantt_ascii, schedule_csv};
pub use heft::heft_mapping;
pub use mapping::{Gene, Mapping};
pub use reconfig::{reconfiguration_cost, ReconfigBreakdown};
pub use scheduler::{list_schedule, Schedule, ScheduleEntry};
pub use utilization::{utilization, validate_schedule, ScheduleViolation, Utilization};

#[cfg(test)]
mod tests {
    use super::*;
    use clr_platform::Platform;
    use clr_reliability::FaultModel;
    use clr_taskgraph::jpeg_encoder;

    #[test]
    fn end_to_end_jpeg_on_dac19() {
        let platform = Platform::dac19();
        let graph = jpeg_encoder();
        let eval = Evaluator::new(&graph, &platform, FaultModel::default());
        let m = Mapping::first_fit(&graph, &platform).unwrap();
        let sm = eval.evaluate(&m);
        assert!(sm.energy > 0.0);
        assert!(sm.peak_power > 0.0);
        // Identity reconfiguration is free.
        assert_eq!(reconfiguration_cost(&graph, &platform, &m, &m).total(), 0.0);
    }
}
