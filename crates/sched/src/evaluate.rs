//! System-level QoS and performance estimation (paper Table 3).

use clr_platform::Platform;
use clr_reliability::{FaultModel, TaskMetrics};
use clr_taskgraph::{TaskGraph, TaskId};
use serde::{Deserialize, Serialize};

use crate::{list_schedule, Mapping, Schedule};

/// The Table-3 system-level metrics of one design point `X_i`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemMetrics {
    /// Average makespan `S_app` (Eq. 1).
    pub makespan: f64,
    /// Functional reliability `F_app ∈ (0, 1]` (Eq. 2).
    pub reliability: f64,
    /// Average energy `J_app = Σ AvgExT_t · W_t` (Eq. 3).
    pub energy: f64,
    /// Peak power `W_app` over the schedule (Eq. 3).
    pub peak_power: f64,
    /// Mean of the per-task MTTFs (lifetime indicator; optional objective).
    pub mean_mttf: f64,
}

impl SystemMetrics {
    /// The run-time performance `R(X_i) = −J_app` of Eq. (4): higher is
    /// better, energy reduction signifies improved performance.
    pub fn performance(&self) -> f64 {
        -self.energy
    }

    /// Application error rate `1 − F_app` (the QoS metric Fig. 1 plots).
    pub fn error_rate(&self) -> f64 {
        1.0 - self.reliability
    }
}

/// Evaluation context binding a task graph, a platform and a fault model.
///
/// Pre-computes the task criticalities `ζ_t`; every call to
/// [`Evaluator::evaluate`] derives the per-task Table-2 metrics for the
/// mapping's implementation/CLR choices, list-schedules with the average
/// execution times and aggregates Table 3.
///
/// # Examples
///
/// ```
/// use clr_platform::Platform;
/// use clr_reliability::FaultModel;
/// use clr_sched::{Evaluator, Mapping};
/// use clr_taskgraph::jpeg_encoder;
///
/// let g = jpeg_encoder();
/// let p = Platform::dac19();
/// let eval = Evaluator::new(&g, &p, FaultModel::default());
/// let m = Mapping::first_fit(&g, &p).unwrap();
/// let sm = eval.evaluate(&m);
/// assert!(sm.error_rate() < 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct Evaluator<'a> {
    graph: &'a TaskGraph,
    platform: &'a Platform,
    fault_model: FaultModel,
    criticality: Vec<f64>,
}

impl<'a> Evaluator<'a> {
    /// Creates an evaluator for one `(graph, platform, environment)`.
    pub fn new(graph: &'a TaskGraph, platform: &'a Platform, fault_model: FaultModel) -> Self {
        let criticality = graph.criticalities();
        Self {
            graph,
            platform,
            fault_model,
            criticality,
        }
    }

    /// The bound task graph.
    pub fn graph(&self) -> &'a TaskGraph {
        self.graph
    }

    /// The bound platform.
    pub fn platform(&self) -> &'a Platform {
        self.platform
    }

    /// The fault model in effect.
    pub fn fault_model(&self) -> &FaultModel {
        &self.fault_model
    }

    /// The normalised task criticalities `ζ_t`.
    pub fn criticalities(&self) -> &[f64] {
        &self.criticality
    }

    /// Table-2 metrics of task `t` under `mapping`'s choices.
    ///
    /// # Panics
    ///
    /// Panics if the mapping is invalid for the bound graph/platform.
    pub fn task_metrics(&self, mapping: &Mapping, t: TaskId) -> TaskMetrics {
        let gene = mapping.gene(t);
        let im = self.graph.implementation(t, gene.impl_id);
        let pe_type = self.platform.type_of(gene.pe);
        TaskMetrics::evaluate(im, pe_type, &gene.clr, &self.fault_model)
    }

    /// Evaluates the full Table-3 system metrics of a mapping.
    ///
    /// # Panics
    ///
    /// Panics if the mapping is invalid for the bound graph/platform
    /// (validate first; the DSE only generates valid mappings).
    pub fn evaluate(&self, mapping: &Mapping) -> SystemMetrics {
        let (metrics, schedule) = self.evaluate_with_schedule(mapping);
        let _ = schedule;
        metrics
    }

    /// Like [`Evaluator::evaluate`] but also exposes the schedule (useful
    /// for traces and Gantt output).
    pub fn evaluate_with_schedule(&self, mapping: &Mapping) -> (SystemMetrics, Schedule) {
        let n = self.graph.num_tasks();
        let mut task_metrics = Vec::with_capacity(n);
        for t in self.graph.task_ids() {
            task_metrics.push(self.task_metrics(mapping, t));
        }
        let times: Vec<f64> = task_metrics.iter().map(|m| m.avg_ex_t).collect();
        let schedule = list_schedule(self.graph, mapping, &times);

        // Eq. 1: makespan.
        let makespan = schedule.makespan();

        // Eq. 2: criticality-weighted functional reliability.
        let reliability: f64 = task_metrics
            .iter()
            .zip(&self.criticality)
            .map(|(m, z)| z * m.reliability())
            .sum();

        // Eq. 3: energy and peak power.
        let energy: f64 = task_metrics.iter().map(TaskMetrics::energy).sum();
        let peak_power = peak_power(&schedule, &task_metrics);

        let mean_mttf = task_metrics.iter().map(|m| m.mttf).sum::<f64>() / n.max(1) as f64;

        (
            SystemMetrics {
                makespan,
                reliability,
                energy,
                peak_power,
                mean_mttf,
            },
            schedule,
        )
    }
}

/// Peak instantaneous power: the maximum over time of the summed power of
/// concurrently executing tasks (Eq. 3's `W_app`), computed by sweeping
/// task start/end events.
fn peak_power(schedule: &Schedule, metrics: &[TaskMetrics]) -> f64 {
    let mut events: Vec<(f64, f64)> = Vec::with_capacity(schedule.entries().len() * 2);
    for e in schedule.entries() {
        let w = metrics[e.task.index()].power_mw;
        events.push((e.start, w));
        events.push((e.end, -w));
    }
    // Ends before starts at the same instant so touching intervals do not
    // double-count.
    events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
    let mut current = 0.0f64;
    let mut peak = 0.0f64;
    for (_, dw) in events {
        current += dw;
        if current > peak {
            peak = current;
        }
    }
    peak
}

#[cfg(test)]
mod tests {
    use super::*;
    use clr_platform::PeId;
    use clr_reliability::{AswMethod, ClrConfig, HwMethod, SswMethod};
    use clr_taskgraph::jpeg_encoder;

    fn setup() -> (TaskGraph, Platform) {
        (jpeg_encoder(), Platform::dac19())
    }

    use clr_taskgraph::TaskGraph;

    #[test]
    fn reliability_is_weighted_mean_of_task_reliabilities() {
        let (g, p) = setup();
        let eval = Evaluator::new(&g, &p, FaultModel::default());
        let m = Mapping::first_fit(&g, &p).unwrap();
        let sm = eval.evaluate(&m);
        let manual: f64 = g
            .task_ids()
            .zip(eval.criticalities())
            .map(|(t, &z)| z * eval.task_metrics(&m, t).reliability())
            .sum();
        assert!((sm.reliability - manual).abs() < 1e-12);
    }

    #[test]
    fn clr_mitigation_raises_reliability_and_energy() {
        let (g, p) = setup();
        let eval = Evaluator::new(&g, &p, FaultModel::new(2e-3, 1e6, 1.0));
        let bare = Mapping::first_fit(&g, &p).unwrap();
        let mut protected = bare.clone();
        for gene in protected.genes_mut() {
            gene.clr = ClrConfig::new(
                HwMethod::FullTmr,
                SswMethod::Retry { max_retries: 2 },
                AswMethod::Checksum,
            );
        }
        let sm_bare = eval.evaluate(&bare);
        let sm_prot = eval.evaluate(&protected);
        assert!(sm_prot.reliability > sm_bare.reliability);
        assert!(sm_prot.energy > sm_bare.energy);
    }

    #[test]
    fn peak_power_counts_only_concurrent_tasks() {
        let (g, p) = setup();
        let eval = Evaluator::new(&g, &p, FaultModel::default());
        // All tasks serialised on one compatible PE per task type — use
        // first_fit and force every gene onto its current PE but with the
        // same priority ordering; the serial case on a single PE gives peak
        // == max task power.
        let m = Mapping::first_fit(&g, &p).unwrap();
        let single_pe = m.genes()[0].pe;
        let all_same = m.genes().iter().all(|gene| gene.pe == single_pe);
        let sm = eval.evaluate(&m);
        let max_task_power = g
            .task_ids()
            .map(|t| eval.task_metrics(&m, t).power_mw)
            .fold(0.0, f64::max);
        if all_same {
            assert!((sm.peak_power - max_task_power).abs() < 1e-9);
        } else {
            assert!(sm.peak_power >= max_task_power - 1e-9);
        }
    }

    #[test]
    fn spreading_load_shortens_makespan() {
        let (g, p) = setup();
        let eval = Evaluator::new(&g, &p, FaultModel::default());
        let m = Mapping::first_fit(&g, &p).unwrap();
        // Serialise everything implementable on PE0's type onto PE0's
        // sibling-free schedule vs the first-fit spread: spread must not be
        // worse when first_fit already spreads across types.
        let sm = eval.evaluate(&m);
        // Move the four DCT tasks across the two type-1 PEs (ids depend on
        // preset: type 1 PEs are indices 2 and 3).
        let mut spread = m.clone();
        for (i, t) in (1..=4).enumerate() {
            spread.genes_mut()[t].pe = PeId::new(2 + (i % 2));
        }
        if spread.validate(&g, &p).is_ok() {
            let sm2 = eval.evaluate(&spread);
            assert!(sm2.makespan <= sm.makespan + 1e-9);
        }
    }

    #[test]
    fn performance_is_negated_energy() {
        let (g, p) = setup();
        let eval = Evaluator::new(&g, &p, FaultModel::default());
        let m = Mapping::first_fit(&g, &p).unwrap();
        let sm = eval.evaluate(&m);
        assert_eq!(sm.performance(), -sm.energy);
        assert!((sm.error_rate() + sm.reliability - 1.0).abs() < 1e-12);
    }
}
