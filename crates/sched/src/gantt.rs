//! Schedule visualisation: ASCII Gantt charts and CSV export.

use std::fmt::Write as _;

use clr_taskgraph::TaskGraph;

use crate::Schedule;

/// Renders an ASCII Gantt chart of a schedule, one row per PE, `width`
/// character columns spanning the makespan.
///
/// Each task paints its id's last digit across its execution window; idle
/// time is `·`. Tasks shorter than one column still paint one cell.
///
/// # Panics
///
/// Panics if `width == 0`.
///
/// # Examples
///
/// ```
/// use clr_platform::Platform;
/// use clr_sched::{gantt_ascii, list_schedule, Mapping};
/// use clr_taskgraph::jpeg_encoder;
///
/// let g = jpeg_encoder();
/// let p = Platform::dac19();
/// let m = Mapping::first_fit(&g, &p).unwrap();
/// let times: Vec<f64> = g.task_ids().map(|_| 10.0).collect();
/// let s = list_schedule(&g, &m, &times);
/// let chart = gantt_ascii(&s, 60);
/// assert!(chart.contains("PE"));
/// ```
pub fn gantt_ascii(schedule: &Schedule, width: usize) -> String {
    assert!(width > 0, "gantt width must be positive");
    let makespan = schedule.makespan().max(1e-12);
    let num_pes = schedule
        .entries()
        .iter()
        .map(|e| e.pe + 1)
        .max()
        .unwrap_or(1);
    let mut rows = vec![vec![b'\xB7'; width]; num_pes]; // placeholder, replaced below
    for row in &mut rows {
        for c in row.iter_mut() {
            *c = b'.';
        }
    }
    for e in schedule.entries() {
        let from = ((e.start / makespan) * width as f64).floor() as usize;
        let to = ((e.end / makespan) * width as f64).ceil() as usize;
        let glyph = b'0' + (e.task.index() % 10) as u8;
        let from = from.min(width - 1);
        let to = to.clamp(from + 1, width);
        for c in &mut rows[e.pe][from..to] {
            *c = glyph;
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "time 0 .. {:.1}", schedule.makespan());
    for (pe, row) in rows.iter().enumerate() {
        let _ = writeln!(
            out,
            "PE{pe} |{}|",
            String::from_utf8(row.clone()).expect("ascii by construction")
        );
    }
    out
}

/// Renders a schedule as CSV (`task,name,pe,start,end`).
///
/// # Examples
///
/// ```
/// use clr_platform::Platform;
/// use clr_sched::{list_schedule, schedule_csv, Mapping};
/// use clr_taskgraph::jpeg_encoder;
///
/// let g = jpeg_encoder();
/// let p = Platform::dac19();
/// let m = Mapping::first_fit(&g, &p).unwrap();
/// let times: Vec<f64> = g.task_ids().map(|_| 10.0).collect();
/// let csv = schedule_csv(&g, &list_schedule(&g, &m, &times));
/// assert!(csv.starts_with("task,name,pe,start,end"));
/// ```
pub fn schedule_csv(graph: &TaskGraph, schedule: &Schedule) -> String {
    let mut out = String::from("task,name,pe,start,end\n");
    for e in schedule.entries() {
        let _ = writeln!(
            out,
            "{},{},{},{:.3},{:.3}",
            e.task.index(),
            graph.task(e.task).name(),
            e.pe,
            e.start,
            e.end
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{list_schedule, Mapping};
    use clr_platform::Platform;
    use clr_taskgraph::jpeg_encoder;

    fn schedule() -> (clr_taskgraph::TaskGraph, Schedule) {
        let g = jpeg_encoder();
        let p = Platform::dac19();
        let m = Mapping::first_fit(&g, &p).unwrap();
        let times: Vec<f64> = g.task_ids().map(|t| 10.0 + t.index() as f64).collect();
        let s = list_schedule(&g, &m, &times);
        (g, s)
    }

    #[test]
    fn gantt_has_one_row_per_used_pe() {
        let (_, s) = schedule();
        let chart = gantt_ascii(&s, 40);
        let rows = chart.lines().filter(|l| l.starts_with("PE")).count();
        let used = s.entries().iter().map(|e| e.pe + 1).max().unwrap();
        assert_eq!(rows, used);
    }

    #[test]
    fn every_task_paints_at_least_one_cell() {
        let (_, s) = schedule();
        let chart = gantt_ascii(&s, 80);
        for e in s.entries() {
            let glyph = char::from(b'0' + (e.task.index() % 10) as u8);
            assert!(chart.contains(glyph), "missing glyph for {:?}", e.task);
        }
    }

    #[test]
    fn csv_has_one_row_per_task() {
        let (g, s) = schedule();
        let csv = schedule_csv(&g, &s);
        assert_eq!(csv.lines().count(), g.num_tasks() + 1);
        assert!(csv.contains("QZ"));
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_panics() {
        let (_, s) = schedule();
        let _ = gantt_ascii(&s, 0);
    }
}
