//! CLR-integrated task-mapping configurations (the design points `X_i`).

use clr_platform::{PeId, Platform};
use clr_reliability::ClrConfig;
use clr_taskgraph::{ImplId, TaskGraph, TaskId};
use serde::{Deserialize, Serialize};

use crate::MappingError;

/// Per-task decision variables: PE binding, implementation choice, CLR
/// configuration and schedule priority (paper Eq. 4:
/// `Ψ_t = M_t × C_t` with `M_t = P_t × I_t × Q_t`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Gene {
    /// The PE executing this task.
    pub pe: PeId,
    /// The implementation used (index into the task's implementation set).
    pub impl_id: ImplId,
    /// The cross-layer reliability configuration.
    pub clr: ClrConfig,
    /// List-scheduling priority (higher runs earlier among ready tasks) —
    /// the schedule-position component `Q_t`.
    pub priority: u32,
}

/// One complete CLR-integrated task mapping of an application.
///
/// # Examples
///
/// ```
/// use clr_platform::Platform;
/// use clr_sched::Mapping;
/// use clr_taskgraph::jpeg_encoder;
///
/// let g = jpeg_encoder();
/// let p = Platform::dac19();
/// let m = Mapping::first_fit(&g, &p).unwrap();
/// assert_eq!(m.len(), g.num_tasks());
/// assert!(m.validate(&g, &p).is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mapping {
    genes: Vec<Gene>,
}

impl Mapping {
    /// Creates a mapping from per-task genes (one per task, in task order).
    pub fn new(genes: Vec<Gene>) -> Self {
        Self { genes }
    }

    /// A deterministic baseline mapping: every task picks its first
    /// implementation whose PE type exists on the platform, bound to the
    /// first PE of that type, with no CLR mitigation and topological
    /// priorities.
    ///
    /// # Errors
    ///
    /// Returns [`MappingError::Unmappable`] if some task has no
    /// implementation compatible with any PE of the platform.
    pub fn first_fit(graph: &TaskGraph, platform: &Platform) -> Result<Self, MappingError> {
        let mut genes = Vec::with_capacity(graph.num_tasks());
        for t in graph.task_ids() {
            let mut found = None;
            'outer: for im in graph.implementations(t) {
                for pe in platform.pes() {
                    if pe.type_id() == im.pe_type() {
                        found = Some((pe.id(), im.id()));
                        break 'outer;
                    }
                }
            }
            let (pe, impl_id) = found.ok_or(MappingError::Unmappable { task: t.index() })?;
            genes.push(Gene {
                pe,
                impl_id,
                clr: ClrConfig::NONE,
                priority: (graph.num_tasks() - t.index()) as u32,
            });
        }
        Ok(Self { genes })
    }

    /// The per-task genes in task order.
    pub fn genes(&self) -> &[Gene] {
        &self.genes
    }

    /// Mutable access to the genes (for GA operators).
    pub fn genes_mut(&mut self) -> &mut [Gene] {
        &mut self.genes
    }

    /// The gene of task `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn gene(&self, t: TaskId) -> &Gene {
        &self.genes[t.index()]
    }

    /// Number of tasks covered.
    pub fn len(&self) -> usize {
        self.genes.len()
    }

    /// `true` if the mapping covers no tasks.
    pub fn is_empty(&self) -> bool {
        self.genes.is_empty()
    }

    /// Validates this mapping against a graph and platform: gene count,
    /// PE indices, implementation indices and PE-type compatibility.
    ///
    /// # Errors
    ///
    /// Returns the first [`MappingError`] found.
    pub fn validate(&self, graph: &TaskGraph, platform: &Platform) -> Result<(), MappingError> {
        if self.genes.len() != graph.num_tasks() {
            return Err(MappingError::LengthMismatch {
                genes: self.genes.len(),
                tasks: graph.num_tasks(),
            });
        }
        for (t, g) in self.genes.iter().enumerate() {
            if g.pe.index() >= platform.num_pes() {
                return Err(MappingError::UnknownPe {
                    task: t,
                    pe: g.pe.index(),
                });
            }
            let impls = graph.implementations(TaskId::new(t));
            if g.impl_id.index() >= impls.len() {
                return Err(MappingError::UnknownImpl {
                    task: t,
                    impl_id: g.impl_id.index(),
                });
            }
            let im = &impls[g.impl_id.index()];
            if platform.pe(g.pe).type_id() != im.pe_type() {
                return Err(MappingError::IncompatiblePeType { task: t });
            }
        }
        Ok(())
    }

    /// Total binary footprint (KiB) resident on each PE under this mapping;
    /// index `i` is PE `i`. Tasks of the same functionality type sharing a
    /// PE share one binary.
    pub fn memory_footprint(&self, graph: &TaskGraph, platform: &Platform) -> Vec<u64> {
        let mut footprint = vec![0u64; platform.num_pes()];
        let mut seen: Vec<(usize, usize, usize)> = Vec::new(); // (pe, task type, impl)
        for (t, g) in self.genes.iter().enumerate() {
            let task = graph.task(TaskId::new(t));
            let key = (g.pe.index(), task.type_id().index(), g.impl_id.index());
            if seen.contains(&key) {
                continue;
            }
            seen.push(key);
            let im = graph.implementation(TaskId::new(t), g.impl_id);
            footprint[g.pe.index()] += im.binary_kib() as u64;
        }
        footprint
    }

    /// `true` if every PE's resident binaries fit in its local memory.
    pub fn fits_memory(&self, graph: &TaskGraph, platform: &Platform) -> bool {
        self.memory_footprint(graph, platform)
            .iter()
            .zip(platform.pes())
            .all(|(&used, pe)| used <= pe.local_memory_kib() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clr_platform::{PeKind, PeType, PeTypeId};
    use clr_taskgraph::{jpeg_encoder, SwStack, TaskGraphBuilder};

    fn tiny_graph() -> TaskGraph {
        let mut b = TaskGraphBuilder::new("t", 100.0);
        b.task("a")
            .implementation(PeTypeId::new(0), SwStack::BareMetal, 10.0);
        b.task("b")
            .implementation(PeTypeId::new(0), SwStack::BareMetal, 10.0);
        b.edge(0.into(), 1.into(), 1.0, 4.0);
        b.build().unwrap()
    }

    #[test]
    fn first_fit_is_valid_on_dac19() {
        let g = jpeg_encoder();
        let p = Platform::dac19();
        let m = Mapping::first_fit(&g, &p).unwrap();
        assert!(m.validate(&g, &p).is_ok());
    }

    #[test]
    fn first_fit_fails_on_incompatible_platform() {
        // A platform with only type-5 PEs cannot host type-0 implementations.
        let p = Platform::builder()
            .pe_type(PeType::new("a", PeKind::GeneralPurpose))
            .pe_type(PeType::new("b", PeKind::GeneralPurpose))
            .pe(PeTypeId::new(1), 64)
            .build()
            .unwrap();
        let g = tiny_graph();
        assert_eq!(
            Mapping::first_fit(&g, &p).unwrap_err(),
            MappingError::Unmappable { task: 0 }
        );
    }

    #[test]
    fn validate_catches_length_mismatch() {
        let g = tiny_graph();
        let p = Platform::tiny();
        let m = Mapping::new(vec![]);
        assert!(matches!(
            m.validate(&g, &p),
            Err(MappingError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn validate_catches_incompatible_type() {
        let g = jpeg_encoder();
        let p = Platform::dac19();
        let mut m = Mapping::first_fit(&g, &p).unwrap();
        // Rebind task 0 to a PE of the wrong type for its chosen impl.
        let bad_pe = p
            .pe_ids()
            .find(|&id| {
                p.pe(id).type_id()
                    != g.implementations(0.into())[m.gene(0.into()).impl_id.index()].pe_type()
            })
            .unwrap();
        m.genes_mut()[0].pe = bad_pe;
        assert_eq!(
            m.validate(&g, &p).unwrap_err(),
            MappingError::IncompatiblePeType { task: 0 }
        );
    }

    #[test]
    fn memory_footprint_shares_same_type_binaries() {
        let g = jpeg_encoder();
        let p = Platform::dac19();
        let mut m = Mapping::first_fit(&g, &p).unwrap();
        // Bind all four DCT tasks (ids 1..=4, same task type) to one PE with
        // the same impl: they share a single binary.
        let target = m.gene(1.into()).pe;
        let impl_id = m.gene(1.into()).impl_id;
        for t in 2..=4 {
            m.genes_mut()[t].pe = target;
            m.genes_mut()[t].impl_id = impl_id;
        }
        let fp = m.memory_footprint(&g, &p);
        let single = g.implementation(1.into(), impl_id).binary_kib() as u64;
        // The DCT share of that PE's footprint is a single binary.
        let others: u64 = g
            .task_ids()
            .filter(|t| !(1..=4).contains(&t.index()))
            .filter(|&t| m.gene(t).pe == target)
            .map(|t| g.implementation(t, m.gene(t).impl_id).binary_kib() as u64)
            .sum();
        assert_eq!(fp[target.index()], single + others);
    }

    #[test]
    fn fits_memory_detects_overflow() {
        let g = tiny_graph();
        // 1 KiB of local memory cannot host a 32 KiB binary.
        let p = Platform::builder()
            .pe_type(PeType::new("c", PeKind::GeneralPurpose))
            .pe(PeTypeId::new(0), 1)
            .build()
            .unwrap();
        let m = Mapping::first_fit(&g, &p).unwrap();
        assert!(!m.fits_memory(&g, &p));
    }
}
