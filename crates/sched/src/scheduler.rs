//! Static list scheduling of a mapping onto a platform.
//!
//! CLR-integrated task scheduling (paper §3.4) executes every task's chosen
//! implementation, with its CLR configuration, on its bound PE in priority
//! order. The resulting schedule yields the average start/end execution
//! times `SST_t` / `SET_t` that Table 3's estimations consume.

use clr_taskgraph::{TaskGraph, TaskId};
use serde::{Deserialize, Serialize};

use crate::Mapping;

/// One scheduled task occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduleEntry {
    /// The scheduled task.
    pub task: TaskId,
    /// Index of the hosting PE.
    pub pe: usize,
    /// Average start execution time `SST_t`.
    pub start: f64,
    /// Average end execution time `SET_t`.
    pub end: f64,
}

/// A complete static schedule of one application iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    entries: Vec<ScheduleEntry>,
    makespan: f64,
}

impl Schedule {
    /// Assembles a schedule from externally produced entries (e.g. an
    /// imported trace); the makespan is derived. Prefer
    /// [`list_schedule`] for schedules the engine computes itself, and
    /// check imports with [`crate::validate_schedule`].
    pub fn from_entries(entries: Vec<ScheduleEntry>) -> Schedule {
        let makespan = entries.iter().map(|e| e.end).fold(0.0, f64::max);
        Schedule { entries, makespan }
    }

    /// Scheduled entries in task-id order.
    pub fn entries(&self) -> &[ScheduleEntry] {
        &self.entries
    }

    /// The entry of task `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn entry(&self, t: TaskId) -> &ScheduleEntry {
        &self.entries[t.index()]
    }

    /// The schedule makespan `S_app = max_t SET_t` (Eq. 1).
    pub fn makespan(&self) -> f64 {
        self.makespan
    }
}

/// List-schedules `mapping` using per-task execution times `exec_time[t]`.
///
/// Dependency semantics: a task becomes ready when all predecessors have
/// finished; crossing PEs additionally pays the edge's `comm_time`
/// (same-PE communication through local memory is free). Among ready
/// tasks, higher gene priority runs first (ties broken by task id), and
/// each PE executes one task at a time.
///
/// # Panics
///
/// Panics if `mapping`/`exec_time` lengths disagree with the graph (a
/// caller bug — validate mappings first).
///
/// # Examples
///
/// ```
/// use clr_platform::Platform;
/// use clr_sched::{list_schedule, Mapping};
/// use clr_taskgraph::jpeg_encoder;
///
/// let g = jpeg_encoder();
/// let p = Platform::dac19();
/// let m = Mapping::first_fit(&g, &p).unwrap();
/// let times: Vec<f64> = g.task_ids().map(|_| 10.0).collect();
/// let s = list_schedule(&g, &m, &times);
/// assert!(s.makespan() >= 10.0);
/// ```
pub fn list_schedule(graph: &TaskGraph, mapping: &Mapping, exec_time: &[f64]) -> Schedule {
    let n = graph.num_tasks();
    assert_eq!(mapping.len(), n, "mapping length must equal task count");
    assert_eq!(exec_time.len(), n, "exec_time length must equal task count");

    let num_pes = mapping
        .genes()
        .iter()
        .map(|g| g.pe.index() + 1)
        .max()
        .unwrap_or(1);
    let mut pe_free = vec![0.0f64; num_pes];
    let mut remaining_preds: Vec<usize> = graph
        .task_ids()
        .map(|t| graph.predecessors(t).count())
        .collect();
    // data_ready[t]: all predecessor outputs (incl. comm) available.
    let mut data_ready = vec![0.0f64; n];
    let mut done = vec![false; n];
    let mut entries: Vec<ScheduleEntry> = (0..n)
        .map(|t| ScheduleEntry {
            task: TaskId::new(t),
            pe: mapping.genes()[t].pe.index(),
            start: 0.0,
            end: 0.0,
        })
        .collect();

    let mut ready: Vec<usize> = (0..n).filter(|&t| remaining_preds[t] == 0).collect();
    let mut scheduled = 0usize;
    while scheduled < n {
        // Pick the ready task with the highest priority (ties: lowest id).
        let (pos, &t) = ready
            .iter()
            .enumerate()
            .max_by(|(_, &a), (_, &b)| {
                let pa = mapping.genes()[a].priority;
                let pb = mapping.genes()[b].priority;
                pa.cmp(&pb).then(b.cmp(&a))
            })
            .expect("ready list cannot be empty while tasks remain in a DAG");
        ready.swap_remove(pos);

        let pe = mapping.genes()[t].pe.index();
        let start = pe_free[pe].max(data_ready[t]);
        let end = start + exec_time[t];
        pe_free[pe] = end;
        entries[t].start = start;
        entries[t].end = end;
        done[t] = true;
        scheduled += 1;

        for e in graph.out_edges(TaskId::new(t)) {
            let d = e.dst().index();
            let arrival = if mapping.genes()[d].pe == mapping.genes()[t].pe {
                end
            } else {
                end + e.comm_time()
            };
            if arrival > data_ready[d] {
                data_ready[d] = arrival;
            }
            remaining_preds[d] -= 1;
            if remaining_preds[d] == 0 {
                ready.push(d);
            }
        }
    }

    let makespan = entries.iter().map(|e| e.end).fold(0.0, f64::max);

    // Debug-build post-conditions at the construction site: the cheapest
    // subset of the `clr-verify` schedule lints (well-formed intervals and
    // precedence edges), so scheduler regressions fail here rather than in
    // a downstream audit.
    debug_assert!(
        entries
            .iter()
            .all(|e| e.start.is_finite() && e.end.is_finite() && e.end >= e.start),
        "list_schedule produced a malformed entry interval"
    );
    debug_assert!(
        graph
            .edges()
            .iter()
            .all(|e| { entries[e.dst().index()].start >= entries[e.src().index()].end - 1e-9 }),
        "list_schedule violated a precedence edge"
    );

    Schedule { entries, makespan }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clr_platform::PeTypeId;
    use clr_platform::{PeId, Platform};
    use clr_taskgraph::{SwStack, TaskGraph, TaskGraphBuilder};
    use proptest::prelude::*;

    fn chain(n: usize) -> TaskGraph {
        let mut b = TaskGraphBuilder::new("chain", 100.0);
        for i in 0..n {
            b.task(format!("t{i}"))
                .implementation(PeTypeId::new(0), SwStack::BareMetal, 10.0);
        }
        for i in 1..n {
            b.edge((i - 1).into(), i.into(), 5.0, 4.0);
        }
        b.build().unwrap()
    }

    fn fork() -> TaskGraph {
        // 0 -> {1, 2}
        let mut b = TaskGraphBuilder::new("fork", 100.0);
        for i in 0..3 {
            b.task(format!("t{i}"))
                .implementation(PeTypeId::new(0), SwStack::BareMetal, 10.0);
        }
        b.edge(0.into(), 1.into(), 5.0, 4.0);
        b.edge(0.into(), 2.into(), 5.0, 4.0);
        b.build().unwrap()
    }

    fn mapping_on(graph: &TaskGraph, pes: &[usize]) -> Mapping {
        let p = Platform::tiny();
        let mut m = Mapping::first_fit(graph, &p).unwrap();
        for (t, &pe) in pes.iter().enumerate() {
            m.genes_mut()[t].pe = PeId::new(pe);
        }
        m
    }

    #[test]
    fn same_pe_chain_has_no_comm_cost() {
        let g = chain(3);
        let m = mapping_on(&g, &[0, 0, 0]);
        let s = list_schedule(&g, &m, &[10.0, 10.0, 10.0]);
        assert_eq!(s.makespan(), 30.0);
    }

    #[test]
    fn cross_pe_chain_pays_communication() {
        let g = chain(3);
        let m = mapping_on(&g, &[0, 1, 0]);
        let s = list_schedule(&g, &m, &[10.0, 10.0, 10.0]);
        // 10 + 5 + 10 + 5 + 10.
        assert_eq!(s.makespan(), 40.0);
    }

    #[test]
    fn parallel_branches_overlap_on_two_pes() {
        let g = fork();
        let m = mapping_on(&g, &[0, 0, 1]);
        let s = list_schedule(&g, &m, &[10.0, 10.0, 10.0]);
        // Branch on PE0 finishes at 20; branch on PE1 at 10+5+10 = 25.
        assert_eq!(s.makespan(), 25.0);
        assert_eq!(s.entry(TaskId::new(1)).start, 10.0);
        assert_eq!(s.entry(TaskId::new(2)).start, 15.0);
    }

    #[test]
    fn priority_breaks_ready_ties() {
        let g = fork();
        let mut m = mapping_on(&g, &[0, 0, 0]);
        // Give task 2 higher priority than task 1: it should run first.
        m.genes_mut()[1].priority = 1;
        m.genes_mut()[2].priority = 9;
        let s = list_schedule(&g, &m, &[10.0, 10.0, 10.0]);
        assert!(s.entry(TaskId::new(2)).start < s.entry(TaskId::new(1)).start);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn makespan_respects_theoretical_bounds(seed in 0u64..200, n in 2usize..25) {
            use clr_taskgraph::{TgffConfig, TgffGenerator};
            let g = TgffGenerator::new(TgffConfig::with_tasks(n)).generate(seed);
            let p = Platform::dac19();
            let m = Mapping::first_fit(&g, &p).unwrap();
            let times: Vec<f64> = g.task_ids().map(|t| 5.0 + (t.index() % 7) as f64).collect();
            let s = list_schedule(&g, &m, &times);

            // Lower bounds: the critical path (with cross-PE comm only
            // where the mapping crosses PEs — the all-comm critical path
            // over-estimates, so use the zero-comm one) and the busiest
            // PE's total work.
            let cp_no_comm = {
                let mut finish = vec![0.0f64; g.num_tasks()];
                for &t in g.topological_order() {
                    let ready = g
                        .predecessors(t)
                        .map(|pr| finish[pr.index()])
                        .fold(0.0f64, f64::max);
                    finish[t.index()] = ready + times[t.index()];
                }
                finish.iter().copied().fold(0.0, f64::max)
            };
            let mut pe_work = std::collections::HashMap::new();
            for t in g.task_ids() {
                *pe_work.entry(m.gene(t).pe).or_insert(0.0f64) += times[t.index()];
            }
            let busiest = pe_work.values().copied().fold(0.0f64, f64::max);
            prop_assert!(s.makespan() >= cp_no_comm - 1e-9);
            prop_assert!(s.makespan() >= busiest - 1e-9);

            // Upper bound: complete serialisation of all work + all comm.
            let total: f64 = times.iter().sum::<f64>()
                + g.edges().iter().map(clr_taskgraph::Edge::comm_time).sum::<f64>();
            prop_assert!(s.makespan() <= total + 1e-9);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn schedule_respects_dependencies_and_exclusivity(
            seed in 0u64..500,
            n in 2usize..40,
        ) {
            use clr_taskgraph::{TgffConfig, TgffGenerator};
            use clr_reliability::FaultModel;
            let g = TgffGenerator::new(TgffConfig::with_tasks(n)).generate(seed);
            let p = Platform::dac19();
            let m = Mapping::first_fit(&g, &p).unwrap();
            let eval = crate::Evaluator::new(&g, &p, FaultModel::default());
            let times: Vec<f64> = g
                .task_ids()
                .map(|t| eval.task_metrics(&m, t).avg_ex_t)
                .collect();
            let s = list_schedule(&g, &m, &times);
            // Precedence: every edge's dst starts at/after src end (+comm if
            // cross-PE).
            for e in g.edges() {
                let src = s.entry(e.src());
                let dst = s.entry(e.dst());
                let bound = if src.pe == dst.pe {
                    src.end
                } else {
                    src.end + e.comm_time()
                };
                prop_assert!(dst.start >= bound - 1e-9);
            }
            // PE exclusivity: entries on one PE never overlap.
            for pe in 0..p.num_pes() {
                let mut on_pe: Vec<_> = s.entries().iter().filter(|e| e.pe == pe).collect();
                on_pe.sort_by(|a, b| a.start.total_cmp(&b.start));
                for w in on_pe.windows(2) {
                    prop_assert!(w[1].start >= w[0].end - 1e-9);
                }
            }
            prop_assert!((s.makespan() - s.entries().iter().map(|e| e.end).fold(0.0, f64::max)).abs() < 1e-9);
        }
    }
}
