//! HEFT-style constructive mapping (Topcuoglu et al., *Heterogeneous
//! Earliest Finish Time*).
//!
//! The design-time GA benefits from a good constructive seed: HEFT ranks
//! tasks by *upward rank* (critical-path distance to the exit, using mean
//! execution/communication costs) and greedily places each task on the
//! PE/implementation pair minimising its earliest finish time. The result
//! doubles as a competitive deterministic baseline mapping.

use clr_platform::{PeId, Platform};
use clr_reliability::{ClrConfig, FaultModel, TaskMetrics};
use clr_taskgraph::{ImplId, TaskGraph, TaskId};

use crate::{Gene, Mapping, MappingError};

/// Builds a HEFT mapping of `graph` on `platform` under `fault_model`
/// (no CLR mitigation; the GA explores that axis).
///
/// The returned mapping's priorities encode the upward-rank order, so
/// [`crate::list_schedule`] reproduces HEFT's scheduling decisions.
///
/// # Errors
///
/// Returns [`MappingError::Unmappable`] if some task has no
/// platform-compatible implementation.
///
/// # Examples
///
/// ```
/// use clr_platform::Platform;
/// use clr_reliability::FaultModel;
/// use clr_sched::{heft_mapping, Evaluator, Mapping};
/// use clr_taskgraph::jpeg_encoder;
///
/// let g = jpeg_encoder();
/// let p = Platform::dac19();
/// let fm = FaultModel::default();
/// let heft = heft_mapping(&g, &p, &fm)?;
/// let naive = Mapping::first_fit(&g, &p)?;
/// let eval = Evaluator::new(&g, &p, fm);
/// // HEFT is at least as good as first-fit on makespan.
/// assert!(eval.evaluate(&heft).makespan <= eval.evaluate(&naive).makespan + 1e-9);
/// # Ok::<(), clr_sched::MappingError>(())
/// ```
pub fn heft_mapping(
    graph: &TaskGraph,
    platform: &Platform,
    fault_model: &FaultModel,
) -> Result<Mapping, MappingError> {
    let n = graph.num_tasks();

    // --- Per-task candidate (pe, impl) pairs and mean execution times. --
    let mut candidates: Vec<Vec<(PeId, ImplId, f64)>> = Vec::with_capacity(n);
    let mut mean_time = vec![0.0f64; n];
    for t in graph.task_ids() {
        let mut options = Vec::new();
        for im in graph.implementations(t) {
            for pe in platform.pes() {
                if pe.type_id() == im.pe_type() {
                    let m = TaskMetrics::evaluate(
                        im,
                        platform.pe_type(pe.type_id()),
                        &ClrConfig::NONE,
                        fault_model,
                    );
                    options.push((pe.id(), im.id(), m.avg_ex_t));
                }
            }
        }
        if options.is_empty() {
            return Err(MappingError::Unmappable { task: t.index() });
        }
        mean_time[t.index()] =
            options.iter().map(|(_, _, t)| t).sum::<f64>() / options.len() as f64;
        candidates.push(options);
    }

    // --- Upward ranks (reverse topological order). ----------------------
    let mut rank = vec![0.0f64; n];
    for &t in graph.topological_order().iter().rev() {
        let mut best_succ = 0.0f64;
        for e in graph.out_edges(t) {
            // Mean communication: half the edge cost (same-PE comm is free).
            let candidate = rank[e.dst().index()] + e.comm_time() * 0.5;
            if candidate > best_succ {
                best_succ = candidate;
            }
        }
        rank[t.index()] = mean_time[t.index()] + best_succ;
    }

    // --- Greedy earliest-finish-time placement in rank order. -----------
    let mut order: Vec<TaskId> = graph.task_ids().collect();
    order.sort_by(|a, b| rank[b.index()].total_cmp(&rank[a.index()]));

    let mut pe_free = vec![0.0f64; platform.num_pes()];
    let mut finish = vec![0.0f64; n];
    let mut chosen: Vec<Option<(PeId, ImplId)>> = vec![None; n];
    let mut placed_pe = vec![PeId::new(0); n];
    for &t in &order {
        let mut best: Option<(PeId, ImplId, f64, f64)> = None; // (pe, impl, start, finish)
        for &(pe, impl_id, exec) in &candidates[t.index()] {
            // Data-ready time on this PE.
            let mut ready = 0.0f64;
            for e in graph.in_edges(t) {
                let src = e.src().index();
                let arrival = if placed_pe[src] == pe && chosen[src].is_some() {
                    finish[src]
                } else {
                    finish[src] + e.comm_time()
                };
                if arrival > ready {
                    ready = arrival;
                }
            }
            let start = ready.max(pe_free[pe.index()]);
            let fin = start + exec;
            let better = match &best {
                None => true,
                Some((_, _, _, best_fin)) => fin < *best_fin,
            };
            if better {
                best = Some((pe, impl_id, start, fin));
            }
        }
        let (pe, impl_id, _start, fin) = best.expect("candidates are non-empty by construction");
        pe_free[pe.index()] = fin;
        finish[t.index()] = fin;
        chosen[t.index()] = Some((pe, impl_id));
        placed_pe[t.index()] = pe;
    }

    // --- Encode as a mapping; priorities follow rank order. --------------
    let mut genes = Vec::with_capacity(n);
    for t in graph.task_ids() {
        let (pe, impl_id) = chosen[t.index()].expect("all tasks placed");
        genes.push(Gene {
            pe,
            impl_id,
            clr: ClrConfig::NONE,
            priority: 0,
        });
    }
    let mut mapping = Mapping::new(genes);
    for (pos, &t) in order.iter().enumerate() {
        mapping.genes_mut()[t.index()].priority = (n - pos) as u32;
    }
    // Debug-build post-condition at the construction site (mirrors the
    // `clr-verify` mapping-compatibility lints): HEFT must only emit
    // mappings that validate against the graph/platform it was given.
    debug_assert!(
        mapping.validate(graph, platform).is_ok(),
        "heft_mapping produced an invalid mapping"
    );
    Ok(mapping)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Evaluator;
    use clr_taskgraph::{jpeg_encoder, TgffConfig, TgffGenerator};

    #[test]
    fn heft_is_valid_and_beats_first_fit_on_average() {
        let platform = Platform::dac19();
        let fm = FaultModel::default();
        let mut wins = 0usize;
        let mut total = 0usize;
        for seed in 0..8u64 {
            let graph = TgffGenerator::new(TgffConfig::with_tasks(25)).generate(seed);
            let heft = heft_mapping(&graph, &platform, &fm).unwrap();
            assert!(heft.validate(&graph, &platform).is_ok());
            let naive = Mapping::first_fit(&graph, &platform).unwrap();
            let eval = Evaluator::new(&graph, &platform, fm);
            let hm = eval.evaluate(&heft).makespan;
            let nm = eval.evaluate(&naive).makespan;
            total += 1;
            if hm <= nm + 1e-9 {
                wins += 1;
            }
        }
        assert!(
            wins * 2 >= total,
            "heft should beat first-fit usually: {wins}/{total}"
        );
    }

    #[test]
    fn heft_uses_multiple_pes_for_parallel_work() {
        let platform = Platform::dac19();
        let graph = jpeg_encoder();
        let heft = heft_mapping(&graph, &platform, &FaultModel::default()).unwrap();
        let distinct: std::collections::HashSet<_> = heft.genes().iter().map(|g| g.pe).collect();
        assert!(distinct.len() > 1, "heft serialised everything on one pe");
    }

    #[test]
    fn heft_priorities_are_distinct() {
        let platform = Platform::dac19();
        let graph = jpeg_encoder();
        let heft = heft_mapping(&graph, &platform, &FaultModel::default()).unwrap();
        let mut prios: Vec<u32> = heft.genes().iter().map(|g| g.priority).collect();
        prios.sort_unstable();
        prios.dedup();
        assert_eq!(prios.len(), graph.num_tasks());
    }
}
