//! Reconfiguration model (paper §3.5): the cost `dRC` of moving the system
//! between two CLR-integrated task-mapping configurations.
//!
//! The four adaptation modes and their costs:
//!
//! 1. **Re-ordering** task execution on each PE — free (priorities are
//!    control state).
//! 2. **Changing the CLR configuration** of a task — free (every PE stores
//!    the binaries of the tasks mapped on it, and reliability-method
//!    selection is control state).
//! 3. **Changing the implementation** used for a task — pays the new
//!    binary's copy over the interconnect (plus a PRR bit-stream reload if
//!    the new implementation is an accelerator).
//! 4. **Re-binding a task to a different PE** — pays the binary copy to the
//!    destination PE's local memory (plus the bit-stream reload for
//!    accelerated implementations).

use clr_platform::Platform;
use clr_taskgraph::TaskGraph;
use serde::{Deserialize, Serialize};

use crate::Mapping;

/// Itemised reconfiguration cost between two mappings.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ReconfigBreakdown {
    /// Time spent copying task binaries across the interconnect.
    pub migration_time: f64,
    /// Time spent reloading PRR bit-streams through the ICAP.
    pub bitstream_time: f64,
    /// Interconnect energy of the binary copies.
    pub migration_energy: f64,
    /// Number of tasks whose binding or implementation changed.
    pub migrated_tasks: usize,
}

impl ReconfigBreakdown {
    /// The scalar reconfiguration cost `dRC` (time components summed) used
    /// by the run-time policies.
    pub fn total(&self) -> f64 {
        self.migration_time + self.bitstream_time
    }

    /// `true` if the adaptation touches nothing that costs.
    pub fn is_free(&self) -> bool {
        self.migrated_tasks == 0
    }
}

/// Computes the reconfiguration distance `dRC(from → to)`.
///
/// A task contributes cost iff its PE binding or its implementation
/// changes; pure CLR-configuration or priority changes are free. Each
/// migrated accelerated implementation additionally reloads the bit-stream
/// of the PRR it lands in (PRRs are assigned round-robin by task index,
/// matching the platform's fixed PRR count).
///
/// # Panics
///
/// Panics if either mapping's length disagrees with the graph (validate
/// mappings before costing them).
///
/// # Examples
///
/// ```
/// use clr_platform::Platform;
/// use clr_sched::{reconfiguration_cost, Mapping};
/// use clr_taskgraph::jpeg_encoder;
///
/// let g = jpeg_encoder();
/// let p = Platform::dac19();
/// let m = Mapping::first_fit(&g, &p).unwrap();
/// assert!(reconfiguration_cost(&g, &p, &m, &m).is_free());
/// ```
pub fn reconfiguration_cost(
    graph: &TaskGraph,
    platform: &Platform,
    from: &Mapping,
    to: &Mapping,
) -> ReconfigBreakdown {
    let n = graph.num_tasks();
    assert_eq!(from.len(), n, "`from` mapping length mismatch");
    assert_eq!(to.len(), n, "`to` mapping length mismatch");

    let ic = platform.interconnect();
    let mut out = ReconfigBreakdown::default();
    for t in graph.task_ids() {
        let a = from.gene(t);
        let b = to.gene(t);
        let moved = a.pe != b.pe || a.impl_id != b.impl_id;
        if !moved {
            continue;
        }
        out.migrated_tasks += 1;
        let im = graph.implementation(t, b.impl_id);
        let kib = im.binary_kib() as f64;
        out.migration_time += ic.transfer_time(kib);
        out.migration_energy += ic.transfer_energy(kib);
        if im.accelerated() && platform.num_prrs() > 0 {
            let prr = platform.prrs()[t.index() % platform.num_prrs()];
            out.bitstream_time += prr.reload_cost();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use clr_reliability::{AswMethod, ClrConfig, HwMethod, SswMethod};
    use clr_taskgraph::jpeg_encoder;
    use proptest::prelude::*;

    fn setup() -> (clr_taskgraph::TaskGraph, Platform, Mapping) {
        let g = jpeg_encoder();
        let p = Platform::dac19();
        let m = Mapping::first_fit(&g, &p).unwrap();
        (g, p, m)
    }

    #[test]
    fn identity_is_free() {
        let (g, p, m) = setup();
        let c = reconfiguration_cost(&g, &p, &m, &m);
        assert!(c.is_free());
        assert_eq!(c.total(), 0.0);
    }

    #[test]
    fn clr_and_priority_changes_are_free() {
        let (g, p, m) = setup();
        let mut m2 = m.clone();
        for gene in m2.genes_mut() {
            gene.clr = ClrConfig::new(
                HwMethod::FullTmr,
                SswMethod::Retry { max_retries: 2 },
                AswMethod::Checksum,
            );
            gene.priority = gene.priority.wrapping_add(17);
        }
        assert!(reconfiguration_cost(&g, &p, &m, &m2).is_free());
    }

    #[test]
    fn rebinding_pays_binary_copy() {
        let (g, p, m) = setup();
        let mut m2 = m.clone();
        // Move task 0 to another PE of the same type (dac19 has two
        // lp-cores and two hp-cores).
        let t0_type = p.pe(m.gene(0.into()).pe).type_id();
        let other = p
            .pe_ids()
            .find(|&id| id != m.gene(0.into()).pe && p.pe(id).type_id() == t0_type)
            .expect("dac19 has pe pairs per type");
        m2.genes_mut()[0].pe = other;
        let c = reconfiguration_cost(&g, &p, &m, &m2);
        assert_eq!(c.migrated_tasks, 1);
        let kib = g
            .implementation(0.into(), m.gene(0.into()).impl_id)
            .binary_kib() as f64;
        assert!((c.migration_time - p.interconnect().transfer_time(kib)).abs() < 1e-12);
        assert!(c.migration_energy > 0.0);
    }

    #[test]
    fn accelerator_change_pays_bitstream() {
        let (g, p, m) = setup();
        // Task 1 (a DCT) has an accelerated implementation in the sample.
        let accel_impl = g
            .implementations(1.into())
            .iter()
            .find(|i| i.accelerated())
            .expect("dct has accelerator");
        let mut m2 = m.clone();
        m2.genes_mut()[1].impl_id = accel_impl.id();
        // Bind to a PE of the accelerator's type.
        let pe = p
            .pe_ids()
            .find(|&id| p.pe(id).type_id() == accel_impl.pe_type())
            .unwrap();
        m2.genes_mut()[1].pe = pe;
        let c = reconfiguration_cost(&g, &p, &m, &m2);
        assert!(c.bitstream_time > 0.0);
        assert!(c.total() > c.migration_time);
    }

    #[test]
    fn cost_is_additive_over_tasks() {
        let (g, p, m) = setup();
        // Two independent single-task moves cost the same as both together.
        let t0_type = p.pe(m.gene(0.into()).pe).type_id();
        let other0 = p
            .pe_ids()
            .find(|&id| id != m.gene(0.into()).pe && p.pe(id).type_id() == t0_type)
            .unwrap();
        let t5_type = p.pe(m.gene(5.into()).pe).type_id();
        let other5 = p
            .pe_ids()
            .find(|&id| id != m.gene(5.into()).pe && p.pe(id).type_id() == t5_type)
            .unwrap();
        let mut only0 = m.clone();
        only0.genes_mut()[0].pe = other0;
        let mut only5 = m.clone();
        only5.genes_mut()[5].pe = other5;
        let mut both = m.clone();
        both.genes_mut()[0].pe = other0;
        both.genes_mut()[5].pe = other5;
        let c0 = reconfiguration_cost(&g, &p, &m, &only0).total();
        let c5 = reconfiguration_cost(&g, &p, &m, &only5).total();
        let cb = reconfiguration_cost(&g, &p, &m, &both).total();
        assert!((cb - (c0 + c5)).abs() < 1e-9);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn drc_is_nonnegative_and_zero_only_for_no_moves(shift in 0usize..5) {
            let (g, p, m) = setup();
            let mut m2 = m.clone();
            // Shift some priorities (free) and possibly one binding.
            for gene in m2.genes_mut() {
                gene.priority += shift as u32;
            }
            let c = reconfiguration_cost(&g, &p, &m, &m2);
            prop_assert!(c.total() >= 0.0);
            prop_assert!(c.is_free());
        }
    }
}
