//! Schedule validation and resource-utilisation statistics.

use clr_taskgraph::TaskGraph;
use serde::{Deserialize, Serialize};

use crate::{Mapping, Schedule};

/// Per-PE utilisation of a schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Utilization {
    /// Busy time per PE (index = PE id).
    pub busy: Vec<f64>,
    /// Busy fraction per PE over the makespan.
    pub utilization: Vec<f64>,
    /// Mean busy fraction across PEs that host at least one task.
    pub mean_active_utilization: f64,
    /// Number of PEs hosting at least one task.
    pub active_pes: usize,
}

/// Computes per-PE utilisation over `num_pes` processing elements.
///
/// # Examples
///
/// ```
/// use clr_platform::Platform;
/// use clr_sched::{list_schedule, utilization, Mapping};
/// use clr_taskgraph::jpeg_encoder;
///
/// let g = jpeg_encoder();
/// let p = Platform::dac19();
/// let m = Mapping::first_fit(&g, &p).unwrap();
/// let times: Vec<f64> = g.task_ids().map(|_| 10.0).collect();
/// let s = list_schedule(&g, &m, &times);
/// let u = utilization(&s, p.num_pes());
/// assert!(u.active_pes >= 1);
/// assert!(u.mean_active_utilization > 0.0);
/// ```
pub fn utilization(schedule: &Schedule, num_pes: usize) -> Utilization {
    let mut busy = vec![0.0f64; num_pes];
    for e in schedule.entries() {
        if e.pe < num_pes {
            busy[e.pe] += e.end - e.start;
        }
    }
    let makespan = schedule.makespan().max(1e-12);
    let utilization: Vec<f64> = busy.iter().map(|b| b / makespan).collect();
    let active: Vec<f64> = utilization.iter().copied().filter(|&u| u > 0.0).collect();
    let active_pes = active.len();
    let mean_active_utilization = if active_pes == 0 {
        0.0
    } else {
        active.iter().sum::<f64>() / active_pes as f64
    };
    Utilization {
        busy,
        utilization,
        mean_active_utilization,
        active_pes,
    }
}

/// Structural error found by [`validate_schedule`].
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduleViolation {
    /// A task ends before it starts.
    NegativeDuration {
        /// The offending task index.
        task: usize,
    },
    /// Two tasks overlap on one PE.
    PeOverlap {
        /// The shared PE.
        pe: usize,
        /// The earlier task.
        first: usize,
        /// The overlapping task.
        second: usize,
    },
    /// A dependency starts before its producer's data can arrive.
    PrecedenceBreach {
        /// The producing task.
        src: usize,
        /// The consuming task.
        dst: usize,
    },
}

impl std::fmt::Display for ScheduleViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleViolation::NegativeDuration { task } => {
                write!(f, "task {task} has negative duration")
            }
            ScheduleViolation::PeOverlap { pe, first, second } => {
                write!(f, "tasks {first} and {second} overlap on pe {pe}")
            }
            ScheduleViolation::PrecedenceBreach { src, dst } => {
                write!(f, "task {dst} starts before data from task {src} arrives")
            }
        }
    }
}

/// Exhaustively checks a schedule against its graph and mapping: no
/// negative durations, no same-PE overlap, and every edge's destination
/// starts after the producer finishes (plus the edge's transfer time when
/// the endpoints sit on different PEs).
///
/// Returns all violations found (empty = valid). The engine's own list
/// scheduler is covered by property tests; this check exists for
/// externally supplied or hand-edited schedules.
pub fn validate_schedule(
    graph: &TaskGraph,
    mapping: &Mapping,
    schedule: &Schedule,
) -> Vec<ScheduleViolation> {
    let mut violations = Vec::new();
    for e in schedule.entries() {
        if e.end < e.start - 1e-9 {
            violations.push(ScheduleViolation::NegativeDuration {
                task: e.task.index(),
            });
        }
    }
    // PE exclusivity.
    let num_pes = schedule
        .entries()
        .iter()
        .map(|e| e.pe + 1)
        .max()
        .unwrap_or(0);
    for pe in 0..num_pes {
        let mut on_pe: Vec<_> = schedule.entries().iter().filter(|e| e.pe == pe).collect();
        on_pe.sort_by(|a, b| a.start.total_cmp(&b.start));
        for w in on_pe.windows(2) {
            if w[1].start < w[0].end - 1e-9 {
                violations.push(ScheduleViolation::PeOverlap {
                    pe,
                    first: w[0].task.index(),
                    second: w[1].task.index(),
                });
            }
        }
    }
    // Precedence.
    for edge in graph.edges() {
        let src = schedule.entry(edge.src());
        let dst = schedule.entry(edge.dst());
        let bound = if mapping.gene(edge.src()).pe == mapping.gene(edge.dst()).pe {
            src.end
        } else {
            src.end + edge.comm_time()
        };
        if dst.start < bound - 1e-9 {
            violations.push(ScheduleViolation::PrecedenceBreach {
                src: edge.src().index(),
                dst: edge.dst().index(),
            });
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{list_schedule, Mapping};
    use clr_platform::Platform;
    use clr_taskgraph::{jpeg_encoder, TgffConfig, TgffGenerator};

    #[test]
    fn generated_schedules_validate_clean() {
        let p = Platform::dac19();
        for seed in 0..5u64 {
            let g = TgffGenerator::new(TgffConfig::with_tasks(20)).generate(seed);
            let m = Mapping::first_fit(&g, &p).unwrap();
            let times: Vec<f64> = g.task_ids().map(|t| 5.0 + t.index() as f64).collect();
            let s = list_schedule(&g, &m, &times);
            assert!(validate_schedule(&g, &m, &s).is_empty());
        }
    }

    #[test]
    fn utilization_sums_busy_time() {
        let g = jpeg_encoder();
        let p = Platform::dac19();
        let m = Mapping::first_fit(&g, &p).unwrap();
        let times: Vec<f64> = g.task_ids().map(|_| 10.0).collect();
        let s = list_schedule(&g, &m, &times);
        let u = utilization(&s, p.num_pes());
        let total_busy: f64 = u.busy.iter().sum();
        assert!((total_busy - 10.0 * g.num_tasks() as f64).abs() < 1e-9);
        assert!(u
            .utilization
            .iter()
            .all(|&x| (0.0..=1.0 + 1e-9).contains(&x)));
    }

    #[test]
    fn corrupted_schedule_is_caught() {
        let g = jpeg_encoder();
        let p = Platform::dac19();
        let m = Mapping::first_fit(&g, &p).unwrap();
        let times: Vec<f64> = g.task_ids().map(|_| 10.0).collect();
        let s = list_schedule(&g, &m, &times);
        // Rebuild a corrupted schedule where every task starts at 0 — that
        // necessarily overlaps or breaks precedence somewhere.
        let corrupted: Vec<_> = s
            .entries()
            .iter()
            .map(|e| crate::ScheduleEntry {
                start: 0.0,
                end: 10.0,
                ..*e
            })
            .collect();
        let broken = crate::Schedule::from_entries(corrupted);
        let violations = validate_schedule(&g, &m, &broken);
        assert!(!violations.is_empty());
        assert!(!violations[0].to_string().is_empty());
    }
}
