//! Design points and QoS specifications.

use clr_sched::{Mapping, SystemMetrics};
use serde::{Deserialize, Serialize};

/// How a stored design point was discovered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PointOrigin {
    /// Member of the performance-oriented Pareto front (BaseD).
    Pareto,
    /// Additional non-dominant point from the reconfiguration-cost-aware
    /// stage (the points marked `>` in paper Fig. 5).
    ReconfigAware,
}

/// One stored CLR-integrated task-mapping design point `X_i` with its
/// evaluated system-level metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignPoint {
    /// The mapping configuration.
    pub mapping: Mapping,
    /// Its Table-3 metrics.
    pub metrics: SystemMetrics,
    /// Discovery origin.
    pub origin: PointOrigin,
}

impl DesignPoint {
    /// Creates a design point.
    pub fn new(mapping: Mapping, metrics: SystemMetrics, origin: PointOrigin) -> Self {
        Self {
            mapping,
            metrics,
            origin,
        }
    }

    /// The QoS-space objective vector `(S_app, 1 − F_app)` used for
    /// dominance/feasibility bookkeeping.
    pub fn qos_objectives(&self) -> [f64; 2] {
        [self.metrics.makespan, self.metrics.error_rate()]
    }

    /// `true` if this point satisfies a QoS requirement.
    pub fn satisfies(&self, spec: &QosSpec) -> bool {
        spec.admits(&self.metrics)
    }
}

/// A QoS requirement `(S_SPEC, F_SPEC)`: the maximum acceptable average
/// makespan and the minimum acceptable functional reliability.
///
/// # Examples
///
/// ```
/// use clr_dse::QosSpec;
/// let spec = QosSpec::new(1000.0, 0.98);
/// assert!((spec.max_error_rate() - 0.02).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QosSpec {
    /// Maximum acceptable average makespan `S_SPEC`.
    pub max_makespan: f64,
    /// Minimum acceptable functional reliability `F_SPEC ∈ [0, 1]`.
    pub min_reliability: f64,
}

impl QosSpec {
    /// Creates a QoS specification.
    pub fn new(max_makespan: f64, min_reliability: f64) -> Self {
        Self {
            max_makespan,
            min_reliability,
        }
    }

    /// The specification expressed as a maximum application error rate.
    pub fn max_error_rate(&self) -> f64 {
        1.0 - self.min_reliability
    }

    /// `true` if metrics meet both requirements.
    pub fn admits(&self, metrics: &SystemMetrics) -> bool {
        metrics.makespan <= self.max_makespan && metrics.reliability >= self.min_reliability
    }

    /// Clamps the spec into sane numeric bounds (reliability into `[0, 1]`,
    /// makespan non-negative) — used when sampling specs from unbounded
    /// Gaussian QoS variations.
    pub fn clamped(&self) -> Self {
        Self {
            max_makespan: self.max_makespan.max(0.0),
            min_reliability: self.min_reliability.clamp(0.0, 1.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(makespan: f64, reliability: f64) -> SystemMetrics {
        SystemMetrics {
            makespan,
            reliability,
            energy: 100.0,
            peak_power: 10.0,
            mean_mttf: 1e6,
        }
    }

    #[test]
    fn admits_is_a_conjunction() {
        let spec = QosSpec::new(100.0, 0.9);
        assert!(spec.admits(&metrics(90.0, 0.95)));
        assert!(!spec.admits(&metrics(110.0, 0.95)));
        assert!(!spec.admits(&metrics(90.0, 0.85)));
    }

    #[test]
    fn boundary_values_are_admitted() {
        let spec = QosSpec::new(100.0, 0.9);
        assert!(spec.admits(&metrics(100.0, 0.9)));
    }

    #[test]
    fn clamped_repairs_wild_samples() {
        let spec = QosSpec::new(-5.0, 1.7).clamped();
        assert_eq!(spec.max_makespan, 0.0);
        assert_eq!(spec.min_reliability, 1.0);
    }

    #[test]
    fn design_point_objectives_expose_qos_plane() {
        let m = metrics(50.0, 0.97);
        let p = DesignPoint::new(Mapping::new(vec![]), m, PointOrigin::Pareto);
        let o = p.qos_objectives();
        assert_eq!(o[0], 50.0);
        assert!((o[1] - 0.03).abs() < 1e-12);
    }
}
