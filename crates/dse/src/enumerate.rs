//! Exhaustive enumeration of tiny design spaces.
//!
//! For small instances the whole space `X_app = Π_t (M_t × C_t)` (with
//! schedule priorities fixed to topological order) can be enumerated,
//! giving the *exact* Pareto front. This is the ground truth the GA's
//! correctness tests compare against — exhaustive search is obviously
//! infeasible at the paper's scale, which is the whole point of the
//! methodology.

use clr_moea::dominates;
use clr_platform::Platform;
use clr_reliability::{ConfigSpace, FaultModel};
use clr_sched::{Evaluator, Gene, Mapping};
use clr_taskgraph::TaskGraph;

use crate::{DesignPoint, DesignPointDb, ExplorationMode, PointOrigin};

/// Error returned when the space is too large to enumerate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpaceTooLarge {
    /// The estimated number of configurations.
    pub estimated: u128,
    /// The enumeration budget that was exceeded.
    pub budget: u128,
}

impl std::fmt::Display for SpaceTooLarge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "design space has ~{} points, enumeration budget is {}",
            self.estimated, self.budget
        )
    }
}

impl std::error::Error for SpaceTooLarge {}

/// Exhaustively evaluates every `(binding, implementation, CLR config)`
/// combination (priorities fixed to reverse-topological order) and
/// returns the exact Pareto front in the given mode.
///
/// # Errors
///
/// Returns [`SpaceTooLarge`] when the space exceeds `budget` evaluations.
///
/// # Panics
///
/// Panics if some task has no platform-compatible implementation.
///
/// # Examples
///
/// ```
/// use clr_dse::{enumerate_exact, ExplorationMode};
/// use clr_platform::Platform;
/// use clr_reliability::{ConfigSpace, FaultModel};
/// use clr_taskgraph::{TgffConfig, TgffGenerator};
///
/// // A tiny single-type instance so the whole space fits the budget.
/// let cfg = TgffConfig { num_pe_types: 1, accel_fraction: 0.0, ..TgffConfig::with_tasks(3) };
/// let graph = TgffGenerator::new(cfg).generate(1);
/// let platform = Platform::tiny();
/// let exact = enumerate_exact(
///     &graph, &platform, FaultModel::default(),
///     ConfigSpace::hw_only(), ExplorationMode::Csp, 1_000_000,
/// )?;
/// assert!(!exact.is_empty());
/// # Ok::<(), clr_dse::SpaceTooLarge>(())
/// ```
pub fn enumerate_exact(
    graph: &TaskGraph,
    platform: &Platform,
    fault_model: FaultModel,
    config_space: ConfigSpace,
    mode: ExplorationMode,
    budget: u128,
) -> Result<DesignPointDb, SpaceTooLarge> {
    // Per-task option lists: (pe, impl) × clr config.
    let mut options: Vec<Vec<Gene>> = Vec::with_capacity(graph.num_tasks());
    let mut estimated: u128 = 1;
    for t in graph.task_ids() {
        let mut opts = Vec::new();
        for im in graph.implementations(t) {
            for pe in platform.pes() {
                if pe.type_id() != im.pe_type() {
                    continue;
                }
                for cfg in config_space.configs() {
                    opts.push(Gene {
                        pe: pe.id(),
                        impl_id: im.id(),
                        clr: *cfg,
                        priority: (graph.num_tasks() - t.index()) as u32,
                    });
                }
            }
        }
        assert!(
            !opts.is_empty(),
            "task {t} has no platform-compatible implementation"
        );
        estimated = estimated.saturating_mul(opts.len() as u128);
        options.push(opts);
    }
    if estimated > budget {
        return Err(SpaceTooLarge { estimated, budget });
    }

    let evaluator = Evaluator::new(graph, platform, fault_model);
    let n = graph.num_tasks();
    let mut counters = vec![0usize; n];
    let mut front: Vec<(Mapping, Vec<f64>)> = Vec::new();
    loop {
        let genes: Vec<Gene> = counters
            .iter()
            .enumerate()
            .map(|(t, &i)| options[t][i])
            .collect();
        let mapping = Mapping::new(genes);
        if mapping.fits_memory(graph, platform) {
            let metrics = evaluator.evaluate(&mapping);
            let objs = mode.objectives_of(&metrics);
            let dominated = front.iter().any(|(_, o)| dominates(o, &objs) || *o == objs);
            if !dominated {
                front.retain(|(_, o)| !dominates(&objs, o));
                front.push((mapping, objs));
            }
        }
        // Odometer increment.
        let mut t = 0;
        loop {
            if t == n {
                let mut db = DesignPointDb::new("exact");
                for (mapping, _) in front {
                    let metrics = evaluator.evaluate(&mapping);
                    db.push(DesignPoint::new(mapping, metrics, PointOrigin::Pareto));
                }
                return Ok(db);
            }
            counters[t] += 1;
            if counters[t] < options[t].len() {
                break;
            }
            counters[t] = 0;
            t += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{explore_based, DseConfig};
    use clr_moea::{coverage, GaParams};
    use clr_taskgraph::{TgffConfig, TgffGenerator};

    fn tiny_instance() -> (TaskGraph, Platform) {
        let graph = TgffGenerator::new(TgffConfig {
            num_pe_types: 1,
            accel_fraction: 0.0,
            ..TgffConfig::with_tasks(4)
        })
        .generate(7);
        (graph, Platform::tiny())
    }

    #[test]
    fn budget_is_enforced() {
        let (graph, platform) = tiny_instance();
        let err = enumerate_exact(
            &graph,
            &platform,
            FaultModel::default(),
            ConfigSpace::fine(),
            ExplorationMode::Full,
            10,
        )
        .unwrap_err();
        assert!(err.estimated > 10);
        assert!(err.to_string().contains("budget"));
    }

    #[test]
    fn exact_front_is_mutually_non_dominated() {
        let (graph, platform) = tiny_instance();
        let db = enumerate_exact(
            &graph,
            &platform,
            FaultModel::default(),
            ConfigSpace::hw_only(),
            ExplorationMode::Full,
            10_000_000,
        )
        .unwrap();
        assert!(!db.is_empty());
        let objs: Vec<Vec<f64>> = db
            .iter()
            .map(|p| ExplorationMode::Full.objectives_of(&p.metrics))
            .collect();
        for (i, a) in objs.iter().enumerate() {
            for (j, b) in objs.iter().enumerate() {
                assert!(i == j || !clr_moea::dominates(a, b));
            }
        }
    }

    #[test]
    fn ga_recovers_most_of_the_exact_front() {
        let (graph, platform) = tiny_instance();
        let exact = enumerate_exact(
            &graph,
            &platform,
            FaultModel::default(),
            ConfigSpace::hw_only(),
            ExplorationMode::Csp,
            10_000_000,
        )
        .unwrap();
        let cfg = DseConfig {
            ga: GaParams {
                population: 60,
                generations: 40,
                ..GaParams::default()
            },
            mode: ExplorationMode::Csp,
            reference: None,
            max_points: None,
        };
        let ga = explore_based(
            &graph,
            &platform,
            FaultModel::default(),
            ConfigSpace::hw_only(),
            &cfg,
            7,
        );
        let exact_objs: Vec<Vec<f64>> = exact
            .iter()
            .map(|p| ExplorationMode::Csp.objectives_of(&p.metrics))
            .collect();
        let ga_objs: Vec<Vec<f64>> = ga
            .iter()
            .map(|p| ExplorationMode::Csp.objectives_of(&p.metrics))
            .collect();
        // Every exact-front point is matched or dominated-equalled by the
        // GA front for a large majority of the front (the GA also explores
        // schedule priorities, so it may even strictly dominate).
        let covered = coverage(&ga_objs, &exact_objs).unwrap();
        assert!(
            covered >= 0.7,
            "ga covered only {covered:.2} of the exact front"
        );
    }
}
