//! Design/compile-time design-space exploration (paper §4.2).
//!
//! Two exploration stages produce the design-point databases the run-time
//! layer adapts over:
//!
//! 1. [`explore_based`] — the *system-level MOEA*: a hyper-volume-fitness
//!    GA (Eq. 5, Fig. 4a) over CLR-integrated task mappings, returning the
//!    Pareto-front database **BaseD**. This matches the purely
//!    performance-oriented hybrid remapping of Rehman et al.\ (ref.\ 11) that the
//!    paper compares against.
//! 2. [`explore_red`] — the *reconfiguration-cost-aware* stage (§4.2.1,
//!    Fig. 4b): every Pareto point seeds a neighbourhood GA that tolerates
//!    bounded QoS/performance degradation and minimises the average
//!    reconfiguration distance `dRC` to the Pareto set, contributing the
//!    additional non-dominant points of database **ReD**.
//!
//! The problem encoding ([`ClrMappingProblem`]) follows Eq. (4): one gene
//! per task selecting `(PE binding, implementation, CLR configuration,
//! schedule priority)`, i.e. `Ψ_t = M_t × C_t`.
//!
//! # Examples
//!
//! ```
//! use clr_dse::{DseConfig, explore_based};
//! use clr_platform::Platform;
//! use clr_reliability::{ConfigSpace, FaultModel};
//! use clr_taskgraph::{TgffConfig, TgffGenerator};
//! use clr_moea::GaParams;
//!
//! let graph = TgffGenerator::new(TgffConfig::with_tasks(10)).generate(1);
//! let platform = Platform::dac19();
//! let cfg = DseConfig {
//!     ga: GaParams::small(),
//!     ..DseConfig::default()
//! };
//! let db = explore_based(&graph, &platform, FaultModel::default(),
//!                        ConfigSpace::fine(), &cfg, 42);
//! assert!(!db.is_empty());
//! ```

mod based;
mod codec;
mod database;
mod enumerate;
mod index;
mod point;
mod problem;
mod red;

pub use based::{explore_based, explore_based_with};
pub use codec::{point_text, CodecError};
pub use database::DesignPointDb;
pub use enumerate::{enumerate_exact, SpaceTooLarge};
pub use index::FeasibilityIndex;
pub use point::{DesignPoint, PointOrigin, QosSpec};
pub use problem::{ClrMappingProblem, DseConfig, ExplorationMode, ProblemVariant};
pub use red::{explore_red, explore_red_with, RedConfig};
