//! A line-oriented text codec for [`DesignPointDb`] artifacts.
//!
//! The run-time layer consumes databases *persisted* by the design-time
//! stage; this codec defines that on-disk form. The format is plain text
//! so audits (and humans) can diff it, and every floating-point value is
//! rendered with Rust's shortest round-trip formatting so that
//! `from_text(to_text(db)) == db` holds bit-for-bit for finite metrics —
//! exactly the invariant the `clr-verify` round-trip lint checks.
//!
//! ```text
//! clr-design-point-db v1
//! name based
//! points 2
//! point Pareto
//! metrics 104.25 0.99921 1520.0 84.5 1.2e6
//! gene 0 1 none retry:2 checksum 9
//! ...
//! ```

use std::fmt;

use clr_platform::PeId;
use clr_reliability::{AswMethod, ClrConfig, HwMethod, SswMethod};
use clr_sched::{Gene, Mapping, SystemMetrics};
use clr_taskgraph::ImplId;

use crate::{DesignPoint, DesignPointDb, PointOrigin};

/// Magic first line identifying the format and its version.
const HEADER: &str = "clr-design-point-db v1";

/// A parse failure while decoding a persisted database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    /// 1-based line number of the offending line (0 = whole document).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CodecError {}

fn err(line: usize, message: impl Into<String>) -> CodecError {
    CodecError {
        line,
        message: message.into(),
    }
}

fn encode_hw(m: HwMethod) -> &'static str {
    match m {
        HwMethod::None => "none",
        HwMethod::Hardening => "hardening",
        HwMethod::PartialTmr => "partial_tmr",
        HwMethod::FullTmr => "full_tmr",
    }
}

fn decode_hw(s: &str, line: usize) -> Result<HwMethod, CodecError> {
    match s {
        "none" => Ok(HwMethod::None),
        "hardening" => Ok(HwMethod::Hardening),
        "partial_tmr" => Ok(HwMethod::PartialTmr),
        "full_tmr" => Ok(HwMethod::FullTmr),
        other => Err(err(line, format!("unknown hw method {other:?}"))),
    }
}

fn encode_ssw(m: SswMethod) -> String {
    match m {
        SswMethod::None => "none".into(),
        SswMethod::Retry { max_retries } => format!("retry:{max_retries}"),
        SswMethod::Checkpoint { intervals } => format!("checkpoint:{intervals}"),
    }
}

fn decode_ssw(s: &str, line: usize) -> Result<SswMethod, CodecError> {
    if s == "none" {
        return Ok(SswMethod::None);
    }
    let (kind, arg) = s
        .split_once(':')
        .ok_or_else(|| err(line, format!("unknown ssw method {s:?}")))?;
    let n: u8 = arg
        .parse()
        .map_err(|_| err(line, format!("bad ssw parameter {arg:?}")))?;
    match kind {
        "retry" => Ok(SswMethod::Retry { max_retries: n }),
        "checkpoint" => Ok(SswMethod::Checkpoint { intervals: n }),
        other => Err(err(line, format!("unknown ssw method {other:?}"))),
    }
}

fn encode_asw(m: AswMethod) -> &'static str {
    match m {
        AswMethod::None => "none",
        AswMethod::Checksum => "checksum",
        AswMethod::HammingCorrection => "hamming",
        AswMethod::CodeTripling => "tripling",
    }
}

fn decode_asw(s: &str, line: usize) -> Result<AswMethod, CodecError> {
    match s {
        "none" => Ok(AswMethod::None),
        "checksum" => Ok(AswMethod::Checksum),
        "hamming" => Ok(AswMethod::HammingCorrection),
        "tripling" => Ok(AswMethod::CodeTripling),
        other => Err(err(line, format!("unknown asw method {other:?}"))),
    }
}

fn decode_f64(s: &str, line: usize) -> Result<f64, CodecError> {
    s.parse().map_err(|_| err(line, format!("bad float {s:?}")))
}

/// The canonical v1 text block of one stored point — exactly the lines
/// [`DesignPointDb::to_text`] emits for it (trailing newline included).
///
/// This is the unit of content addressing for snapshot lineage: two
/// points with the same text block are the *same* point to the
/// replication layer, and a point's version stamp hashes this block.
pub fn point_text(p: &DesignPoint) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let origin = match p.origin {
        PointOrigin::Pareto => "Pareto",
        PointOrigin::ReconfigAware => "ReconfigAware",
    };
    let _ = writeln!(out, "point {origin}");
    let m = &p.metrics;
    // `{:?}` is Rust's shortest round-trip float form.
    let _ = writeln!(
        out,
        "metrics {:?} {:?} {:?} {:?} {:?}",
        m.makespan, m.reliability, m.energy, m.peak_power, m.mean_mttf
    );
    for g in p.mapping.genes() {
        let _ = writeln!(
            out,
            "gene {} {} {} {} {} {}",
            g.pe.index(),
            g.impl_id.index(),
            encode_hw(g.clr.hw),
            encode_ssw(g.clr.ssw),
            encode_asw(g.clr.asw),
            g.priority
        );
    }
    out
}

impl DesignPointDb {
    /// Serialises the database into the v1 text form.
    ///
    /// # Examples
    ///
    /// ```
    /// use clr_dse::DesignPointDb;
    /// let db = DesignPointDb::new("based");
    /// let text = db.to_text();
    /// assert_eq!(DesignPointDb::from_text(&text).unwrap(), db);
    /// ```
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{HEADER}");
        let _ = writeln!(out, "name {}", self.name());
        let _ = writeln!(out, "points {}", self.len());
        for p in self {
            out.push_str(&point_text(p));
        }
        out
    }

    /// Parses a database from its v1 text form.
    ///
    /// Decoding does **not** re-validate the artifact semantically — that
    /// is `clr-verify`'s job — but it does reject structural damage
    /// (unknown directives, truncated documents, malformed numbers).
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] naming the first offending line.
    pub fn from_text(text: &str) -> Result<DesignPointDb, CodecError> {
        let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l.trim()));
        let (_, header) = lines.next().ok_or_else(|| err(0, "empty document"))?;
        if header != HEADER {
            return Err(err(
                1,
                format!("bad header {header:?}, expected {HEADER:?}"),
            ));
        }
        let (n_line, name_line) = lines.next().ok_or_else(|| err(0, "missing name line"))?;
        let name = name_line
            .strip_prefix("name ")
            .ok_or_else(|| err(n_line, "expected `name <label>`"))?
            .to_string();
        let (c_line, count_line) = lines.next().ok_or_else(|| err(0, "missing points line"))?;
        let count: usize = count_line
            .strip_prefix("points ")
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| err(c_line, "expected `points <count>`"))?;

        let mut points: Vec<DesignPoint> = Vec::with_capacity(count);
        let mut current: Option<(PointOrigin, Option<SystemMetrics>, Vec<Gene>)> = None;
        let flush = |current: &mut Option<(PointOrigin, Option<SystemMetrics>, Vec<Gene>)>,
                     points: &mut Vec<DesignPoint>,
                     line: usize|
         -> Result<(), CodecError> {
            if let Some((origin, metrics, genes)) = current.take() {
                let metrics = metrics.ok_or_else(|| err(line, "point without a metrics line"))?;
                points.push(DesignPoint::new(Mapping::new(genes), metrics, origin));
            }
            Ok(())
        };

        for (ln, line) in lines {
            if line.is_empty() {
                continue;
            }
            if let Some(origin) = line.strip_prefix("point ") {
                flush(&mut current, &mut points, ln)?;
                let origin = match origin {
                    "Pareto" => PointOrigin::Pareto,
                    "ReconfigAware" => PointOrigin::ReconfigAware,
                    other => return Err(err(ln, format!("unknown origin {other:?}"))),
                };
                current = Some((origin, None, Vec::new()));
            } else if let Some(rest) = line.strip_prefix("metrics ") {
                let slot = current
                    .as_mut()
                    .ok_or_else(|| err(ln, "metrics line outside a point"))?;
                let vals: Vec<&str> = rest.split_whitespace().collect();
                if vals.len() != 5 {
                    return Err(err(ln, format!("expected 5 metrics, got {}", vals.len())));
                }
                slot.1 = Some(SystemMetrics {
                    makespan: decode_f64(vals[0], ln)?,
                    reliability: decode_f64(vals[1], ln)?,
                    energy: decode_f64(vals[2], ln)?,
                    peak_power: decode_f64(vals[3], ln)?,
                    mean_mttf: decode_f64(vals[4], ln)?,
                });
            } else if let Some(rest) = line.strip_prefix("gene ") {
                let slot = current
                    .as_mut()
                    .ok_or_else(|| err(ln, "gene line outside a point"))?;
                let vals: Vec<&str> = rest.split_whitespace().collect();
                if vals.len() != 6 {
                    return Err(err(
                        ln,
                        format!("expected 6 gene fields, got {}", vals.len()),
                    ));
                }
                let pe: usize = vals[0]
                    .parse()
                    .map_err(|_| err(ln, format!("bad pe index {:?}", vals[0])))?;
                let impl_id: usize = vals[1]
                    .parse()
                    .map_err(|_| err(ln, format!("bad impl index {:?}", vals[1])))?;
                let priority: u32 = vals[5]
                    .parse()
                    .map_err(|_| err(ln, format!("bad priority {:?}", vals[5])))?;
                slot.2.push(Gene {
                    pe: PeId::new(pe),
                    impl_id: ImplId::new(impl_id),
                    clr: ClrConfig::new(
                        decode_hw(vals[2], ln)?,
                        decode_ssw(vals[3], ln)?,
                        decode_asw(vals[4], ln)?,
                    ),
                    priority,
                });
            } else {
                return Err(err(ln, format!("unknown directive {line:?}")));
            }
        }
        flush(&mut current, &mut points, text.lines().count())?;
        if points.len() != count {
            return Err(err(
                c_line,
                format!("declared {count} points but found {}", points.len()),
            ));
        }
        Ok(DesignPointDb::from_raw_parts(name, points))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QosSpec;

    fn sample_db() -> DesignPointDb {
        let mut db = DesignPointDb::new("based");
        let gene = |pe: usize, hw, ssw, asw, prio| Gene {
            pe: PeId::new(pe),
            impl_id: ImplId::new(0),
            clr: ClrConfig::new(hw, ssw, asw),
            priority: prio,
        };
        db.push(DesignPoint::new(
            Mapping::new(vec![
                gene(0, HwMethod::None, SswMethod::None, AswMethod::None, 3),
                gene(
                    1,
                    HwMethod::FullTmr,
                    SswMethod::Retry { max_retries: 2 },
                    AswMethod::Checksum,
                    2,
                ),
            ]),
            SystemMetrics {
                makespan: 104.25,
                reliability: 0.999_21,
                energy: 1520.0,
                peak_power: 84.5,
                mean_mttf: 1.2e6,
            },
            PointOrigin::Pareto,
        ));
        db.push(DesignPoint::new(
            Mapping::new(vec![gene(
                2,
                HwMethod::Hardening,
                SswMethod::Checkpoint { intervals: 4 },
                AswMethod::HammingCorrection,
                1,
            )]),
            SystemMetrics {
                makespan: 88.125,
                reliability: 0.875,
                energy: 990.5,
                peak_power: 60.0,
                mean_mttf: 3.4e5,
            },
            PointOrigin::ReconfigAware,
        ));
        db
    }

    #[test]
    fn round_trip_is_identity() {
        let db = sample_db();
        let decoded = DesignPointDb::from_text(&db.to_text()).unwrap();
        assert_eq!(decoded, db);
    }

    #[test]
    fn round_trip_preserves_behaviour() {
        let db = sample_db();
        let decoded = DesignPointDb::from_text(&db.to_text()).unwrap();
        let spec = QosSpec::new(100.0, 0.5);
        assert_eq!(decoded.feasible_indices(&spec), db.feasible_indices(&spec));
    }

    #[test]
    fn rejects_bad_header() {
        let e = DesignPointDb::from_text("nonsense v9\n").unwrap_err();
        assert_eq!(e.line, 1);
    }

    #[test]
    fn rejects_count_mismatch() {
        let text = "clr-design-point-db v1\nname t\npoints 2\npoint Pareto\nmetrics 1 1 1 1 1\n";
        let e = DesignPointDb::from_text(text).unwrap_err();
        assert!(e.message.contains("declared 2"), "{e}");
    }

    #[test]
    fn rejects_unknown_directive() {
        let text = "clr-design-point-db v1\nname t\npoints 0\nwat 3\n";
        let e = DesignPointDb::from_text(text).unwrap_err();
        assert_eq!(e.line, 4);
    }

    #[test]
    fn nan_survives_encoding_but_not_equality() {
        // A tampered artifact with a NaN makespan still *parses* — catching
        // it is the metric-range lint's job — but breaks round-trip
        // equality, which is exactly what the round-trip lint reports.
        let mut text = sample_db().to_text();
        text = text.replace("104.25", "NaN");
        let decoded = DesignPointDb::from_text(&text).unwrap();
        assert!(decoded.get(0).unwrap().metrics.makespan.is_nan());
        assert_ne!(decoded, DesignPointDb::from_text(&text).unwrap());
    }
}
