//! Run-time-reconfiguration-cost-aware DSE — **ReD** (paper §4.2.1,
//! Fig. 4b).
//!
//! Rationale: when the QoS requirement moves from `S` to `S'`, adapting
//! between pure Pareto points (`F_Op → F'_Op`) can migrate many tasks.
//! Some *non-dominant* point `F''_Op` may satisfy the new requirement at a
//! far smaller reconfiguration distance from wherever the system currently
//! sits. This stage grows the database with exactly such points: each
//! Pareto point seeds a neighbourhood GA whose extra objective is the
//! average `dRC` to the Pareto set, under a bounded tolerance on the
//! degradation of the seed's own QoS/performance metrics.

use clr_moea::{Evaluation, GaParams, Nsga2, Problem};
use clr_obs::{Event, Obs};
use clr_platform::Platform;
use clr_reliability::{ConfigSpace, FaultModel};
use clr_sched::{reconfiguration_cost, Mapping};
use clr_taskgraph::TaskGraph;
use rand::RngCore;
use serde::{Deserialize, Serialize};

use crate::{ClrMappingProblem, DesignPoint, DesignPointDb, ExplorationMode, PointOrigin};

/// Configuration of the reconfiguration-cost-aware stage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RedConfig {
    /// Tolerated relative degradation of each of the seed point's
    /// objectives (paper: "within some tolerance limit w.r.t. the
    /// degradation of that point's QoS metrics and R(X_i)").
    pub tolerance: f64,
    /// GA parameters of each per-seed neighbourhood search.
    pub ga: GaParams,
    /// At most this many additional points are kept per seed (the lowest
    /// average-`dRC` candidates).
    pub max_extra_per_seed: usize,
    /// Storage constraint on the *whole* ReD database (paper Fig. 3): when
    /// set, the lowest-value extras (highest average `dRC`) are dropped
    /// until BaseD + extras fit the budget. BaseD points are never dropped.
    pub max_total: Option<usize>,
}

impl Default for RedConfig {
    fn default() -> Self {
        Self {
            tolerance: 0.15,
            ga: GaParams {
                population: 40,
                generations: 20,
                ..GaParams::default()
            },
            max_extra_per_seed: 3,
            max_total: None,
        }
    }
}

/// Runs the reconfiguration-cost-aware stage over a BaseD database and
/// returns **ReD**: every BaseD point plus the additional low-`dRC`
/// non-dominant points.
///
/// # Panics
///
/// Panics if `based` is empty (there is nothing to seed from) or its
/// mappings do not fit the graph/platform.
// Mirrors `explore_based`'s parameter list plus the seed database; a
// params struct would just restate the problem definition.
#[allow(clippy::too_many_arguments)]
pub fn explore_red(
    graph: &TaskGraph,
    platform: &Platform,
    fault_model: FaultModel,
    config_space: ConfigSpace,
    mode: ExplorationMode,
    based: &DesignPointDb,
    config: &RedConfig,
    seed: u64,
) -> DesignPointDb {
    explore_red_with(
        graph,
        platform,
        fault_model,
        config_space,
        mode,
        based,
        config,
        seed,
        &Obs::off(),
    )
}

/// [`explore_red`] with journal instrumentation: one `red_seed` event per
/// BaseD seed point (candidates found below the seed's average `dRC`, and
/// how many were actually kept after dedup), emitted in seed order from
/// the serial merge, plus a `dse_stage` summary and aggregated pool
/// statistics for the per-seed fan-out. The inner neighbourhood GAs stay
/// un-instrumented — they run on worker threads. With a disabled handle
/// this is exactly [`explore_red`].
///
/// # Panics
///
/// Panics if `based` is empty (there is nothing to seed from) or its
/// mappings do not fit the graph/platform.
#[allow(clippy::too_many_arguments)]
pub fn explore_red_with(
    graph: &TaskGraph,
    platform: &Platform,
    fault_model: FaultModel,
    config_space: ConfigSpace,
    mode: ExplorationMode,
    based: &DesignPointDb,
    config: &RedConfig,
    seed: u64,
    obs: &Obs,
) -> DesignPointDb {
    assert!(!based.is_empty(), "based database must not be empty");
    let based_mappings: Vec<Mapping> = based.iter().map(|p| p.mapping.clone()).collect();

    let mut db = DesignPointDb::new("red");
    for p in based {
        db.push(p.clone());
    }

    // Per-seed neighbourhood searches are independent: fan them out over
    // the worker pool (`config.ga.threads`, `0` = automatic) and merge the
    // resulting candidate lists serially in seed order, so the database is
    // bit-identical for every thread count. Each inner GA runs serially
    // (threads = 1) — the parallelism budget is spent across seeds.
    let inner_ga = GaParams {
        threads: 1,
        ..config.ga
    };
    let seed_points: Vec<&DesignPoint> = based.iter().collect();
    let (per_seed, pool) =
        clr_par::par_map_stats(config.ga.threads, &seed_points, |i, seed_point| {
            let inner =
                ClrMappingProblem::new(graph, platform, fault_model, config_space.clone(), mode);
            let evaluator = inner.evaluator().clone();
            let seed_objs = inner.objectives(&seed_point.mapping);
            let seed_avg_drc = average_drc(graph, platform, &based_mappings, &seed_point.mapping);
            let problem = RedProblem {
                inner,
                graph,
                platform,
                seed_mapping: seed_point.mapping.clone(),
                seed_objectives: seed_objs,
                based_mappings: &based_mappings,
                tolerance: config.tolerance,
            };
            let front = Nsga2::new(problem, inner_ga).run(seed.wrapping_add(i as u64 * 7919));

            // Keep the candidates that actually beat the seed on average dRC.
            let mut candidates: Vec<(Mapping, f64)> = front
                .into_iter()
                .filter(clr_moea::Individual::is_feasible)
                .map(|ind| {
                    let drc = *ind.objectives.last().expect("red problem appends drc");
                    (ind.solution, drc)
                })
                .filter(|(_, drc)| *drc + 1e-9 < seed_avg_drc)
                .collect();
            candidates.sort_by(|a, b| a.1.total_cmp(&b.1));
            let found = candidates.len();
            let points = candidates
                .into_iter()
                .take(config.max_extra_per_seed)
                .map(|(mapping, _)| {
                    let metrics = evaluator.evaluate(&mapping);
                    DesignPoint::new(mapping, metrics, PointOrigin::ReconfigAware)
                })
                .collect::<Vec<DesignPoint>>();
            (found, points)
        });
    // Serial merge in seed order: the journal events (and the database) are
    // bit-identical for every thread count.
    for (index, (candidates, points)) in per_seed.into_iter().enumerate() {
        let mut kept = 0usize;
        for point in points {
            if db.push_if_new(point) {
                kept += 1;
            }
        }
        if obs.enabled() {
            obs.emit(Event::RedSeed {
                index,
                candidates,
                kept,
            });
        }
    }

    // Honour the total storage constraint: extras are evicted worst (highest
    // average dRC to the Pareto set) first; Pareto points always survive.
    if let Some(cap) = config.max_total {
        while db.len() > cap.max(based.len()) {
            let victim = db
                .iter()
                .enumerate()
                .filter(|(_, p)| p.origin == PointOrigin::ReconfigAware)
                .max_by(|(_, a), (_, b)| {
                    let da = average_drc(graph, platform, &based_mappings, &a.mapping);
                    let dbv = average_drc(graph, platform, &based_mappings, &b.mapping);
                    da.total_cmp(&dbv)
                })
                .map(|(i, _)| i);
            match victim {
                Some(i) => {
                    let mut pruned = DesignPointDb::new(db.name().to_string());
                    for (j, p) in db.iter().enumerate() {
                        if j != i {
                            pruned.push(p.clone());
                        }
                    }
                    db = pruned;
                }
                None => break,
            }
        }
    }
    if obs.enabled() {
        obs.emit_nondet(Event::Pool {
            site: "red.seeds".to_string(),
            items: pool.items,
            workers: pool.workers,
            per_worker: pool.per_worker,
            queue_hwm: pool.queue_hwm,
        });
        obs.emit(Event::DseStage {
            stage: "red".to_string(),
            points: db.len(),
        });
        obs.gauge_set("dse.red.points", db.len() as f64);
    }
    db
}

/// Mean reconfiguration cost of adapting from each stored mapping to `to`.
pub(crate) fn average_drc(
    graph: &TaskGraph,
    platform: &Platform,
    from_set: &[Mapping],
    to: &Mapping,
) -> f64 {
    if from_set.is_empty() {
        return 0.0;
    }
    from_set
        .iter()
        .map(|from| reconfiguration_cost(graph, platform, from, to).total())
        .sum::<f64>()
        / from_set.len() as f64
}

/// The per-seed neighbourhood problem: the inner mapping objectives plus
/// the average `dRC` to the Pareto set, constrained to the tolerance band
/// around the seed point.
struct RedProblem<'a> {
    inner: ClrMappingProblem<'a>,
    graph: &'a TaskGraph,
    platform: &'a Platform,
    seed_mapping: Mapping,
    seed_objectives: Vec<f64>,
    based_mappings: &'a [Mapping],
    tolerance: f64,
}

impl Problem for RedProblem<'_> {
    type Solution = Mapping;

    fn random_solution(&self, rng: &mut dyn RngCore) -> Mapping {
        // Neighbourhood initialisation: a lightly mutated copy of the seed.
        let mut m = self.seed_mapping.clone();
        let hops = (rng.next_u32() % 4) + 1;
        for _ in 0..hops {
            self.inner.mutate(&mut m, rng);
        }
        m
    }

    fn evaluate(&self, mapping: &Mapping) -> Evaluation {
        let inner_eval = self.inner.evaluate(mapping);
        let mut violation = inner_eval.violation;
        // Tolerance band around the seed's objectives.
        for (o, s) in inner_eval.objectives.iter().zip(&self.seed_objectives) {
            let bound = if *s >= 0.0 {
                s * (1.0 + self.tolerance) + 1e-12
            } else {
                s * (1.0 - self.tolerance)
            };
            if *o > bound {
                let scale = s.abs().max(1e-9);
                violation += (o - bound) / scale;
            }
        }
        let drc = average_drc(self.graph, self.platform, self.based_mappings, mapping);
        let mut objectives = inner_eval.objectives;
        objectives.push(drc);
        Evaluation::with_violation(objectives, violation)
    }

    fn crossover(&self, a: &Mapping, b: &Mapping, rng: &mut dyn RngCore) -> Mapping {
        self.inner.crossover(a, b, rng)
    }

    fn mutate(&self, mapping: &mut Mapping, rng: &mut dyn RngCore) {
        self.inner.mutate(mapping, rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{explore_based, DseConfig};
    use clr_taskgraph::{TgffConfig, TgffGenerator};

    fn pipeline(seed: u64) -> (DesignPointDb, DesignPointDb) {
        let graph = TgffGenerator::new(TgffConfig::with_tasks(10)).generate(seed);
        let platform = Platform::dac19();
        let fm = FaultModel::default();
        let dse_cfg = DseConfig {
            ga: GaParams::small(),
            mode: ExplorationMode::Csp,
            reference: None,
            max_points: None,
        };
        let based = explore_based(&graph, &platform, fm, ConfigSpace::fine(), &dse_cfg, seed);
        let red_cfg = RedConfig {
            ga: GaParams::small(),
            ..RedConfig::default()
        };
        let red = explore_red(
            &graph,
            &platform,
            fm,
            ConfigSpace::fine(),
            ExplorationMode::Csp,
            &based,
            &red_cfg,
            seed,
        );
        (based, red)
    }

    #[test]
    fn red_contains_every_based_point() {
        let (based, red) = pipeline(5);
        assert!(red.len() >= based.len());
        for p in &based {
            assert!(
                red.iter().any(|q| q.metrics == p.metrics),
                "based point missing from red"
            );
        }
    }

    #[test]
    fn serial_and_parallel_red_runs_are_bit_identical() {
        let graph = TgffGenerator::new(TgffConfig::with_tasks(8)).generate(3);
        let platform = Platform::dac19();
        let fm = FaultModel::default();
        let dse_cfg = DseConfig {
            ga: GaParams::small(),
            mode: ExplorationMode::Csp,
            reference: None,
            max_points: None,
        };
        let based = explore_based(&graph, &platform, fm, ConfigSpace::fine(), &dse_cfg, 3);
        let run = |threads: usize| {
            let red_cfg = RedConfig {
                ga: GaParams {
                    threads,
                    ..GaParams::small()
                },
                ..RedConfig::default()
            };
            explore_red(
                &graph,
                &platform,
                fm,
                ConfigSpace::fine(),
                ExplorationMode::Csp,
                &based,
                &red_cfg,
                3,
            )
        };
        let serial = run(1);
        let parallel = run(4);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(parallel.iter()) {
            assert_eq!(a.mapping, b.mapping);
            assert_eq!(a.metrics, b.metrics);
            assert_eq!(a.origin, b.origin);
        }
    }

    #[test]
    fn red_extras_are_marked() {
        let (based, red) = pipeline(6);
        let extras = red.count_origin(PointOrigin::ReconfigAware);
        assert_eq!(red.len(), based.len() + extras);
    }

    #[test]
    fn obs_journals_one_red_seed_event_per_based_point() {
        let graph = TgffGenerator::new(TgffConfig::with_tasks(8)).generate(4);
        let platform = Platform::dac19();
        let fm = FaultModel::default();
        let dse_cfg = DseConfig {
            ga: GaParams::small(),
            mode: ExplorationMode::Csp,
            reference: None,
            max_points: None,
        };
        let based = explore_based(&graph, &platform, fm, ConfigSpace::fine(), &dse_cfg, 4);
        let red_cfg = RedConfig {
            ga: GaParams::small(),
            ..RedConfig::default()
        };
        let obs = Obs::new(clr_obs::ObsMode::Json);
        let red = explore_red_with(
            &graph,
            &platform,
            fm,
            ConfigSpace::fine(),
            ExplorationMode::Csp,
            &based,
            &red_cfg,
            4,
            &obs,
        );
        let events = obs.det_events();
        let seeds: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                Event::RedSeed {
                    index,
                    candidates,
                    kept,
                } => Some((*index, *candidates, *kept)),
                _ => None,
            })
            .collect();
        assert_eq!(seeds.len(), based.len());
        // Seed events arrive in seed order and never keep more than found.
        for (i, (index, candidates, kept)) in seeds.iter().enumerate() {
            assert_eq!(*index, i);
            assert!(kept <= candidates);
        }
        let total_kept: usize = seeds.iter().map(|(_, _, k)| k).sum();
        assert_eq!(red.len(), based.len() + total_kept);
        assert!(events.iter().any(|e| matches!(
            e,
            Event::DseStage { stage, points } if stage == "red" && *points == red.len()
        )));
    }

    #[test]
    fn average_drc_of_member_counts_self_as_zero() {
        let graph = TgffGenerator::new(TgffConfig::with_tasks(8)).generate(1);
        let platform = Platform::dac19();
        let m = Mapping::first_fit(&graph, &platform).unwrap();
        let d = average_drc(&graph, &platform, std::slice::from_ref(&m), &m);
        assert_eq!(d, 0.0);
        assert_eq!(average_drc(&graph, &platform, &[], &m), 0.0);
    }
}
