//! The CLR-integrated task-mapping optimisation problem (Eq. 4).

use clr_moea::{Evaluation, GaParams, Problem};
use clr_platform::{PeId, Platform};
use clr_reliability::{ConfigSpace, FaultModel};
use clr_sched::{Evaluator, Gene, Mapping};
use clr_taskgraph::{ImplId, TaskGraph};
use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

/// Which objective set the exploration optimises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum ExplorationMode {
    /// The full problem of Eq. (5): minimise
    /// `(S_app, 1 − F_app, J_app)`.
    #[default]
    Full,
    /// The constraint-satisfaction problem of §5.2 (`R(X_i) = 0`):
    /// minimise `(S_app, 1 − F_app)` only.
    Csp,
    /// The lifetime extension the paper names ("Other metrics such as MTTF
    /// can be added to R(X_i) for optimization of system lifetime"):
    /// minimise `(S_app, 1 − F_app, J_app, 1/MTTF)`.
    Lifetime,
}

impl ExplorationMode {
    /// Number of objectives in this mode.
    pub fn num_objectives(&self) -> usize {
        match self {
            ExplorationMode::Full => 3,
            ExplorationMode::Csp => 2,
            ExplorationMode::Lifetime => 4,
        }
    }

    /// The (minimised) objective vector of a metrics record in this mode.
    pub fn objectives_of(&self, m: &clr_sched::SystemMetrics) -> Vec<f64> {
        match self {
            ExplorationMode::Full => vec![m.makespan, m.error_rate(), m.energy],
            ExplorationMode::Csp => vec![m.makespan, m.error_rate()],
            ExplorationMode::Lifetime => vec![
                m.makespan,
                m.error_rate(),
                m.energy,
                1.0 / m.mean_mttf.max(1e-12),
            ],
        }
    }
}

/// Design-time DSE configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DseConfig {
    /// GA hyper-parameters (paper defaults: crossover 0.7, mutation 0.03,
    /// tournament 5).
    pub ga: GaParams,
    /// Objective set.
    pub mode: ExplorationMode,
    /// Reference point for the hyper-volume fitness (one bound per
    /// objective, same order as the mode's objective vector). `None`
    /// auto-calibrates from random sampling.
    pub reference: Option<Vec<f64>>,
    /// Storage constraint (paper Fig. 3): the embedded target can hold at
    /// most this many design points; larger fronts are pruned by crowding
    /// distance (extreme trade-offs are kept). `None` stores everything.
    pub max_points: Option<usize>,
}

impl Default for DseConfig {
    fn default() -> Self {
        Self {
            ga: GaParams::default(),
            mode: ExplorationMode::Full,
            reference: None,
            max_points: None,
        }
    }
}

/// Which decision variables the exploration may vary — the three `Ψt`
/// cases of Eq. (4).
#[derive(Debug, Clone, Default)]
pub enum ProblemVariant {
    /// `Ψt = Mt × Ct`: bindings, implementations, schedule positions *and*
    /// CLR configurations (the paper's main case).
    #[default]
    Integrated,
    /// `Ψt = Mt`: task-mapping only; every task keeps `ClrConfig::NONE`.
    MappingOnly,
    /// `Ψt = Ct`: CLR-implementation only; bindings/implementations/
    /// priorities stay fixed to the given base mapping.
    ClrOnly {
        /// The frozen task mapping whose CLR axis is explored.
        base: Mapping,
    },
}

/// [`Problem`] implementation over [`Mapping`] genotypes.
///
/// Genes mutate within the pre-computed per-task compatibility lists
/// (`(PE, implementation)` pairs whose PE types match), so every generated
/// mapping is structurally valid; the memory-capacity constraint is
/// reported as the evaluation's violation.
#[derive(Debug, Clone)]
pub struct ClrMappingProblem<'a> {
    evaluator: Evaluator<'a>,
    config_space: ConfigSpace,
    mode: ExplorationMode,
    variant: ProblemVariant,
    /// Per task: all `(pe, impl)` pairs with matching PE types.
    compat: Vec<Vec<(PeId, ImplId)>>,
}

impl<'a> ClrMappingProblem<'a> {
    /// Creates the problem.
    ///
    /// # Panics
    ///
    /// Panics if some task has no implementation compatible with any PE of
    /// the platform (the application cannot run at all) or the CLR
    /// configuration space is empty.
    pub fn new(
        graph: &'a TaskGraph,
        platform: &'a Platform,
        fault_model: FaultModel,
        config_space: ConfigSpace,
        mode: ExplorationMode,
    ) -> Self {
        assert!(!config_space.is_empty(), "config space must not be empty");
        let mut compat = Vec::with_capacity(graph.num_tasks());
        for t in graph.task_ids() {
            let mut options = Vec::new();
            for im in graph.implementations(t) {
                for pe in platform.pes() {
                    if pe.type_id() == im.pe_type() {
                        options.push((pe.id(), im.id()));
                    }
                }
            }
            assert!(
                !options.is_empty(),
                "task {t} has no platform-compatible implementation"
            );
            compat.push(options);
        }
        Self {
            evaluator: Evaluator::new(graph, platform, fault_model),
            config_space,
            mode,
            variant: ProblemVariant::Integrated,
            compat,
        }
    }

    /// Restricts the explored decision variables to one of Eq. (4)'s `Ψt`
    /// cases.
    ///
    /// # Panics
    ///
    /// Panics if a `ClrOnly` base mapping does not match the graph's task
    /// count.
    pub fn with_variant(mut self, variant: ProblemVariant) -> Self {
        if let ProblemVariant::ClrOnly { base } = &variant {
            assert_eq!(
                base.len(),
                self.compat.len(),
                "clr-only base mapping must cover every task"
            );
        }
        self.variant = variant;
        self
    }

    /// The active problem variant.
    pub fn variant(&self) -> &ProblemVariant {
        &self.variant
    }

    /// The bound evaluator.
    pub fn evaluator(&self) -> &Evaluator<'a> {
        &self.evaluator
    }

    /// The CLR configuration space in use.
    pub fn config_space(&self) -> &ConfigSpace {
        &self.config_space
    }

    /// The exploration mode.
    pub fn mode(&self) -> ExplorationMode {
        self.mode
    }

    /// The objective vector of a mapping under the current mode.
    pub fn objectives(&self, mapping: &Mapping) -> Vec<f64> {
        let m = self.evaluator.evaluate(mapping);
        self.mode.objectives_of(&m)
    }

    /// Memory-capacity violation: summed fractional overflow over PEs.
    fn memory_violation(&self, mapping: &Mapping) -> f64 {
        let graph = self.evaluator.graph();
        let platform = self.evaluator.platform();
        mapping
            .memory_footprint(graph, platform)
            .iter()
            .zip(platform.pes())
            .map(|(&used, pe)| {
                let cap = pe.local_memory_kib() as f64;
                ((used as f64 - cap) / cap).max(0.0)
            })
            .sum()
    }

    fn random_clr(&self, rng: &mut dyn RngCore) -> clr_reliability::ClrConfig {
        *self
            .config_space
            .get(rng.gen_range(0..self.config_space.len()))
            .expect("index in range")
    }

    fn random_gene(&self, task: usize, rng: &mut dyn RngCore) -> Gene {
        match &self.variant {
            ProblemVariant::Integrated => {
                let options = &self.compat[task];
                let (pe, impl_id) = options[rng.gen_range(0..options.len())];
                Gene {
                    pe,
                    impl_id,
                    clr: self.random_clr(rng),
                    priority: rng.gen_range(0..1024),
                }
            }
            ProblemVariant::MappingOnly => {
                let options = &self.compat[task];
                let (pe, impl_id) = options[rng.gen_range(0..options.len())];
                Gene {
                    pe,
                    impl_id,
                    clr: clr_reliability::ClrConfig::NONE,
                    priority: rng.gen_range(0..1024),
                }
            }
            ProblemVariant::ClrOnly { base } => {
                let mut gene = *base.gene(clr_taskgraph::TaskId::new(task));
                gene.clr = self.random_clr(rng);
                gene
            }
        }
    }
}

impl Problem for ClrMappingProblem<'_> {
    type Solution = Mapping;

    fn random_solution(&self, rng: &mut dyn RngCore) -> Mapping {
        let genes = (0..self.compat.len())
            .map(|t| self.random_gene(t, rng))
            .collect();
        Mapping::new(genes)
    }

    fn evaluate(&self, mapping: &Mapping) -> Evaluation {
        let m = self.evaluator.evaluate(mapping);
        let objectives = self.mode.objectives_of(&m);
        Evaluation::with_violation(objectives, self.memory_violation(mapping))
    }

    fn crossover(&self, a: &Mapping, b: &Mapping, rng: &mut dyn RngCore) -> Mapping {
        // Uniform per-gene crossover.
        let genes = a
            .genes()
            .iter()
            .zip(b.genes())
            .map(|(ga, gb)| if rng.gen_bool(0.5) { *ga } else { *gb })
            .collect();
        Mapping::new(genes)
    }

    fn mutate(&self, mapping: &mut Mapping, rng: &mut dyn RngCore) {
        // Perturb one to three random genes; the perturbations available
        // depend on the Eq.-4 variant.
        let n = mapping.len();
        if n == 0 {
            return;
        }
        let count = rng.gen_range(1..=3usize.min(n));
        for _ in 0..count {
            let t = rng.gen_range(0..n);
            let action = match self.variant {
                ProblemVariant::Integrated => rng.gen_range(0..3),
                ProblemVariant::MappingOnly => [0usize, 2][rng.gen_range(0..2)],
                ProblemVariant::ClrOnly { .. } => 1,
            };
            match action {
                0 => {
                    let options = &self.compat[t];
                    let (pe, impl_id) = options[rng.gen_range(0..options.len())];
                    mapping.genes_mut()[t].pe = pe;
                    mapping.genes_mut()[t].impl_id = impl_id;
                }
                1 => {
                    mapping.genes_mut()[t].clr = self.random_clr(rng);
                }
                _ => {
                    mapping.genes_mut()[t].priority = rng.gen_range(0..1024);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clr_taskgraph::{jpeg_encoder, TgffConfig, TgffGenerator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn problem<'a>(
        graph: &'a TaskGraph,
        platform: &'a Platform,
        mode: ExplorationMode,
    ) -> ClrMappingProblem<'a> {
        ClrMappingProblem::new(
            graph,
            platform,
            FaultModel::default(),
            ConfigSpace::fine(),
            mode,
        )
    }

    #[test]
    fn random_solutions_are_always_valid() {
        let g = jpeg_encoder();
        let p = Platform::dac19();
        let prob = problem(&g, &p, ExplorationMode::Full);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let m = prob.random_solution(&mut rng);
            assert!(m.validate(&g, &p).is_ok());
        }
    }

    #[test]
    fn crossover_and_mutation_preserve_validity() {
        let g = TgffGenerator::new(TgffConfig::with_tasks(20)).generate(3);
        let p = Platform::dac19();
        let prob = problem(&g, &p, ExplorationMode::Full);
        let mut rng = StdRng::seed_from_u64(2);
        let a = prob.random_solution(&mut rng);
        let b = prob.random_solution(&mut rng);
        let mut child = prob.crossover(&a, &b, &mut rng);
        for _ in 0..20 {
            prob.mutate(&mut child, &mut rng);
        }
        assert!(child.validate(&g, &p).is_ok());
    }

    #[test]
    fn csp_mode_has_two_objectives() {
        let g = jpeg_encoder();
        let p = Platform::dac19();
        let prob = problem(&g, &p, ExplorationMode::Csp);
        let mut rng = StdRng::seed_from_u64(3);
        let m = prob.random_solution(&mut rng);
        let e = prob.evaluate(&m);
        assert_eq!(e.objectives.len(), 2);
        assert_eq!(ExplorationMode::Csp.num_objectives(), 2);
        assert_eq!(ExplorationMode::Full.num_objectives(), 3);
    }

    #[test]
    fn evaluation_matches_objectives_helper() {
        let g = jpeg_encoder();
        let p = Platform::dac19();
        let prob = problem(&g, &p, ExplorationMode::Full);
        let mut rng = StdRng::seed_from_u64(4);
        let m = prob.random_solution(&mut rng);
        assert_eq!(prob.evaluate(&m).objectives, prob.objectives(&m));
    }

    #[test]
    fn mapping_only_variant_keeps_clr_none() {
        let g = jpeg_encoder();
        let p = Platform::dac19();
        let prob = problem(&g, &p, ExplorationMode::Full).with_variant(ProblemVariant::MappingOnly);
        let mut rng = StdRng::seed_from_u64(5);
        let mut m = prob.random_solution(&mut rng);
        for _ in 0..30 {
            prob.mutate(&mut m, &mut rng);
        }
        assert!(m.genes().iter().all(|gene| gene.clr.is_none()));
        assert!(m.validate(&g, &p).is_ok());
    }

    #[test]
    fn clr_only_variant_freezes_the_mapping() {
        let g = jpeg_encoder();
        let p = Platform::dac19();
        let base = clr_sched::Mapping::first_fit(&g, &p).unwrap();
        let prob = problem(&g, &p, ExplorationMode::Full)
            .with_variant(ProblemVariant::ClrOnly { base: base.clone() });
        let mut rng = StdRng::seed_from_u64(6);
        let mut m = prob.random_solution(&mut rng);
        for _ in 0..30 {
            prob.mutate(&mut m, &mut rng);
        }
        for (gene, frozen) in m.genes().iter().zip(base.genes()) {
            assert_eq!(gene.pe, frozen.pe);
            assert_eq!(gene.impl_id, frozen.impl_id);
            assert_eq!(gene.priority, frozen.priority);
        }
        // ... while the CLR axis actually moved for at least one task.
        assert!(m.genes().iter().any(|gene| !gene.clr.is_none()));
    }

    #[test]
    #[should_panic(expected = "base mapping must cover")]
    fn clr_only_variant_rejects_wrong_length() {
        let g = jpeg_encoder();
        let p = Platform::dac19();
        let _ = problem(&g, &p, ExplorationMode::Full).with_variant(ProblemVariant::ClrOnly {
            base: Mapping::new(vec![]),
        });
    }

    #[test]
    #[should_panic(expected = "config space")]
    fn empty_config_space_is_rejected() {
        let g = jpeg_encoder();
        let p = Platform::dac19();
        let empty = ConfigSpace::product("empty", &[], &[], &[]);
        let _ = ClrMappingProblem::new(&g, &p, FaultModel::default(), empty, ExplorationMode::Full);
    }
}
