//! The system-level MOEA producing the BaseD database (paper Eq. 5).

use clr_moea::{HvGa, Nsga2, Problem};
use clr_obs::{Event, Obs};
use clr_platform::Platform;
use clr_reliability::{ConfigSpace, FaultModel};
use clr_taskgraph::TaskGraph;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{ClrMappingProblem, DesignPoint, DesignPointDb, DseConfig, PointOrigin};

/// Runs the design-time system-level MOEA and returns the Pareto-front
/// database **BaseD**: the purely performance-oriented stored design points
/// against which the reconfiguration-cost-aware stage is compared.
///
/// If the configuration supplies no hyper-volume reference point, one is
/// auto-calibrated as 1.05× the per-objective maxima of a random sample,
/// so the whole reachable region is initially rewarded.
///
/// # Panics
///
/// Panics if the application cannot be mapped on the platform at all, or a
/// supplied reference point's dimension disagrees with the mode.
///
/// # Examples
///
/// See the [crate-level example](crate).
pub fn explore_based(
    graph: &TaskGraph,
    platform: &Platform,
    fault_model: FaultModel,
    config_space: ConfigSpace,
    config: &DseConfig,
    seed: u64,
) -> DesignPointDb {
    explore_based_with(
        graph,
        platform,
        fault_model,
        config_space,
        config,
        seed,
        &Obs::off(),
    )
}

/// [`explore_based`] with journal instrumentation: the hyper-volume GA
/// attempts record per-generation `ga_gen` events (labelled
/// `based-hv-<attempt>`), the NSGA-II enrichment pass records under
/// `based-nsga2`, and a `dse_stage` event reports the final database size.
/// With a disabled handle this is exactly [`explore_based`].
///
/// # Panics
///
/// Panics if the application cannot be mapped on the platform at all, or a
/// supplied reference point's dimension disagrees with the mode.
pub fn explore_based_with(
    graph: &TaskGraph,
    platform: &Platform,
    fault_model: FaultModel,
    config_space: ConfigSpace,
    config: &DseConfig,
    seed: u64,
    obs: &Obs,
) -> DesignPointDb {
    let problem = ClrMappingProblem::new(graph, platform, fault_model, config_space, config.mode);
    let reference = match &config.reference {
        Some(r) => {
            assert_eq!(
                r.len(),
                config.mode.num_objectives(),
                "reference dimension must match exploration mode"
            );
            r.clone()
        }
        None => calibrate_reference(&problem, seed),
    };

    let evaluator = problem.evaluator().clone();

    // A too-tight reference (or a heavily constrained platform) can leave
    // the archive empty; relax the reference geometrically rather than
    // returning an unusable database.
    let mut reference = reference;
    let mut db = DesignPointDb::new("based");
    for attempt in 0..4 {
        let hv = HvGa::new(problem.clone(), config.ga, reference.clone())
            .with_obs(obs.clone(), format!("based-hv-{attempt}"));
        let archive = hv.run(seed.wrapping_add(attempt));
        for (mapping, _objectives) in archive.into_entries() {
            let metrics = evaluator.evaluate(&mapping);
            db.push_if_new(DesignPoint::new(mapping, metrics, PointOrigin::Pareto));
        }
        if !db.is_empty() {
            break;
        }
        for r in &mut reference {
            *r *= 2.0;
        }
    }

    // Enrich the front with an NSGA-II pass (the paper's DEAP/PYGMO GAs):
    // the hyper-volume fitness concentrates around the knee, while
    // NSGA-II's crowding pressure spreads along the whole front — the
    // union gives the run-time layer more adaptation choices.
    let nsga = Nsga2::new(problem, config.ga).with_obs(obs.clone(), "based-nsga2");
    for ind in nsga.run(seed ^ 0x4e53_4741_0000_0002) {
        if !ind.is_feasible() {
            continue;
        }
        let inside = ind.objectives.iter().zip(&reference).all(|(o, r)| o <= r);
        if !inside {
            continue;
        }
        let metrics = evaluator.evaluate(&ind.solution);
        db.push_if_new(DesignPoint::new(ind.solution, metrics, PointOrigin::Pareto));
    }

    // Keep only the mutually non-dominated subset of the merged fronts.
    prune_dominated(&mut db, config.mode);

    // Honour the storage constraint (paper Fig. 3): crowding-prune down to
    // the budgeted number of points, preserving the extremes.
    if let Some(cap) = config.max_points {
        enforce_storage(&mut db, config.mode, cap);
    }
    if obs.enabled() {
        obs.emit(Event::DseStage {
            stage: "based".to_string(),
            points: db.len(),
        });
        obs.gauge_set("dse.based.points", db.len() as f64);
    }
    db
}

/// Crowding-based pruning to at most `cap` points.
fn enforce_storage(db: &mut DesignPointDb, mode: crate::ExplorationMode, cap: usize) {
    use clr_moea::ParetoArchive;
    if db.len() <= cap || cap == 0 {
        return;
    }
    let mut archive = ParetoArchive::bounded(cap);
    for p in db.iter() {
        archive.insert(p.clone(), mode.objectives_of(&p.metrics));
    }
    let mut pruned = DesignPointDb::new(db.name().to_string());
    for (p, _) in archive.into_entries() {
        pruned.push(p);
    }
    *db = pruned;
}

/// Drops points dominated in the mode's objective space.
fn prune_dominated(db: &mut DesignPointDb, mode: crate::ExplorationMode) {
    use clr_moea::dominates;
    let objs: Vec<Vec<f64>> = db.iter().map(|p| mode.objectives_of(&p.metrics)).collect();
    let keep: Vec<bool> = (0..objs.len())
        .map(|i| {
            !objs
                .iter()
                .enumerate()
                .any(|(j, o)| j != i && dominates(o, &objs[i]))
        })
        .collect();
    let mut pruned = DesignPointDb::new(db.name().to_string());
    for (i, p) in db.iter().enumerate() {
        if keep[i] {
            pruned.push(p.clone());
        }
    }
    *db = pruned;
}

/// Reference-point auto-calibration: 1.05× the objective maxima over a
/// 32-solution random sample.
fn calibrate_reference(problem: &ClrMappingProblem<'_>, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xca11_b8a7_e000_0000);
    let mut maxima = vec![f64::NEG_INFINITY; problem.mode().num_objectives()];
    for _ in 0..32 {
        let s = problem.random_solution(&mut rng);
        for (m, o) in maxima.iter_mut().zip(problem.objectives(&s)) {
            if o > *m {
                *m = o;
            }
        }
    }
    maxima
        .into_iter()
        .map(|m| if m > 0.0 { m * 1.05 } else { 1e-6 })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExplorationMode;
    use clr_moea::{dominates, GaParams};
    use clr_taskgraph::{TgffConfig, TgffGenerator};

    fn run(mode: ExplorationMode, seed: u64) -> DesignPointDb {
        let graph = TgffGenerator::new(TgffConfig::with_tasks(12)).generate(seed);
        let platform = Platform::dac19();
        let cfg = DseConfig {
            ga: GaParams::small(),
            mode,
            reference: None,
            max_points: None,
        };
        explore_based(
            &graph,
            &platform,
            FaultModel::default(),
            ConfigSpace::fine(),
            &cfg,
            seed,
        )
    }

    #[test]
    fn based_produces_nonempty_front() {
        let db = run(ExplorationMode::Full, 1);
        assert!(!db.is_empty());
        assert_eq!(db.count_origin(PointOrigin::Pareto), db.len());
    }

    #[test]
    fn based_points_are_mutually_non_dominated_in_full_space() {
        let db = run(ExplorationMode::Full, 2);
        let objs: Vec<Vec<f64>> = db
            .iter()
            .map(|p| vec![p.metrics.makespan, p.metrics.error_rate(), p.metrics.energy])
            .collect();
        for (i, a) in objs.iter().enumerate() {
            for (j, b) in objs.iter().enumerate() {
                assert!(i == j || !dominates(a, b), "{a:?} dominates {b:?}");
            }
        }
    }

    #[test]
    fn csp_mode_spans_the_qos_plane() {
        let db = run(ExplorationMode::Csp, 3);
        assert!(!db.is_empty());
        // The QoS Pareto front of a CSP run is the whole database.
        assert_eq!(db.qos_pareto_indices().len(), db.len());
    }

    #[test]
    fn lifetime_mode_adds_mttf_objective() {
        let db = run(ExplorationMode::Lifetime, 9);
        assert!(!db.is_empty());
        // The lifetime front may keep points that the 3-objective front
        // would drop: verify the objective vector has 4 entries and the
        // mttf term is finite and positive.
        for p in &db {
            let o = ExplorationMode::Lifetime.objectives_of(&p.metrics);
            assert_eq!(o.len(), 4);
            assert!(o[3] > 0.0 && o[3].is_finite());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run(ExplorationMode::Full, 7);
        let b = run(ExplorationMode::Full, 7);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.metrics, y.metrics);
        }
    }
}
