//! Indexed feasibility queries over a stored design-point database.
//!
//! Algorithm 1's `FEAS` set is a conjunction of two half-plane tests —
//! `makespan ≤ S_SPEC` and `reliability ≥ F_SPEC` — which the naive
//! implementation answers with an O(n) scan per QoS event. At serving
//! scale (many tenants × heavy event traffic, see `clr-serve`) the scan
//! dominates the decision latency, so [`FeasibilityIndex`] precomputes a
//! segment tree over the *original point order* whose nodes carry the
//! min/max of both constraint metrics. A query walks the tree:
//!
//! - a subtree whose minimum makespan exceeds `S_SPEC` or whose maximum
//!   reliability misses `F_SPEC` is **rejected whole** (no point in it
//!   can be feasible),
//! - a subtree whose maximum makespan and minimum reliability both clear
//!   the spec is **accepted whole** — its points are the consecutive
//!   index range `lo..hi`, appended without touching a single metric,
//! - only mixed subtrees recurse, down to leaves of [`BLOCK`] points
//!   that are settled by an exact scan over the index's *packed*
//!   `(makespan, reliability)` array.
//!
//! Because leaves are visited left to right, results come out in
//! ascending index order with no final sort. Tight specs reject near the
//! root and lax specs accept near the root (O(log(n/B)) node visits plus
//! one bulk range append); a fully mixed query degenerates to the packed
//! scan — still several times cheaper than [`DesignPointDb::feasible_indices`],
//! which strides over whole `DesignPoint` structs (mapping vector,
//! five metrics, origin) to read two floats each.
//!
//! The index returns **exactly** the same index set as
//! [`DesignPointDb::feasible_indices`], in the same ascending order —
//! a property-tested invariant (and the `clr-verify` CLR062 snapshot
//! lint re-checks it on a sampled spec grid for published artifacts).
//! Non-finite metrics in tampered artifacts are handled by keying NaN
//! into the aggregates so a NaN-carrying subtree can never be accepted
//! whole, and the exact leaf re-check settles the rest.

use crate::{DesignPointDb, QosSpec};

/// Points per segment-tree leaf. Mixed leaves are settled by a packed
/// sequential scan, so the tree only needs enough resolution to prune
/// *regions*; a coarse leaf keeps the node count (and the branchy
/// recursion) 64× smaller than a point-per-leaf tree.
const BLOCK: usize = 64;

/// Per-node metric aggregates. The rejection pair (`mk_min`, `rel_max`)
/// keys NaN to the identity (`+∞` / `−∞`): a NaN metric never admits, so
/// it must never *prevent* rejecting its subtree. The acceptance pair
/// (`mk_max`, `rel_min`) propagates NaN as a poison value: any NaN in
/// the subtree makes the acceptance comparison false, forcing descent to
/// the exact leaf checks.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Node {
    /// Minimum makespan in the subtree (NaN → `+∞`).
    mk_min: f64,
    /// Maximum makespan in the subtree (NaN-poisoned).
    mk_max: f64,
    /// Minimum reliability in the subtree (NaN-poisoned).
    rel_min: f64,
    /// Maximum reliability in the subtree (NaN → `−∞`).
    rel_max: f64,
}

/// Identity element: rejected-whole by any spec, never blocks an
/// acceptance — used to pad the tree to a power of two.
const EMPTY: Node = Node {
    mk_min: f64::INFINITY,
    mk_max: f64::NEG_INFINITY,
    rel_min: f64::INFINITY,
    rel_max: f64::NEG_INFINITY,
};

impl Node {
    fn leaf(makespan: f64, reliability: f64) -> Self {
        Node {
            mk_min: if makespan.is_nan() {
                f64::INFINITY
            } else {
                makespan
            },
            mk_max: makespan,
            rel_min: reliability,
            rel_max: if reliability.is_nan() {
                f64::NEG_INFINITY
            } else {
                reliability
            },
        }
    }

    fn merge(a: Node, b: Node) -> Self {
        // f64::min/max would *drop* NaN; the acceptance pair must keep it.
        let poison_max = |x: f64, y: f64| {
            if x.is_nan() || y.is_nan() {
                f64::NAN
            } else {
                x.max(y)
            }
        };
        let poison_min = |x: f64, y: f64| {
            if x.is_nan() || y.is_nan() {
                f64::NAN
            } else {
                x.min(y)
            }
        };
        Node {
            mk_min: a.mk_min.min(b.mk_min),
            mk_max: poison_max(a.mk_max, b.mk_max),
            rel_min: poison_min(a.rel_min, b.rel_min),
            rel_max: a.rel_max.max(b.rel_max),
        }
    }
}

/// A static index over a database's QoS-constraint dimensions
/// (makespan, reliability) answering `feasible(spec)` with whole-subtree
/// accept/reject instead of a per-point scan.
///
/// The index stores its own copy of the two constraint metrics, so it
/// does not borrow the database; it is invalidated by database mutation
/// and must be rebuilt (stored databases are immutable after
/// exploration, so in practice it is built once per artifact).
///
/// # Examples
///
/// ```
/// use clr_dse::{DesignPointDb, FeasibilityIndex, QosSpec};
/// let db = DesignPointDb::new("based");
/// let index = FeasibilityIndex::new(&db);
/// assert!(index.query(&QosSpec::new(1e9, 0.0)).is_empty());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FeasibilityIndex {
    /// Packed `(makespan, reliability)` per point for leaf scans.
    exact: Vec<(f64, f64)>,
    /// Segment tree in 1-based heap layout over [`BLOCK`]-point leaves.
    tree: Vec<Node>,
    /// First leaf slot in `tree` (a power of two, 0 for an empty index).
    leaf_base: usize,
}

impl FeasibilityIndex {
    /// Builds the index for the database's current contents.
    pub fn new(db: &DesignPointDb) -> Self {
        let n = db.len();
        let exact: Vec<(f64, f64)> = db
            .points()
            .iter()
            .map(|p| (p.metrics.makespan, p.metrics.reliability))
            .collect();
        if n == 0 {
            return Self {
                exact,
                tree: Vec::new(),
                leaf_base: 0,
            };
        }
        let leaf_base = n.div_ceil(BLOCK).next_power_of_two();
        let mut tree = vec![EMPTY; 2 * leaf_base];
        for (block, chunk) in exact.chunks(BLOCK).enumerate() {
            tree[leaf_base + block] = chunk
                .iter()
                .fold(EMPTY, |acc, &(m, r)| Node::merge(acc, Node::leaf(m, r)));
        }
        for node in (1..leaf_base).rev() {
            tree[node] = Node::merge(tree[2 * node], tree[2 * node + 1]);
        }
        Self {
            exact,
            tree,
            leaf_base,
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.exact.len()
    }

    /// `true` when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.exact.is_empty()
    }

    /// Indices of points satisfying `spec`, ascending — identical to
    /// [`DesignPointDb::feasible_indices`] on the indexed database.
    pub fn query(&self, spec: &QosSpec) -> Vec<usize> {
        let mut out = Vec::new();
        self.query_into(spec, &mut out);
        out
    }

    /// [`query`](Self::query) into a caller-owned buffer (cleared first),
    /// so steady-state serving reuses one allocation per event stream.
    pub fn query_into(&self, spec: &QosSpec, out: &mut Vec<usize>) {
        out.clear();
        if self.exact.is_empty() {
            return;
        }
        // A NaN bound admits nothing (`m ≤ NaN` and `r ≥ NaN` are false).
        if spec.max_makespan.is_nan() || spec.min_reliability.is_nan() {
            return;
        }
        self.report(1, 0, self.leaf_base, spec, out);
    }

    /// Reports every feasible index in the subtree covering blocks
    /// `[lo, hi)`, left to right.
    fn report(&self, node: usize, lo: usize, hi: usize, spec: &QosSpec, out: &mut Vec<usize>) {
        let n = self.exact.len();
        let point_lo = lo * BLOCK;
        if point_lo >= n {
            return; // pure padding
        }
        let point_hi = (hi * BLOCK).min(n);
        let agg = &self.tree[node];
        if agg.mk_min > spec.max_makespan || agg.rel_max < spec.min_reliability {
            return; // no point in this subtree can be feasible
        }
        if agg.mk_max <= spec.max_makespan && agg.rel_min >= spec.min_reliability {
            out.extend(point_lo..point_hi); // every point in range is feasible
            return;
        }
        if hi - lo == 1 {
            // Mixed leaf: settle it with a packed, branchless scan —
            // write the index unconditionally, advance the cursor only
            // when feasible. Feasibility is data-dependent (the branchy
            // equivalent mispredicts heavily on interleaved verdicts),
            // so this is where the index out-runs the struct-striding
            // linear scan even when the tree cannot prune.
            let mut buf = [0usize; BLOCK];
            let mut written = 0;
            for (offset, &(makespan, rel)) in self.exact[point_lo..point_hi].iter().enumerate() {
                buf[written] = point_lo + offset;
                let feasible = (makespan <= spec.max_makespan) & (rel >= spec.min_reliability);
                written += feasible as usize;
            }
            out.extend_from_slice(&buf[..written]);
            return;
        }
        let mid = lo + (hi - lo) / 2;
        self.report(2 * node, lo, mid, spec, out);
        self.report(2 * node + 1, mid, hi, spec, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DesignPoint, PointOrigin};
    use clr_sched::{Mapping, SystemMetrics};
    use proptest::prelude::*;

    fn db_from(points: &[(f64, f64)]) -> DesignPointDb {
        let mut db = DesignPointDb::new("t");
        for &(makespan, reliability) in points {
            db.push(DesignPoint::new(
                Mapping::new(vec![]),
                SystemMetrics {
                    makespan,
                    reliability,
                    energy: 1.0,
                    peak_power: 1.0,
                    mean_mttf: 1.0,
                },
                PointOrigin::Pareto,
            ));
        }
        db
    }

    #[test]
    fn empty_database_yields_empty_results() {
        let db = DesignPointDb::new("t");
        let index = FeasibilityIndex::new(&db);
        assert!(index.is_empty());
        assert_eq!(index.len(), 0);
        assert!(index.query(&QosSpec::new(f64::INFINITY, 0.0)).is_empty());
    }

    #[test]
    fn matches_linear_scan_on_handmade_cases() {
        let db = db_from(&[(10.0, 0.99), (50.0, 0.80), (20.0, 0.95), (20.0, 0.10)]);
        let index = FeasibilityIndex::new(&db);
        for spec in [
            QosSpec::new(f64::INFINITY, 0.0),
            QosSpec::new(0.0, 1.0),
            QosSpec::new(20.0, 0.9),
            QosSpec::new(20.0, 0.0),
            QosSpec::new(10.0, 0.99),
            QosSpec::new(9.999, 0.99),
        ] {
            assert_eq!(index.query(&spec), db.feasible_indices(&spec), "{spec:?}");
        }
    }

    #[test]
    fn boundary_values_are_admitted_like_the_scan() {
        let db = db_from(&[(100.0, 0.9)]);
        let index = FeasibilityIndex::new(&db);
        assert_eq!(index.query(&QosSpec::new(100.0, 0.9)), vec![0]);
        assert!(index.query(&QosSpec::new(99.999_999, 0.9)).is_empty());
        assert!(index.query(&QosSpec::new(100.0, 0.900_001)).is_empty());
    }

    #[test]
    fn infinite_and_nan_metrics_never_break_agreement() {
        // Tampered artifacts can carry non-finite metrics (the codec
        // faithfully reconstructs them; flagging is CLR034's job). The
        // index must still agree with the scan. `push` debug-asserts
        // sanity, so decode the hostile points through the codec.
        let text = "clr-design-point-db v1\nname t\npoints 4\n\
                    point Pareto\nmetrics NaN 0.9 1.0 1.0 1.0\n\
                    point Pareto\nmetrics inf 0.9 1.0 1.0 1.0\n\
                    point Pareto\nmetrics 10.0 NaN 1.0 1.0 1.0\n\
                    point Pareto\nmetrics 10.0 0.5 1.0 1.0 1.0\n";
        let db = DesignPointDb::from_text(text).unwrap();
        let index = FeasibilityIndex::new(&db);
        for spec in [
            QosSpec::new(f64::INFINITY, 0.0),
            QosSpec::new(f64::INFINITY, f64::NEG_INFINITY),
            QosSpec::new(10.0, 0.5),
            QosSpec::new(f64::NAN, 0.5),
            QosSpec::new(10.0, f64::NAN),
        ] {
            assert_eq!(index.query(&spec), db.feasible_indices(&spec), "{spec:?}");
        }
    }

    #[test]
    fn query_into_reuses_the_buffer() {
        let db = db_from(&[(10.0, 0.99), (50.0, 0.80), (20.0, 0.95)]);
        let index = FeasibilityIndex::new(&db);
        let mut buf = vec![99, 98, 97];
        index.query_into(&QosSpec::new(25.0, 0.9), &mut buf);
        assert_eq!(buf, db.feasible_indices(&QosSpec::new(25.0, 0.9)));
        index.query_into(&QosSpec::new(0.0, 1.0), &mut buf);
        assert!(buf.is_empty());
    }

    proptest! {
        /// The tentpole invariant: for arbitrary databases and specs the
        /// indexed query returns exactly the linear scan's index set (we
        /// assert the stronger ascending-order equality, which implies
        /// permutation identity).
        #[test]
        fn index_is_identical_to_linear_scan(
            makespans in proptest::collection::vec(0.0f64..1000.0, 0..60),
            rels in proptest::collection::vec(0.0f64..1.0, 60),
            s_max in 0.0f64..1200.0,
            f_min in 0.0f64..1.0,
        ) {
            let points: Vec<(f64, f64)> = makespans
                .iter()
                .zip(&rels)
                .map(|(&m, &r)| (m, r))
                .collect();
            let db = db_from(&points);
            let index = FeasibilityIndex::new(&db);
            let spec = QosSpec::new(s_max, f_min);
            prop_assert_eq!(index.query(&spec), db.feasible_indices(&spec));
            // Repeating the query through a reused buffer changes nothing.
            let mut buf = Vec::new();
            index.query_into(&spec, &mut buf);
            prop_assert_eq!(buf, db.feasible_indices(&spec));
        }

        /// Duplicate makespans and clustered specs exercise the
        /// accept/reject boundaries and tie handling.
        #[test]
        fn index_agrees_on_heavily_tied_databases(
            base in 1.0f64..50.0,
            rels in proptest::collection::vec(0.0f64..1.0, 1..40),
            f_min in 0.0f64..1.0,
        ) {
            let points: Vec<(f64, f64)> = rels
                .iter()
                .enumerate()
                .map(|(i, &r)| (base * ((i % 3) + 1) as f64, r))
                .collect();
            let db = db_from(&points);
            let index = FeasibilityIndex::new(&db);
            for mult in [0, 1, 2, 3, 4] {
                let spec = QosSpec::new(base * mult as f64, f_min);
                prop_assert_eq!(index.query(&spec), db.feasible_indices(&spec));
            }
        }
    }
}
