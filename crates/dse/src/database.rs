//! The stored design-point database the run-time layer adapts over.

use clr_moea::dominates;
use clr_stats::{approx_eq_probability, approx_eq_time};
use serde::{Deserialize, Serialize};

use crate::{DesignPoint, PointOrigin, QosSpec};

/// A database of stored design points (paper Fig. 3: "design points
/// database").
///
/// # Examples
///
/// ```
/// use clr_dse::DesignPointDb;
/// let db = DesignPointDb::new("based");
/// assert!(db.is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignPointDb {
    name: String,
    points: Vec<DesignPoint>,
}

impl DesignPointDb {
    /// Creates an empty database.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Database label (e.g. `"based"`, `"red"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The stored points.
    pub fn points(&self) -> &[DesignPoint] {
        &self.points
    }

    /// The point at `index`, or `None` if the index is out of range.
    ///
    /// # Examples
    ///
    /// ```
    /// use clr_dse::DesignPointDb;
    /// let db = DesignPointDb::new("based");
    /// assert!(db.get(0).is_none());
    /// ```
    pub fn get(&self, index: usize) -> Option<&DesignPoint> {
        self.points.get(index)
    }

    /// The point at `index`.
    ///
    /// Deprecated panicking shim over [`DesignPointDb::get`]: every
    /// workspace call site has migrated to `get` (with explicit handling
    /// feeding the serve path's degradation ladder), and new code should
    /// do the same — an out-of-range index from a corrupted artifact must
    /// degrade, not abort the process.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[deprecated(
        since = "0.1.0",
        note = "use `get(index)` and handle `None` explicitly"
    )]
    pub fn point(&self, index: usize) -> &DesignPoint {
        self.get(index).unwrap_or_else(|| {
            panic!(
                "design-point index {index} out of range for database {:?} of {} points",
                self.name,
                self.points.len()
            )
        })
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Appends a point unconditionally.
    pub fn push(&mut self, point: DesignPoint) {
        debug_assert_point_sane(&point);
        self.points.push(point);
    }

    /// Appends a point unless an existing point has (numerically) the same
    /// metrics under the workspace tolerances ([`clr_stats::EPS_TIME`] for
    /// makespan/energy, [`clr_stats::EPS_PROBABILITY`] for reliability).
    /// Returns `true` if inserted.
    pub fn push_if_new(&mut self, point: DesignPoint) -> bool {
        debug_assert_point_sane(&point);
        let duplicate = self.points.iter().any(|p| {
            approx_eq_time(p.metrics.makespan, point.metrics.makespan)
                && approx_eq_probability(p.metrics.reliability, point.metrics.reliability)
                && approx_eq_time(p.metrics.energy, point.metrics.energy)
        });
        if duplicate {
            return false;
        }
        self.points.push(point);
        true
    }

    /// Indices of points satisfying a QoS specification — the `FEAS` set of
    /// Algorithm 1, line 3.
    pub fn feasible_indices(&self, spec: &QosSpec) -> Vec<usize> {
        let mut out = Vec::new();
        self.feasible_indices_into(spec, &mut out);
        out
    }

    /// [`feasible_indices`](Self::feasible_indices) into a caller-owned
    /// buffer (cleared first), so hot loops reuse one allocation across
    /// events. For repeated queries over an immutable database prefer
    /// [`crate::FeasibilityIndex`], which answers in O(log n + k).
    pub fn feasible_indices_into(&self, spec: &QosSpec, out: &mut Vec<usize>) {
        out.clear();
        out.extend((0..self.points.len()).filter(|&i| self.points[i].satisfies(spec)));
    }

    /// Indices of the points non-dominated in the QoS plane
    /// `(S_app, 1 − F_app)`.
    pub fn qos_pareto_indices(&self) -> Vec<usize> {
        let objs: Vec<Vec<f64>> = self
            .points
            .iter()
            .map(|p| p.qos_objectives().to_vec())
            .collect();
        (0..objs.len())
            .filter(|&i| {
                !objs
                    .iter()
                    .enumerate()
                    .any(|(j, o)| j != i && dominates(o, &objs[i]))
            })
            .collect()
    }

    /// Number of points with the given origin.
    pub fn count_origin(&self, origin: PointOrigin) -> usize {
        self.points.iter().filter(|p| p.origin == origin).count()
    }

    /// Iterates over the stored points.
    pub fn iter(&self) -> std::slice::Iter<'_, DesignPoint> {
        self.points.iter()
    }

    /// Renders the stored points' metrics as CSV
    /// (`index,origin,makespan,reliability,energy,peak_power,mean_mttf`).
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out =
            String::from("index,origin,makespan,reliability,energy,peak_power,mean_mttf\n");
        for (i, p) in self.points.iter().enumerate() {
            let _ = writeln!(
                out,
                "{i},{:?},{:.3},{:.6},{:.3},{:.3},{:.3e}",
                p.origin,
                p.metrics.makespan,
                p.metrics.reliability,
                p.metrics.energy,
                p.metrics.peak_power,
                p.metrics.mean_mttf
            );
        }
        out
    }
}

impl DesignPointDb {
    /// Reassembles a database from a label and raw points, bypassing the
    /// insertion-time sanity checks — reserved for the text codec, which
    /// must faithfully reconstruct *whatever* was persisted (including
    /// artifacts later flagged by `clr-verify`).
    pub(crate) fn from_raw_parts(name: String, points: Vec<DesignPoint>) -> Self {
        Self { name, points }
    }
}

/// Debug-build sanity check at the database mutation site: the cheapest
/// subset of the `clr-verify` metric-range lints, so corrupted metrics
/// fail fast at insertion during development instead of surfacing later
/// in an audit.
fn debug_assert_point_sane(point: &DesignPoint) {
    debug_assert!(
        point.metrics.makespan.is_finite() && point.metrics.makespan >= 0.0,
        "design point makespan must be finite and non-negative, got {}",
        point.metrics.makespan
    );
    debug_assert!(
        (0.0..=1.0).contains(&point.metrics.reliability),
        "design point reliability must lie in [0, 1], got {}",
        point.metrics.reliability
    );
    debug_assert!(
        point.metrics.energy.is_finite() && point.metrics.energy >= 0.0,
        "design point energy must be finite and non-negative, got {}",
        point.metrics.energy
    );
}

impl<'a> IntoIterator for &'a DesignPointDb {
    type Item = &'a DesignPoint;
    type IntoIter = std::slice::Iter<'a, DesignPoint>;

    fn into_iter(self) -> Self::IntoIter {
        self.points.iter()
    }
}

impl Extend<DesignPoint> for DesignPointDb {
    fn extend<T: IntoIterator<Item = DesignPoint>>(&mut self, iter: T) {
        for p in iter {
            self.push_if_new(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clr_sched::{Mapping, SystemMetrics};

    fn pt(makespan: f64, reliability: f64, energy: f64, origin: PointOrigin) -> DesignPoint {
        DesignPoint::new(
            Mapping::new(vec![]),
            SystemMetrics {
                makespan,
                reliability,
                energy,
                peak_power: 1.0,
                mean_mttf: 1.0,
            },
            origin,
        )
    }

    #[test]
    fn push_if_new_dedupes_on_metrics() {
        let mut db = DesignPointDb::new("t");
        assert!(db.push_if_new(pt(10.0, 0.9, 5.0, PointOrigin::Pareto)));
        assert!(!db.push_if_new(pt(10.0, 0.9, 5.0, PointOrigin::ReconfigAware)));
        assert!(db.push_if_new(pt(11.0, 0.9, 5.0, PointOrigin::Pareto)));
        assert_eq!(db.len(), 2);
    }

    #[test]
    #[allow(deprecated)]
    fn get_is_total_and_point_agrees_in_range() {
        let mut db = DesignPointDb::new("t");
        db.push(pt(10.0, 0.9, 5.0, PointOrigin::Pareto));
        // clr-audit: allow(CLR107) this test exercises the deprecated accessor itself
        assert_eq!(db.get(0), Some(db.point(0)));
        assert!(db.get(1).is_none());
    }

    #[test]
    #[allow(deprecated)]
    #[should_panic(expected = "out of range")]
    fn point_panics_with_context() {
        let db = DesignPointDb::new("t");
        // clr-audit: allow(CLR107) this test pins the deprecated accessor's panic message
        let _ = db.point(3);
    }

    #[test]
    fn feasible_indices_filter_by_spec() {
        let mut db = DesignPointDb::new("t");
        db.push(pt(10.0, 0.99, 5.0, PointOrigin::Pareto));
        db.push(pt(50.0, 0.80, 3.0, PointOrigin::Pareto));
        let spec = QosSpec::new(20.0, 0.9);
        assert_eq!(db.feasible_indices(&spec), vec![0]);
    }

    #[test]
    fn qos_pareto_excludes_dominated() {
        let mut db = DesignPointDb::new("t");
        db.push(pt(10.0, 0.99, 5.0, PointOrigin::Pareto)); // err 0.01
        db.push(pt(20.0, 0.98, 3.0, PointOrigin::Pareto)); // dominated in QoS
        db.push(pt(5.0, 0.90, 1.0, PointOrigin::Pareto)); // trade-off
        let front = db.qos_pareto_indices();
        assert_eq!(front, vec![0, 2]);
    }

    #[test]
    fn csv_has_header_and_one_row_per_point() {
        let mut db = DesignPointDb::new("t");
        db.push(pt(1.0, 0.9, 1.0, PointOrigin::Pareto));
        db.push(pt(2.0, 0.8, 2.0, PointOrigin::ReconfigAware));
        let csv = db.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("index,origin"));
        assert!(csv.contains("ReconfigAware"));
    }

    #[test]
    fn origin_counting_and_extend() {
        let mut db = DesignPointDb::new("t");
        db.extend([
            pt(1.0, 0.9, 1.0, PointOrigin::Pareto),
            pt(2.0, 0.9, 1.0, PointOrigin::ReconfigAware),
            pt(2.0, 0.9, 1.0, PointOrigin::ReconfigAware), // dup
        ]);
        assert_eq!(db.len(), 2);
        assert_eq!(db.count_origin(PointOrigin::ReconfigAware), 1);
    }
}
